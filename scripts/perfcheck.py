#!/usr/bin/env python
"""Run the wall-clock perf harness and gate on the committed baseline.

Usage::

    PYTHONPATH=src python scripts/perfcheck.py            # full run + gate
    PYTHONPATH=src python scripts/perfcheck.py --smoke    # quick sanity run
    PYTHONPATH=src python scripts/perfcheck.py --update-baseline

The full run writes ``BENCH_perf.json`` at the repo root and compares
every throughput metric (``*_per_sec``) and wall-clock metric
(``*_wall_sec``) against ``benchmarks/perf/baseline.json``; a metric more
than 20% worse than baseline fails the check.  ``--smoke`` runs every
bench at reduced scale and skips the gate (smoke numbers are not
comparable to the committed baseline).  ``--update-baseline`` rewrites the
baseline from a fresh full run — do this only on a quiet machine.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

REGRESSION_TOLERANCE = 0.20


def collect(smoke: bool) -> dict:
    from benchmarks import bench_c15_overload
    from benchmarks.perf import bench_e2e, bench_kernel, bench_locks, bench_storage

    metrics: dict[str, float] = {}
    for name, module in (
        ("kernel", bench_kernel),
        ("locks", bench_locks),
        ("storage", bench_storage),
        ("e2e", bench_e2e),
        ("c15-overload", bench_c15_overload),
    ):
        print(f"[perfcheck] running {name} benches ...", flush=True)
        metrics.update(module.run(smoke=smoke))
    return metrics


def compare(metrics: dict, baseline_metrics: dict) -> list[str]:
    """Return a list of regression descriptions (empty = pass)."""
    regressions = []
    for name, base in sorted(baseline_metrics.items()):
        current = metrics.get(name)
        if current is None or not isinstance(base, (int, float)) or base <= 0:
            continue
        if name.endswith("_per_sec") or name.endswith("_speedup"):
            floor = base * (1.0 - REGRESSION_TOLERANCE)
            if current < floor:
                regressions.append(
                    f"{name}: {current:,.0f} < {floor:,.0f} "
                    f"(baseline {base:,.0f}, -{(1 - current / base):.0%})"
                )
        elif name.endswith("_wall_sec") or name.endswith("_sec"):
            ceiling = base * (1.0 + REGRESSION_TOLERANCE)
            if current > ceiling:
                regressions.append(
                    f"{name}: {current:.3f}s > {ceiling:.3f}s "
                    f"(baseline {base:.3f}s, +{(current / base - 1):.0%})"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced-scale sanity run; skips the regression gate",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite benchmarks/perf/baseline.json from this run",
    )
    args = parser.parse_args(argv)

    from benchmarks.perf import (
        BASELINE_JSON,
        host_info,
        load_baseline,
        write_results,
    )

    metrics = collect(smoke=args.smoke)
    baseline = load_baseline()
    pre_change = baseline.get("pre_change", {}).get("kernel_events_per_sec")
    if not args.smoke and pre_change:
        # Reference: the pre-fast-path kernel measured once with these same
        # scenarios (see docs/PERFORMANCE.md for how it was captured).
        metrics["kernel_events_per_sec_pre_change"] = pre_change
        metrics["kernel_speedup_vs_pre_change"] = round(
            metrics["kernel_events_per_sec"] / pre_change, 3
        )
    path = write_results(metrics, smoke=args.smoke)
    print(f"[perfcheck] wrote {path}")
    for name in sorted(metrics):
        print(f"  {name:45s} {metrics[name]:>14,.8g}")

    if args.smoke:
        print("[perfcheck] smoke run OK (regression gate skipped)")
        return 0

    if args.update_baseline:
        payload = {"host": host_info(), "metrics": metrics}
        if "pre_change" in baseline:
            payload["pre_change"] = baseline["pre_change"]
        with open(BASELINE_JSON, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[perfcheck] baseline updated: {BASELINE_JSON}")
        return 0

    if not baseline:
        print("[perfcheck] no committed baseline; run with --update-baseline")
        return 0
    regressions = compare(metrics, baseline.get("metrics", {}))
    if regressions:
        print(f"[perfcheck] FAIL: {len(regressions)} metric(s) regressed >20%:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("[perfcheck] OK: no metric regressed more than 20% vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

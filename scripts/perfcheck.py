#!/usr/bin/env python
"""Run the wall-clock perf harness and gate on the committed baseline.

Usage::

    PYTHONPATH=src python scripts/perfcheck.py            # full run + gate
    PYTHONPATH=src python scripts/perfcheck.py --smoke    # quick sanity run
    PYTHONPATH=src python scripts/perfcheck.py --only parallel
    PYTHONPATH=src python scripts/perfcheck.py --update-baseline

The full run writes ``BENCH_perf.json`` at the repo root and compares
every throughput metric (``*_per_sec``) and wall-clock metric
(``*_wall_sec``) against ``benchmarks/perf/baseline.json``; a metric more
than 20% worse than baseline fails the check.  ``--smoke`` runs every
bench at reduced scale and skips the gate (smoke numbers are not
comparable to the committed baseline).  ``--update-baseline`` rewrites the
baseline from a fresh full run — do this only on a quiet machine.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

REGRESSION_TOLERANCE = 0.20

PROFILE_REPORT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "perf", "profile_report.txt",
)
PROFILE_SCENARIO = "B1 YCSB mix F / serializable / seed 183 (single cell)"


def profile_report_text(top: int = 25) -> str:
    """Deterministic hot-function report over one pinned-seed B1 cell.

    Ranked by call count (not wall time), restricted to ``repro`` code,
    with per-transaction kernel-event accounting appended — everything in
    the text is a pure function of the workload, so CI can regenerate it
    and fail on drift.
    """
    from benchmarks import bench_b1_ycsb
    from repro.obs import CallCountProfiler, events_per_txn

    with CallCountProfiler() as prof:
        result = bench_b1_ycsb.run_one(
            "F", "serializable", bench_b1_ycsb.LEVELS[2][1], seed=183
        )
    events = result.extra["events_executed"]
    txns = sum(
        recorder.count for recorder in result.metrics.recorders().values()
    )
    text = prof.report(top=top, scenario=PROFILE_SCENARIO)
    text += (
        "per-transaction accounting:\n"
        f"  kernel events executed  {events}\n"
        f"  completed transactions  {txns}\n"
        f"  events per transaction  {events_per_txn(events, txns)}\n"
    )
    return text


def collect(smoke: bool, only: str | None = None) -> dict:
    from benchmarks import bench_c15_overload, bench_c16_replication
    from benchmarks.perf import (
        bench_e2e,
        bench_kernel,
        bench_locks,
        bench_messaging,
        bench_parallel,
        bench_storage,
    )

    benches = (
        ("kernel", bench_kernel),
        ("locks", bench_locks),
        ("storage", bench_storage),
        ("messaging", bench_messaging),
        ("e2e", bench_e2e),
        ("c15-overload", bench_c15_overload),
        ("c16-replication", bench_c16_replication),
        ("parallel", bench_parallel),
    )
    if only is not None:
        known = [name for name, _module in benches]
        if only not in known:
            raise SystemExit(
                f"perfcheck: unknown bench {only!r} (choose from {known})"
            )
        benches = tuple(b for b in benches if b[0] == only)

    metrics: dict[str, float] = {}
    for name, module in benches:
        print(f"[perfcheck] running {name} benches ...", flush=True)
        metrics.update(module.run(smoke=smoke))
    return metrics


def multicore_dependent(name: str) -> bool:
    """Metrics that only mean "parallelism" when real cores back the pool.

    On a runner with fewer effective cores than the baseline host these
    measure process overhead instead, so the gate skips them (loudly).
    """
    return name.startswith("parallel_") and (
        name.endswith("_speedup") or "_w2_" in name
    )


def compare(metrics: dict, baseline_metrics: dict, skip: set | None = None) -> list[str]:
    """Return a list of regression descriptions (empty = pass)."""
    regressions = []
    for name, base in sorted(baseline_metrics.items()):
        current = metrics.get(name)
        if current is None or not isinstance(base, (int, float)) or base <= 0:
            continue
        if skip and name in skip:
            continue
        if name.endswith("_per_sec") or name.endswith("_speedup"):
            floor = base * (1.0 - REGRESSION_TOLERANCE)
            if current < floor:
                regressions.append(
                    f"{name}: {current:,.0f} < {floor:,.0f} "
                    f"(baseline {base:,.0f}, -{(1 - current / base):.0%})"
                )
        elif name.endswith("_wall_sec") or name.endswith("_sec"):
            ceiling = base * (1.0 + REGRESSION_TOLERANCE)
            if current > ceiling:
                regressions.append(
                    f"{name}: {current:.3f}s > {ceiling:.3f}s "
                    f"(baseline {base:.3f}s, +{(current / base - 1):.0%})"
                )
        elif name.endswith("_per_txn"):
            # Efficiency counters (e.g. kernel events per transaction):
            # deterministic, lower is better, gated tighter than the
            # wall-clock metrics because host noise cannot move them.
            ceiling = base * 1.02
            if current > ceiling:
                regressions.append(
                    f"{name}: {current:,.2f} > {ceiling:,.2f} "
                    f"(baseline {base:,.2f}, +{(current / base - 1):.1%})"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced-scale sanity run; skips the regression gate",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite benchmarks/perf/baseline.json from this run",
    )
    parser.add_argument(
        "--only", metavar="BENCH", default=None,
        help="run a single bench family (e.g. --only parallel); results "
        "are merged into an existing BENCH_perf.json and the gate checks "
        "only the metrics that ran",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="write the deterministic hot-function report "
        "(benchmarks/perf/profile_report.txt) instead of running the "
        "wall-clock benches",
    )
    parser.add_argument(
        "--check-drift", action="store_true",
        help="with --profile: regenerate the report and fail if it differs "
        "from the committed one (CI drift gate) instead of rewriting it",
    )
    args = parser.parse_args(argv)

    from benchmarks.perf import (
        BASELINE_JSON,
        BENCH_JSON,
        affinity_cpus,
        host_info,
        load_baseline,
        tracing_mode,
        write_results,
    )

    if args.profile:
        text = profile_report_text()
        if args.check_drift:
            committed = ""
            if os.path.exists(PROFILE_REPORT):
                with open(PROFILE_REPORT) as handle:
                    committed = handle.read()
            if text != committed:
                print(
                    "[perfcheck] FAIL: profile report drifted from the "
                    f"committed {PROFILE_REPORT}"
                )
                print(
                    "[perfcheck] the hot path changed; regenerate with "
                    "`python scripts/perfcheck.py --profile` and review the diff"
                )
                current = committed.splitlines()
                new = text.splitlines()
                for line in new:
                    if line not in current:
                        print(f"  + {line}")
                for line in current:
                    if line not in new:
                        print(f"  - {line}")
                return 1
            print("[perfcheck] OK: profile report matches the committed one")
            return 0
        with open(PROFILE_REPORT, "w") as handle:
            handle.write(text)
        print(f"[perfcheck] wrote {PROFILE_REPORT}")
        print(text)
        return 0

    metrics = collect(smoke=args.smoke, only=args.only)
    fresh = set(metrics)
    if args.only and os.path.exists(BENCH_JSON):
        # Partial run: keep the other families' numbers in the artifact,
        # but gate only on the metrics measured just now.
        with open(BENCH_JSON) as handle:
            previous = json.load(handle).get("metrics", {})
        metrics = {**previous, **metrics}
    baseline = load_baseline()
    pre_change = baseline.get("pre_change", {}).get("kernel_events_per_sec")
    if not args.smoke and pre_change:
        # Reference: the pre-fast-path kernel measured once with these same
        # scenarios (see docs/PERFORMANCE.md for how it was captured).
        metrics["kernel_events_per_sec_pre_change"] = pre_change
        metrics["kernel_speedup_vs_pre_change"] = round(
            metrics["kernel_events_per_sec"] / pre_change, 3
        )
    path = write_results(metrics, smoke=args.smoke)
    print(f"[perfcheck] wrote {path}")
    for name in sorted(metrics):
        print(f"  {name:45s} {metrics[name]:>14,.8g}")

    if args.smoke:
        print("[perfcheck] smoke run OK (regression gate skipped)")
        return 0

    if args.update_baseline:
        payload = {
            "host": host_info(),
            "mode": tracing_mode(),
            "metrics": metrics,
        }
        if "pre_change" in baseline:
            payload["pre_change"] = baseline["pre_change"]
        with open(BASELINE_JSON, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[perfcheck] baseline updated: {BASELINE_JSON}")
        return 0

    if not baseline:
        print("[perfcheck] no committed baseline; run with --update-baseline")
        return 0
    current_mode = tracing_mode()
    baseline_mode = baseline.get("mode")
    if baseline_mode is None:
        print(
            "[perfcheck] WARNING: baseline does not record its tracing/"
            "profile mode; assuming it was measured untraced — re-run "
            "--update-baseline to record the mode"
        )
    elif baseline_mode != current_mode:
        print(
            "[perfcheck] WARNING: observability mode mismatch — baseline "
            f"measured with {baseline_mode}, this run is {current_mode}; "
            "wall-clock comparisons across modes are not meaningful"
        )
    baseline_metrics = baseline.get("metrics", {})
    skip = {name for name in baseline_metrics if name not in fresh}
    baseline_host = baseline.get("host", {})
    baseline_cores = baseline_host.get("cpus_affinity") or baseline_host.get("cpus")
    current_cores = affinity_cpus()
    if baseline_cores and current_cores < baseline_cores:
        undersized = {
            name for name in baseline_metrics
            if multicore_dependent(name) and name in fresh
        }
        for name in sorted(undersized):
            print(
                f"[perfcheck] WARNING: skipping {name}: runner sees "
                f"{current_cores} core(s), baseline host had {baseline_cores} "
                "— parallel speedups are not comparable"
            )
        skip |= undersized
    regressions = compare(metrics, baseline_metrics, skip=skip)
    if regressions:
        print(f"[perfcheck] FAIL: {len(regressions)} metric(s) regressed >20%:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("[perfcheck] OK: no metric regressed more than 20% vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Chaos-fuzz the transactional runtimes and gate on invariant violations.

Usage::

    PYTHONPATH=src python scripts/chaoscheck.py --smoke
    PYTHONPATH=src python scripts/chaoscheck.py --runtime actor --trials 20
    PYTHONPATH=src python scripts/chaoscheck.py --runtime actor --broken
    PYTHONPATH=src python scripts/chaoscheck.py --replay benchmarks/results/chaos/actor-seed2.json

Modes:

- ``--smoke`` — two pinned-seed trials per runtime, each run twice to
  verify byte-identical determinism (schedule JSON + history digest);
  the default-suite regression gate.
- fuzz (default) — ``--trials`` seeded trials per selected runtime; on
  the first violation the failing schedule is shrunk and a standalone
  repro artifact is written under ``benchmarks/results/chaos/``.
- ``--replay <artifact>`` — re-run a saved artifact and check that the
  violations and history digest reproduce exactly.

Exit status is non-zero whenever a violation is found (or, under
``--broken``, when the expected violation is *not* found — the detector
must detect) or a replay fails to reproduce.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPO_SRC = os.path.join(REPO_ROOT, "src")
if REPO_SRC not in sys.path:
    sys.path.insert(0, REPO_SRC)

from repro.chaos import (  # noqa: E402
    ChaosConfig,
    ReproArtifact,
    RUNTIMES,
    run_trial,
    shrink,
)

ARTIFACT_DIR = os.path.join(REPO_ROOT, "benchmarks", "results", "chaos")

#: Pinned smoke seeds: chosen so every runtime's trials are violation-free.
SMOKE_SEEDS = (11, 23)


def load_budget(spec: str) -> ChaosConfig:
    """``--budget`` accepts a JSON file path or an inline JSON object."""
    if os.path.exists(spec):
        with open(spec) as handle:
            data = json.load(handle)
    else:
        data = json.loads(spec)
    return ChaosConfig.from_dict(data)


def smoke(runtimes: list[str], budget) -> int:
    failures = 0
    for runtime in runtimes:
        for seed in SMOKE_SEEDS:
            first = run_trial(runtime, seed, config=budget)
            second = run_trial(runtime, seed, config=budget)
            deterministic = (
                first.plan_json == second.plan_json
                and first.history_digest == second.history_digest
            )
            status = "ok"
            if first.violations:
                status = f"VIOLATIONS({len(first.violations)})"
                failures += 1
            if not deterministic:
                status += " NON-DETERMINISTIC"
                failures += 1
            counts = first.history.counts()
            print(
                f"  {runtime:<13} seed={seed:<4} faults={len(first.plan.events):<2} "
                f"ok={counts['ok']:<3} fail={counts['fail']:<2} info={counts['info']:<2} "
                f"digest={first.history_digest[:12]} {status}"
            )
            for violation in first.violations:
                print(f"      {violation.invariant}: {violation.detail}")
    return failures


def fuzz(runtime: str, trials: int, base_seed: int, budget, broken: bool) -> int:
    found = 0
    for index in range(trials):
        seed = base_seed + index
        result = run_trial(runtime, seed, config=budget, broken=broken)
        counts = result.history.counts()
        status = "ok" if result.ok else f"VIOLATIONS({len(result.violations)})"
        print(
            f"  {runtime:<13} seed={seed:<5} faults={len(result.plan.events):<2} "
            f"ok={counts['ok']:<3} fail={counts['fail']:<2} info={counts['info']:<2} {status}"
        )
        if result.ok:
            continue
        found += 1
        for violation in result.violations:
            print(f"      {violation.invariant}: {violation.detail}")
        report = shrink(
            runtime, seed, result.episodes, config=budget, broken=broken
        )
        artifact = ReproArtifact.from_result(report.result)
        suffix = "-broken" if broken else ""
        path = os.path.join(ARTIFACT_DIR, f"{runtime}{suffix}-seed{seed}.json")
        artifact.save(path)
        print(
            f"      shrunk {report.initial_events} -> {report.final_events} "
            f"fault event(s) in {report.trials} trial(s); "
            f"artifact: {os.path.relpath(path, REPO_ROOT)}"
        )
        break  # one minimized witness per invocation is enough
    if broken:
        # Detector check: the intentionally unsound config must be caught.
        if found == 0:
            print(f"  {runtime}: broken config NOT detected in {trials} trial(s)")
            return 1
        return 0
    return found


def replay(path: str) -> int:
    artifact = ReproArtifact.load(path)
    result = artifact.replay()
    reproduced = artifact.matches(result)
    print(
        f"  {artifact.runtime} seed={artifact.seed} broken={artifact.broken} "
        f"violations={len(result.violations)} digest={result.history_digest[:12]} "
        f"{'REPRODUCED' if reproduced else 'MISMATCH'}"
    )
    if not reproduced:
        print(f"    recorded digest: {artifact.history_digest}")
        print(f"    replayed digest: {result.history_digest}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runtime", choices=RUNTIMES, default=None,
                        help="restrict to one runtime (default: all)")
    parser.add_argument("--trials", type=int, default=10,
                        help="fuzz trials per runtime (default 10)")
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed for fuzz trials (default 1)")
    parser.add_argument("--budget", default=None,
                        help="ChaosConfig as a JSON file path or inline JSON")
    parser.add_argument("--broken", action="store_true",
                        help="run the intentionally unsound configuration; "
                             "exit non-zero if it is NOT detected")
    parser.add_argument("--smoke", action="store_true",
                        help="pinned-seed determinism + zero-violation gate")
    parser.add_argument("--replay", metavar="ARTIFACT", default=None,
                        help="replay a saved repro artifact")
    args = parser.parse_args(argv)

    if args.replay is not None:
        print("chaoscheck: replay")
        return replay(args.replay)

    budget = load_budget(args.budget) if args.budget else None
    runtimes = [args.runtime] if args.runtime else list(RUNTIMES)

    if args.smoke:
        print(f"chaoscheck: smoke ({len(runtimes)} runtime(s), "
              f"seeds {SMOKE_SEEDS}, double-run determinism check)")
        failures = smoke(runtimes, budget)
        print("smoke: " + ("clean" if failures == 0 else f"{failures} failure(s)"))
        return 1 if failures else 0

    print(f"chaoscheck: fuzz ({args.trials} trial(s) per runtime, "
          f"base seed {args.seed}{', broken config' if args.broken else ''})")
    failures = 0
    for runtime in runtimes:
        failures += fuzz(runtime, args.trials, args.seed, budget, args.broken)
    label = "broken-config detection" if args.broken else "fuzz"
    outcome = ("ok" if args.broken else "clean") if failures == 0 \
        else f"{failures} failure(s)"
    print(f"{label}: {outcome}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Pytest bootstrap: make ``repro`` importable from a bare checkout.

Preferred install is ``pip install -e .`` (or ``python setup.py develop`` on
offline machines); this fallback lets ``pytest`` work either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    """``--trace-export[=DIR]``: emit causal traces from benchmark runs.

    (pytest already owns ``--trace`` for pdb, hence the longer spelling.)
    Every Environment created while a bench runs records virtual-clock
    spans; after the test they are written to DIR (default
    ``benchmarks/results/traces``) as Chrome ``trace_event`` JSON plus a
    text critical-path report.  ``REPRO_TRACE=1`` does the same without a
    flag.  See docs/API.md §repro.obs.
    """
    parser.addoption(
        "--trace-export",
        action="store",
        nargs="?",
        const=os.path.join("benchmarks", "results", "traces"),
        default=None,
        metavar="DIR",
        help="export causal simulation traces (Chrome trace_event JSON + "
        "critical-path report) from benchmark runs to DIR",
    )

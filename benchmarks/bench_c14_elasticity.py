"""C14 — elasticity: live shard rebalancing under open-loop load.

The cluster layer's claim (ISSUE 4, paper §4.3): adding nodes to a
*stateful* tier is only useful if shards can move onto them without
stopping the world.  This benchmark runs the sharded database at ~70% of
its two-node capacity under an **open-loop** arrival process (arrivals do
not wait for completions, so any stall shows up as queueing, not as a
politely slowed workload), then doubles the node count mid-run and lets
the load-aware :class:`~repro.cluster.Rebalancer` migrate shards onto the
empty nodes through the live drain → copy → flip protocol.

Expected shape:

- a throughput dip while shards drain and copy (their keys are barred);
- recovery to the offered rate once ownership flips — post-migration
  steady state within 10% of pre-migration (both are offered-load
  limited; the doubled cluster has headroom, not magic);
- stragglers: a burst of forwarded requests right after each flip (stale
  route caches pay one extra hop, then repair);
- conservation: every balance accounted for after four live migrations.
"""

from repro.cluster import Rebalancer
from repro.db import IsolationLevel, ShardedDatabase
from repro.db.errors import TransactionAborted
from repro.harness import format_rows
from repro.sim import Environment
from repro.workloads import OpenLoop
from repro.workloads.transfers import TransferWorkload

from benchmarks.common import report

SER = IsolationLevel.SERIALIZABLE
ACCOUNTS = 128
SHARDS = 8
RATE_PER_S = 350.0          # ~70% of the two-node service capacity
TOTAL_OPS = 1400            # ~4s of offered load
SCALE_AT = 1200.0           # when the two new nodes join
WINDOW_MS = 200.0


def run_elasticity(seed=411):
    env = Environment(seed=seed)
    db = ShardedDatabase(
        env, num_shards=SHARDS, num_nodes=2, name="bank",
        rtt_ms=1.0, service_ms=2.0, node_concurrency=8,
        copy_ms_per_row=16.0, drain_timeout_ms=1000.0,
    )
    db.create_table("accounts", primary_key="id")
    workload = TransferWorkload(
        num_accounts=ACCOUNTS, initial_balance=1000, amount=5, theta=0.0
    )
    db.load("accounts", workload.initial_rows())
    ops = list(workload.operations(env.stream("ops"), TOTAL_OPS))
    completions: list[float] = []
    migration_ends: list[float] = []
    rebalancer = Rebalancer(env, db, interval=100.0, imbalance_factor=2.5)

    orig_migrate = db.migrate_shard

    def migrate_logged(shard, dest):
        rows = yield from orig_migrate(shard, dest)
        migration_ends.append(env.now)
        return rows

    db.migrate_shard = migrate_logged

    def issue(index):
        op = ops[index]
        for attempt in range(10):
            txn = db.begin(SER)
            try:
                src = yield from db.get(txn, "accounts", op.src)
                dst = yield from db.get(txn, "accounts", op.dst)
                yield from db.put(txn, "accounts", op.src,
                                  {**src, "balance": src["balance"] - op.amount})
                yield from db.put(txn, "accounts", op.dst,
                                  {**dst, "balance": dst["balance"] + op.amount})
                yield from db.commit(txn)
                completions.append(env.now)
                return
            except TransactionAborted:
                db.abort(txn)
                yield env.timeout(1.0 + attempt)
        raise RuntimeError("retries exhausted")

    def scale_out():
        yield env.timeout(SCALE_AT)
        db.add_node()
        db.add_node()
        rebalancer.start()

    arrivals = OpenLoop(rate_per_s=RATE_PER_S, total_ops=TOTAL_OPS)
    env.process(scale_out(), label="scale-out")
    env.run_until(env.process(arrivals.drive(env, issue), label="driver"))
    rebalancer.stop()

    total = sum(row["balance"] for row in db.all_rows("accounts"))
    migrations = db.migration_stats
    end = max(completions)
    windows = []
    t = 0.0
    while t < end:
        count = sum(1 for c in completions if t <= c < t + WINDOW_MS)
        windows.append((t, count / (WINDOW_MS / 1000.0)))
        t += WINDOW_MS

    migration_span = (
        (SCALE_AT, max(migration_ends)) if migration_ends
        else (SCALE_AT, SCALE_AT)
    )
    pre = [r for t0, r in windows if WINDOW_MS * 2 <= t0 + WINDOW_MS <= SCALE_AT]
    # Exclude the ragged final window: open-loop arrivals stop near ``end``.
    post = [r for t0, r in windows
            if t0 >= migration_span[1] and t0 + WINDOW_MS <= end - WINDOW_MS]
    dip = [r for t0, r in windows
           if migration_span[0] < t0 + WINDOW_MS and t0 < migration_span[1]]
    return {
        "db": db,
        "windows": windows,
        "pre_rate": sum(pre) / len(pre),
        "post_rate": sum(post) / len(post) if post else 0.0,
        "dip_rate": min(dip) if dip else float("nan"),
        "migrations": migrations,
        "forwards": db.router.stats.forwards,
        "conserved": total == workload.expected_total,
        "migration_span": migration_span,
    }


def test_c14_elasticity(benchmark):
    result = benchmark.pedantic(run_elasticity, rounds=1, iterations=1)
    db = result["db"]
    migrations = result["migrations"]
    rows = [
        [f"{t0:.0f}-{t0 + WINDOW_MS:.0f}", f"{rate:.0f}",
         "scale-out" if t0 <= SCALE_AT < t0 + WINDOW_MS else ""]
        for t0, rate in result["windows"]
    ]
    summary = format_rows(["window (ms)", "ops/s", "event"], rows)
    span = result["migration_span"]
    summary += "\n" + format_rows(
        ["metric", "value"],
        [
            ["offered load (ops/s)", f"{RATE_PER_S:.0f}"],
            ["pre-migration steady state (ops/s)", f"{result['pre_rate']:.0f}"],
            ["post-migration steady state (ops/s)", f"{result['post_rate']:.0f}"],
            ["worst window during migrations (ops/s)", f"{result['dip_rate']:.0f}"],
            ["nodes", f"2 -> {len(db.nodes)}"],
            ["shards migrated", f"{migrations.completed}"],
            ["rows copied", f"{migrations.rows_copied}"],
            ["migration span (ms)", f"{span[0]:.0f}-{span[1]:.0f}"],
            ["straggler forwards", f"{result['forwards']}"],
            ["conserved", f"{result['conserved']}"],
        ],
    )
    report("C14", "live shard rebalancing under open-loop load", summary)

    assert result["conserved"]
    assert migrations.completed >= 2, migrations
    assert migrations.aborted == 0, migrations
    # Shards actually spread onto the new nodes.
    owners = {db.directory.owner_of(s) for s in range(SHARDS)}
    assert len(owners) >= 3, owners
    # Post-migration steady state within 10% of pre-migration throughput.
    assert result["post_rate"] >= 0.9 * result["pre_rate"], result
    # Stale route caches repaired through the forward path.
    assert result["forwards"] >= migrations.completed

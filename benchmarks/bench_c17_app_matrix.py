"""C17 — the app matrix: kernel apps × runtime binders × fault classes.

The tentpole claim of the `repro.apps.core` kernel: declare an
application *once* (entities, generator stored procedures with declared
key sets, invariants) and it runs on every runtime paradigm with its
correctness story intact.  This benchmark operationalizes that in two
tables:

1. **Fault-free goodput** — the two kernel apps (double-entry payments
   ledger, gap-free invoicing) deployed through every registered binder
   under closed-loop contention.  Every sound deployment must commit its
   whole workload with zero invariant violations; the intentionally
   unsound controls (uncoordinated microservices, plain actors, the
   transaction-per-step allocator split) run the *same spec* and show
   what each missing guarantee costs — some drift under pure concurrency,
   before any fault is injected.

2. **Chaos survival** — the spec-compiled oracles judging each app under
   the seeded nemesis, one fault class per cell plus a mixed column
   (the C13 discipline, now applied to apps the kernel registered rather
   than scenarios anyone hand-wrote).  Sound configurations survive every
   admissible class; the unsound controls are caught by the very oracles
   the spec compiled.
"""

import argparse
import dataclasses
import os
import sys

if __package__ in (None, ""):  # direct script execution
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.apps.core import bind
from repro.apps.invoicing import invoicing_spec
from repro.apps.ledger import ledger_spec
from repro.chaos import run_trial
from repro.chaos.scenarios import build_scenario
from repro.harness import format_rows
from repro.sim import Environment
from repro.workloads.invoicing import InvoicingWorkload
from repro.workloads.transfers import TransferWorkload

from benchmarks.common import report

OPS = 40
SPACING_MS = 2.0
SEED = 11

#: (app, runtime, binder opts, sound, label)
DEPLOYMENTS = (
    ("ledger", "db", {}, True, "ledger × db (serializable)"),
    ("ledger", "cluster", {"num_shards": 2}, True, "ledger × cluster (2 shards)"),
    ("ledger", "microservice", {}, True, "ledger × microservice (2pc)"),
    ("ledger", "actor", {}, True, "ledger × actors (txn)"),
    ("ledger", "dataflow", {}, True, "ledger × dataflow (epochs)"),
    ("ledger", "faas", {}, True, "ledger × faas (occ workflows)"),
    ("invoicing", "db", {}, True, "invoicing × db (serializable)"),
    ("invoicing", "cluster", {"num_shards": 2}, True, "invoicing × cluster (2 shards)"),
    ("invoicing", "microservice", {}, True, "invoicing × microservice (2pc)"),
    ("invoicing", "actor", {}, True, "invoicing × actors (txn)"),
    ("invoicing", "dataflow", {}, True, "invoicing × dataflow (epochs)"),
    ("invoicing", "faas", {}, True, "invoicing × faas (occ workflows)"),
    # Unsound controls: the same specs, minus one guarantee each.
    ("ledger", "microservice", {"mode": "none"}, False,
     "ledger × microservice (uncoordinated)"),
    ("ledger", "actor", {"mode": "plain"}, False, "ledger × actors (plain)"),
    ("invoicing", "db", {"transaction_per_step": True}, False,
     "invoicing × db (split allocator)"),
)

CHAOS_SEEDS = tuple(range(1, 5))
CHAOS_COLUMNS = ("crash", "kill_leader", "partition", "loss", "duplication", "mixed")
CHAOS_ROWS = (
    ("ledger", False, "ledger (2pc, spec oracles)"),
    ("invoicing", False, "invoicing (atomic, spec oracles)"),
    ("ledger", True, "ledger (uncoordinated)"),
    ("invoicing", True, "invoicing (split allocator)"),
)


def make_spec(app: str):
    if app == "ledger":
        return ledger_spec(TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        ))
    workload = InvoicingWorkload()
    return invoicing_spec(workload)


def make_ops(app: str, env: Environment, count: int = OPS):
    if app == "ledger":
        workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
    else:
        workload = InvoicingWorkload()
    return list(workload.operations(env.stream(f"ops:{app}"), count))


def drive(app: str, runtime: str, opts: dict, count: int = OPS) -> dict:
    """One fault-free closed-loop run; returns goodput + invariant verdict."""
    env = Environment(seed=SEED)
    binder = bind(runtime, env, make_spec(app), **opts)
    ops = make_ops(app, env, count)
    outcomes: dict[str, str] = {}

    def one(op):
        try:
            yield from binder.execute(op)
            outcomes[op.op_id] = "ok"
        except Exception:  # noqa: BLE001 — any client-visible failure
            outcomes[op.op_id] = "err"

    def main():
        pending = []
        for op in ops:
            yield env.timeout(SPACING_MS)
            pending.append(env.process(one(op)))
        for proc in pending:
            yield proc

    env.run_until(env.process(binder.setup()))
    env.run_until(env.process(main()))
    state = binder.snapshot()
    violated = sorted(
        invariant.name for invariant in binder.invariants()
        if invariant.check(state)
    )
    return {
        "committed": sum(1 for v in outcomes.values() if v == "ok"),
        "errors": sum(1 for v in outcomes.values() if v == "err"),
        "violated": violated,
    }


def chaos_cell(runtime: str, kind: str, broken: bool, seeds=CHAOS_SEEDS):
    """Violating trials for one fault class (C13's per-cell discipline)."""
    config = build_scenario(runtime, Environment(seed=0)).default_config
    if kind != "mixed":
        config = dataclasses.replace(config, fault_classes=(kind,))
    if not config.effective_classes():
        return None
    bad = 0
    for seed in seeds:
        result = run_trial(runtime, seed, config=config, broken=broken)
        if result.violations:
            bad += 1
    return bad


def run_matrix(count: int = OPS, seeds=CHAOS_SEEDS, columns=CHAOS_COLUMNS):
    goodput = {
        label: drive(app, runtime, opts, count)
        for app, runtime, opts, _sound, label in DEPLOYMENTS
    }
    chaos = {
        (label, kind): chaos_cell(runtime, kind, broken, seeds)
        for runtime, broken, label in CHAOS_ROWS
        for kind in columns
    }
    return goodput, chaos


def render(goodput, chaos, count: int = OPS, seeds=CHAOS_SEEDS,
           columns=CHAOS_COLUMNS) -> str:
    goodput_rows = [
        [label,
         f"{cell['committed']}/{count}",
         str(cell["errors"]),
         ",".join(cell["violated"]) or "clean"]
        for _, _, _, _, label in DEPLOYMENTS
        for cell in [goodput[label]]
    ]

    def show(value):
        return "-" if value is None else f"{value}/{len(seeds)}"

    chaos_rows = [
        [label] + [show(chaos[(label, kind)]) for kind in columns]
        for _, _, label in CHAOS_ROWS
    ]
    return (
        format_rows(["deployment", "committed", "errors", "invariants"],
                    goodput_rows)
        + "\n\n"
        + format_rows(["configuration"] + list(columns), chaos_rows)
    )


def check_claims(goodput, chaos) -> None:
    # Every sound deployment commits the full workload, cleanly.
    for _, _, _, sound, label in DEPLOYMENTS:
        cell = goodput[label]
        if sound:
            assert cell["committed"] == OPS, (label, cell)
            assert not cell["violated"], (label, cell)

    # The controls run the same spec and the invariants see the damage —
    # uncoordinated writes drift under pure concurrency, no faults needed.
    for label in ("ledger × microservice (uncoordinated)",
                  "ledger × actors (plain)"):
        assert goodput[label]["violated"], (label, goodput[label])

    # Under chaos, every sound configuration survives every admissible
    # fault class with zero violating trials.
    for _, broken, label in CHAOS_ROWS:
        if broken:
            continue
        for kind in CHAOS_COLUMNS:
            value = chaos[(label, kind)]
            assert value is None or value == 0, (label, kind, value)

    # ... and the spec-compiled oracles catch both unsound controls: the
    # uncoordinated ledger somewhere in its budget, the split allocator
    # under the crash/failover schedules that kill it between its two
    # transactions.
    caught = sum(chaos[("ledger (uncoordinated)", kind)] or 0
                 for kind in CHAOS_COLUMNS)
    assert caught > 0, chaos
    caught = sum(chaos[("invoicing (split allocator)", kind)] or 0
                 for kind in ("crash", "kill_leader", "partition", "mixed"))
    assert caught > 0, chaos


def test_c17_app_matrix(benchmark):
    goodput, chaos = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    report(
        "C17", "one app spec, every runtime: goodput and chaos survival",
        render(goodput, chaos),
    )
    check_claims(goodput, chaos)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale sanity run; skips the full claim checks")
    args = parser.parse_args(argv)
    if args.smoke:
        count, seeds, columns = 12, (1, 2), ("crash", "mixed")
        goodput, chaos = run_matrix(count, seeds, columns)
        print(render(goodput, chaos, count, seeds, columns))
        # Even at smoke scale, every sound deployment must finish clean.
        for _, _, _, sound, label in DEPLOYMENTS:
            cell = goodput[label]
            if sound:
                assert cell["committed"] == count, (label, cell)
                assert not cell["violated"], (label, cell)
        print("C17 smoke OK (full claim checks skipped)")
        return 0
    goodput, chaos = run_matrix()
    print(render(goodput, chaos))
    check_claims(goodput, chaos)
    report(
        "C17", "one app spec, every runtime: goodput and chaos survival",
        render(goodput, chaos),
    )
    print("C17 claims hold; wrote benchmarks/results/C17.txt")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Kernel microbenchmarks: events per wall-clock second.

Four scenarios cover the event-loop hot paths:

- ``timeout0``   — a process chaining ``yield env.timeout(0)``: the
  dominant pattern in RPC-heavy workloads (dispatch + process resume).
- ``pingpong``   — explicit future resolution via ``env.schedule(0, ...)``.
- ``fanout``     — one future broadcast to many callbacks (broker wakeups,
  ``all_of``/``any_of`` combinators).
- ``mixed``      — alternating zero-delay and positive-delay timeouts, so
  the ready queue and the heap interleave.

Each scenario reports events/sec from ``Environment.events_executed``.
Running with ``fast_path=False`` exercises the heap-only reference
executor, so the fast-path speedup is measurable from one build.
"""

from __future__ import annotations

import time

from repro.sim import Environment
from repro.sim.events import Future


def _timeout0(n: int, fast_path: bool) -> Environment:
    env = Environment(seed=1, fast_path=fast_path)

    def chain(env, n):
        for _ in range(n):
            yield env.timeout(0)

    env.run_until(env.process(chain(env, n)))
    return env


def _pingpong(n: int, fast_path: bool) -> Environment:
    env = Environment(seed=1, fast_path=fast_path)

    def pinger(env, n):
        for _ in range(n):
            fut = Future(env, label="ping")
            env.schedule(0.0, fut.succeed, 1)
            yield fut

    env.run_until(env.process(pinger(env, n)))
    return env


def _fanout(n: int, fast_path: bool, width: int = 16) -> Environment:
    env = Environment(seed=1, fast_path=fast_path)
    sink = {"count": 0}

    def on_done(fut):
        sink["count"] += 1

    def driver(env, n):
        for _ in range(n):
            fut = Future(env, label="bcast")
            for _ in range(width):
                fut.add_done_callback(on_done)
            env.schedule(0.0, fut.succeed, None)
            yield fut

    env.run_until(env.process(driver(env, n)))
    return env


def _mixed(n: int, fast_path: bool) -> Environment:
    env = Environment(seed=1, fast_path=fast_path)

    def chain(env, n):
        for i in range(n):
            yield env.timeout(0 if i % 2 else 0.1)

    env.run_until(env.process(chain(env, n)))
    return env


SCENARIOS = [
    ("timeout0", _timeout0),
    ("pingpong", _pingpong),
    ("fanout", _fanout),
    ("mixed", _mixed),
]


def _measure(fn, n: int, fast_path: bool, repeats: int) -> float:
    """Best events/sec over ``repeats`` runs (min-noise estimator)."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        env = fn(n, fast_path)
        elapsed = time.perf_counter() - start
        best = max(best, env.events_executed / elapsed)
    return best


def run(smoke: bool = False) -> dict:
    """Return {metric -> events/sec} for every scenario, both executors."""
    n = 20_000 if smoke else 200_000
    repeats = 1 if smoke else 3
    metrics: dict[str, float] = {}
    total_fast = 0.0
    total_heap = 0.0
    for name, fn in SCENARIOS:
        scale = n // 8 if name == "fanout" else n
        fast = _measure(fn, scale, True, repeats)
        heap = _measure(fn, scale, False, repeats)
        metrics[f"kernel_{name}_events_per_sec"] = round(fast)
        metrics[f"kernel_{name}_heap_only_events_per_sec"] = round(heap)
        total_fast += fast
        total_heap += heap
    count = len(SCENARIOS)
    metrics["kernel_events_per_sec"] = round(total_fast / count)
    metrics["kernel_heap_only_events_per_sec"] = round(total_heap / count)
    metrics["kernel_fast_path_speedup"] = round(total_fast / total_heap, 3)
    return metrics


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2, sort_keys=True))

"""End-to-end wall-clock benchmarks over the real claim-bench workloads.

Times the B1 (YCSB x isolation matrix) and C1 (nine paradigm builds on
the transfer workload) suites exactly as the claim benches run them, and
reports wall-clock seconds plus committed transactions per wall-clock
second.  Virtual-time results are untouched — the suites still write
their tables through ``benchmarks.common.report``.

Smoke mode runs a single B1 cell (the contended serializable RMW mix)
instead of both full suites.
"""

from __future__ import annotations

import time


def _txn_count(results) -> int:
    total = 0
    for result in results:
        total += sum(
            recorder.count for recorder in result.metrics.recorders().values()
        )
    return total


def run(smoke: bool = False) -> dict:
    from benchmarks import bench_b1_ycsb, bench_c1_paradigms

    metrics: dict[str, float] = {}
    if smoke:
        start = time.perf_counter()
        result = bench_b1_ycsb.run_one(
            "F", "serializable", bench_b1_ycsb.LEVELS[2][1], seed=183
        )
        elapsed = time.perf_counter() - start
        metrics["e2e_smoke_wall_sec"] = round(elapsed, 4)
        metrics["e2e_smoke_txns_per_sec"] = round(_txn_count([result]) / elapsed)
        return metrics

    start = time.perf_counter()
    b1_results = bench_b1_ycsb.run_all()
    b1_elapsed = time.perf_counter() - start
    metrics["e2e_b1_wall_sec"] = round(b1_elapsed, 4)
    metrics["e2e_b1_txns_per_sec"] = round(_txn_count(b1_results) / b1_elapsed)
    # Deterministic efficiency metric: kernel events per completed B1
    # transaction (lower is better; independent of the host clock).
    from repro.obs import events_per_txn

    total_events = sum(r.extra["events_executed"] for r in b1_results)
    metrics["e2e_b1_events_per_txn"] = events_per_txn(
        total_events, _txn_count(b1_results)
    )

    start = time.perf_counter()
    c1_results = bench_c1_paradigms.run_all()
    c1_elapsed = time.perf_counter() - start
    metrics["e2e_c1_wall_sec"] = round(c1_elapsed, 4)
    metrics["e2e_c1_txns_per_sec"] = round(_txn_count(c1_results) / c1_elapsed)
    return metrics


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2, sort_keys=True))

"""Wall-clock performance harness for the simulation substrate.

Everything under ``benchmarks/perf`` measures *real* time with
``time.perf_counter`` — allowed here precisely because it is banned in
``src/`` (see ``tests/test_no_wallclock.py``): simulated behaviour must
never depend on the host clock, but the harness exists to measure the
host clock.

Entry point: ``python scripts/perfcheck.py`` runs every bench, writes
``BENCH_perf.json`` at the repo root, and diffs against the committed
baseline in ``benchmarks/perf/baseline.json``.
"""

from __future__ import annotations

import json
import os
import platform
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_perf.json")
BASELINE_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline.json")


def affinity_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; containers and ``taskset`` can
    pin the runner to fewer cores, and parallel-speedup numbers are only
    comparable between hosts with the same *effective* core count.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def host_info() -> dict:
    """Identify the machine a result set was measured on."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "cpus_affinity": affinity_cpus(),
    }


def tracing_mode() -> dict:
    """Which observability modes are active in this process.

    Tracing (and any profiler hooks) slow the measured code down, so
    numbers taken with different modes are not comparable — results and
    the baseline both record the mode, and the gate warns loudly on a
    mismatch instead of silently comparing apples to oranges.
    """
    from repro.obs import default_tracing_enabled

    return {
        "default_tracing": bool(default_tracing_enabled()),
        "profile_hooks": sys.getprofile() is not None,
    }


def write_results(metrics: dict, *, smoke: bool = False, path: str = BENCH_JSON) -> str:
    """Persist a metrics dict (metric name -> number) as BENCH_perf.json."""
    payload = {
        "host": host_info(),
        "mode": tracing_mode(),
        "smoke": smoke,
        "metrics": metrics,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str = BASELINE_JSON) -> dict:
    """Load the committed baseline, or an empty dict if absent."""
    if not os.path.exists(path):
        return {}
    with open(path) as handle:
        return json.load(handle)

"""Lock-manager microbenchmarks: lock operations per wall-clock second.

Three scenarios target the paths the indexed lock manager optimizes:

- ``uncontended`` — transactions acquire a few row locks and
  ``release_all`` while thousands of *other* transactions keep locks
  held.  With the per-txn indexes this is O(locks the txn touched); the
  pre-index implementation scanned every lock in the system per release.
- ``contended``  — a convoy of exclusive waiters on one hot row; each
  release wakes the next waiter (queue maintenance + edge refresh).
- ``deadlock``   — two-txn cycles created and detected back-to-back
  (incremental enqueue edges + one DFS per blocked acquire).
"""

from __future__ import annotations

import time

from repro.db.locks import LockManager, LockMode
from repro.sim import Environment


def _uncontended(n: int, standing: int) -> tuple[int, float]:
    env = Environment(seed=1)
    lm = LockManager(env)
    # A standing population of held locks that a scan-based release would
    # walk on every commit.
    for tid in range(standing):
        lm.acquire(1_000_000 + tid, ("row", "t", tid), LockMode.X)
    start = time.perf_counter()
    ops = 0
    for tid in range(n):
        for k in range(3):
            lm.acquire(tid, ("row", "hot", (tid * 3 + k) % 64), LockMode.S)
            ops += 1
        lm.release_all(tid)
        ops += 1
        env.run()  # drain grant dispatches
    return ops, time.perf_counter() - start


def _contended(n: int) -> tuple[int, float]:
    env = Environment(seed=1)
    lm = LockManager(env)
    start = time.perf_counter()
    ops = 0
    convoy = 8
    for round_index in range(n):
        base = round_index * convoy
        for tid in range(base, base + convoy):
            lm.acquire(tid, ("row", "hot", 0), LockMode.X)
            ops += 1
        for tid in range(base, base + convoy):
            lm.release_all(tid)
            ops += 1
        env.run()
    return ops, time.perf_counter() - start


def _deadlock(n: int) -> tuple[int, float]:
    env = Environment(seed=1)
    lm = LockManager(env)
    start = time.perf_counter()
    ops = 0
    for round_index in range(n):
        t1, t2 = round_index * 2, round_index * 2 + 1
        lm.acquire(t1, ("row", "a", round_index), LockMode.X)
        lm.acquire(t2, ("row", "b", round_index), LockMode.X)
        lm.acquire(t1, ("row", "b", round_index), LockMode.X)  # t1 waits
        lm.acquire(t2, ("row", "a", round_index), LockMode.X)  # cycle: t2 aborted
        lm.release_all(t1)
        lm.release_all(t2)
        ops += 6
        env.run()
    assert lm.stats.deadlocks == n
    return ops, time.perf_counter() - start


def run(smoke: bool = False) -> dict:
    """Return {metric -> lock ops/sec} for the three scenarios."""
    n = 500 if smoke else 5_000
    standing = 500 if smoke else 5_000
    metrics: dict[str, float] = {}
    ops, elapsed = _uncontended(n, standing)
    metrics["locks_uncontended_ops_per_sec"] = round(ops / elapsed)
    ops, elapsed = _contended(max(1, n // 4))
    metrics["locks_contended_ops_per_sec"] = round(ops / elapsed)
    ops, elapsed = _deadlock(max(1, n // 4))
    metrics["locks_deadlock_ops_per_sec"] = round(ops / elapsed)
    return metrics


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2, sort_keys=True))

"""Wall-clock benchmarks for the storage-engine fast paths.

Three scenarios, one per fast path (see the "Storage engine" section of
``docs/PERFORMANCE.md``):

- **hotkey** — a single-writer update loop hammering a handful of keys
  under snapshot isolation.  Version-chain GC keeps every chain at the
  prune threshold instead of letting them grow with transaction count;
  the bench reports update throughput plus the observed maximum chain
  length and pruned-version count.
- **commit** — many clients committing in the same virtual instants.
  Group commit folds all same-instant commits into one shared fsync;
  the bench reports commit throughput in grouped mode and the raw flush
  counts for grouped vs. reference (``group_commit=False``) runs.
- **scan** — repeated full-table scans.  Copy elision returns the
  immutable committed rows themselves; the reference mode
  (``copy_reads=True``) materialises a defensive dict per row.  Both
  rates are reported so the elision win stays visible in the gate.

Smoke mode runs the same scenarios at reduced scale (same metric names,
like ``bench_kernel``); smoke numbers are not comparable to the
committed baseline and ``scripts/perfcheck.py`` skips the gate for them.
"""

from __future__ import annotations

import time

HOT_KEYS = 16


def _run_hotkey(n_txns: int):
    from repro.db import Database, IsolationLevel
    from repro.sim import Environment

    env = Environment(seed=11)
    db = Database(env, name="perf-hot")
    db.create_table("t")
    db.load("t", [{"id": k, "v": 0} for k in range(HOT_KEYS)])

    def worker():
        for i in range(n_txns):
            key = i % HOT_KEYS
            txn = db.begin(IsolationLevel.SNAPSHOT)
            row = yield from db.get(txn, "t", key)
            yield from db.put(txn, "t", key, {"id": key, "v": row["v"] + 1})
            yield from db.commit(txn)

    env.process(worker(), label="hotkey")
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    max_chain = max(len(chain) for chain in db._tables["t"].versions.values())
    return elapsed, max_chain, db.stats.gc_pruned_versions


def _run_commit(clients: int, rounds: int, group_commit: bool):
    from repro.db import Database, IsolationLevel
    from repro.sim import Environment

    env = Environment(seed=23)
    db = Database(env, name="perf-commit", group_commit=group_commit)
    db.create_table("t")
    db.load("t", [{"id": k, "v": 0} for k in range(clients)])

    def client(k):
        for i in range(rounds):
            txn = db.begin(IsolationLevel.SERIALIZABLE)
            yield from db.put(txn, "t", k, {"id": k, "v": i})
            yield from db.commit(txn)
            yield env.timeout(1.0)

    for k in range(clients):
        env.process(client(k), label=f"commit:{k}")
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    return elapsed, db.stats.flush_count


def _run_scan(rows: int, repeats: int, copy_reads: bool):
    from repro.db import Database, IsolationLevel
    from repro.sim import Environment

    env = Environment(seed=7)
    db = Database(env, name="perf-scan", copy_reads=copy_reads)
    db.create_table("t")
    db.load("t", [{"id": k, "v": k, "pad": "x" * 32} for k in range(rows)])

    def reader():
        for _ in range(repeats):
            txn = db.begin(IsolationLevel.READ_COMMITTED)
            out = yield from db.scan(txn, "t")
            assert len(out) == rows
            yield from db.commit(txn)

    env.process(reader(), label="scan")
    start = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - start
    return elapsed, rows * repeats


def run(smoke: bool = False) -> dict:
    n_hot = 2_000 if smoke else 20_000
    clients, rounds = (8, 25) if smoke else (32, 200)
    scan_rows, scan_repeats = (500, 10) if smoke else (4_000, 100)

    metrics: dict[str, float] = {}

    elapsed, max_chain, pruned = _run_hotkey(n_hot)
    metrics["storage_hotkey_txns_per_sec"] = round(n_hot / elapsed)
    metrics["storage_hotkey_max_chain"] = max_chain
    metrics["storage_hotkey_pruned_versions"] = pruned

    elapsed, grouped_flushes = _run_commit(clients, rounds, group_commit=True)
    metrics["storage_commit_txns_per_sec"] = round(clients * rounds / elapsed)
    metrics["storage_commit_flushes_grouped"] = grouped_flushes
    _, reference_flushes = _run_commit(clients, rounds, group_commit=False)
    metrics["storage_commit_flushes_reference"] = reference_flushes

    elapsed, total_rows = _run_scan(scan_rows, scan_repeats, copy_reads=False)
    metrics["storage_scan_rows_per_sec"] = round(total_rows / elapsed)
    elapsed, total_rows = _run_scan(scan_rows, scan_repeats, copy_reads=True)
    metrics["storage_scan_copy_rows_per_sec"] = round(total_rows / elapsed)

    return metrics


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2, sort_keys=True))

"""Messaging-tier microbenchmarks: wall-clock throughput of the hot paths.

Three scenarios cover the layers the cross-layer hot-path pass touches:

- ``rpc_roundtrip`` — untraced request/reply calls through
  :mod:`repro.messaging.rpc` between two nodes (the per-call dispatch,
  ``__slots__`` envelope construction, and reply-matching cost);
- ``broker`` — publish plus consumer-group poll/commit cycles through
  :mod:`repro.messaging.broker`;
- ``replication_append`` — leader proposals through a factor-3
  :class:`repro.replication.ReplicaGroup` (AppendEntries batching, quorum
  acks, apply).

All figures are operations per *wall-clock* second — virtual-time results
are asserted deterministic elsewhere; this file measures interpreter cost.
"""

from __future__ import annotations

import time

from repro.messaging.broker import Broker
from repro.messaging.rpc import RpcClient, RpcServer
from repro.net import Network
from repro.replication import ReplicaGroup, ReplicationConfig
from repro.sim import Environment


def _rpc_roundtrip(n: int) -> tuple[int, float]:
    env = Environment(seed=1)
    net = Network(env)
    net.add_node("server")
    client_node = net.add_node("client")
    server = RpcServer(net, net.node("server"), service="echo")

    def echo(payload):
        return payload
        yield  # pragma: no cover - generator protocol only

    server.register("echo", echo)
    client = RpcClient(net, client_node, service="echo")

    def caller(env):
        for i in range(n):
            yield from client.call("server", "echo", i)

    start = time.perf_counter()
    env.run_until(env.process(caller(env), label="rpc-bench"))
    elapsed = time.perf_counter() - start
    assert client.stats.calls == n and client.stats.timeouts == 0
    return n, elapsed


def _broker(n: int) -> tuple[int, float]:
    env = Environment(seed=1)
    broker = Broker(env)
    broker.create_topic("events", partitions=2)
    consumer = broker.consumer("bench", "events")

    def producer(env):
        for i in range(n):
            yield from broker.publish("events", key=i % 8, value=i)

    def drain(env):
        seen = 0
        while seen < n:
            records = yield from consumer.poll(max_records=32)
            seen += len(records)
            yield from consumer.commit()
        return seen

    start = time.perf_counter()
    env.process(producer(env), label="producer")
    seen = env.run_until(env.process(drain(env), label="consumer"))
    elapsed = time.perf_counter() - start
    assert seen == n
    return 2 * n, elapsed  # one publish + one consume per record


def _replication_append(n: int) -> tuple[int, float]:
    from repro.db.engine import Database

    env = Environment(seed=1)
    net = Network(env)

    def factory(node_name):
        engine = Database(env, name=f"bench@{node_name}")
        engine.create_table("kv")
        return engine

    group = ReplicaGroup(
        env, net, name="bench", config=ReplicationConfig(),
        engine_factory=factory, node_names=["r0", "r1", "r2"],
    )

    def proposer(env):
        leader = group.leader_replica()
        engine = leader.engine
        from repro.db import IsolationLevel

        for i in range(n):
            txn = engine.begin(IsolationLevel.SERIALIZABLE)
            yield from engine.put(txn, "kv", i, {"id": i, "value": i})
            gid = ("bench", i)
            writes = engine.stage_replicated(txn, gid)
            yield from group.replicate(("commit", gid, writes), replica=leader)

    start = time.perf_counter()
    env.run_until(env.process(proposer(env), label="proposer"))
    elapsed = time.perf_counter() - start
    return n, elapsed


def run(smoke: bool = False) -> dict:
    """Return {metric -> messaging ops/sec} for the three scenarios."""
    n = 200 if smoke else 2_000
    metrics: dict[str, float] = {}
    ops, elapsed = _rpc_roundtrip(n)
    metrics["messaging_rpc_roundtrips_per_sec"] = round(ops / elapsed)
    ops, elapsed = _broker(n)
    metrics["messaging_broker_ops_per_sec"] = round(ops / elapsed)
    ops, elapsed = _replication_append(max(1, n // 4))
    metrics["messaging_replication_appends_per_sec"] = round(ops / elapsed)
    return metrics


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2, sort_keys=True))

"""Wall-clock benchmarks for the queue-oriented parallel execution layer.

Three views, one per phase of the epoch cycle (see ``repro.parallel``):

- **planning** — ``parallel_plan_txns_per_sec`` times :func:`plan_epoch`
  alone (queues + rounds over an already-sequenced batch), because QueCC's
  planner is a serial stage and must stay cheap for the parallel phase to
  ever pay off;
- **epoch execution** — a CPU-bearing spec mix (``kv.rmw``/``kv.transfer``
  with ``spin`` work) run through :class:`EpochExecutor` at ``workers=0``
  (the inline reference) and ``workers=2``, with the speedup and the
  pickled bytes per transaction reported.  Both runs must land the engine
  in the same state — asserted here, not just in the test suite;
- **end to end** — the real B1 claim suite via ``run_all(workers=...)``
  against a warm pool, the number the ISSUE's >=1.7x target refers to.

On hosts where the runner sees fewer cores than the committed baseline
host, the ``*_w2_*`` and ``*_speedup`` numbers measure process overhead,
not parallelism — ``scripts/perfcheck.py`` skips gating them (with a
warning) in that case.
"""

from __future__ import annotations

import time


def _submit_mix(executor, txns, accounts, cross_every, work):
    """A deterministic spec mix: mostly single-key RMWs, some transfers."""
    from repro.parallel import TxnSpec

    for i in range(txns):
        if cross_every and i % cross_every == cross_every - 1:
            src = f"acct-{(i * 5 + 2) % accounts}"
            dst = f"acct-{(i * 7 + 3) % accounts}"
            if src == dst:
                dst = f"acct-{(i * 7 + 4) % accounts}"
            executor.submit(TxnSpec(
                proc="kv.transfer",
                args=("kv", src, dst, 1, "balance", work),
                keys=(("kv", src), ("kv", dst)),
            ))
        else:
            key = f"acct-{(i * 13 + 1) % accounts}"
            executor.submit(TxnSpec(
                proc="kv.rmw",
                args=("kv", key, "balance", 1, work),
                keys=(("kv", key),),
            ))


def _epoch_run(workers, *, shards, txns, epochs, accounts, cross_every, work):
    """Run the mix through a fresh engine; returns (elapsed, bytes, state)."""
    from repro.db import Database
    from repro.parallel import EpochExecutor
    from repro.sim import Environment

    env = Environment(seed=7)
    db = Database(env, name=f"parallel-perf-w{workers}")
    db.create_table("kv", primary_key="id")
    db.load("kv", [{"id": f"acct-{i}", "balance": 0} for i in range(accounts)])
    with EpochExecutor(db, num_shards=shards, workers=workers) as executor:
        # One untimed warm-up epoch: pool start-up and first-touch costs
        # are paid once per process lifetime, not per epoch.
        _submit_mix(executor, min(txns, 32), accounts, cross_every, work=0)
        executor.flush()
        shipped = 0
        start = time.perf_counter()
        for _ in range(epochs):
            _submit_mix(executor, txns, accounts, cross_every, work)
            result = executor.flush()
            shipped += result.bytes_sent + result.bytes_received
        elapsed = time.perf_counter() - start
    state = sorted(
        (row["id"], row["balance"]) for row in db.all_rows("kv")
    )
    return elapsed, shipped, state


def _plan_run(*, txns, shards, accounts, cross_every, reps):
    """Time the planning phase alone over one sequenced batch."""
    from repro.parallel import TxnSpec, plan_epoch
    from repro.transactions.sequencer import Sequencer

    sequencer = Sequencer()
    for i in range(txns):
        if cross_every and i % cross_every == cross_every - 1:
            src, dst = f"acct-{i % accounts}", f"acct-{(i * 7 + 3) % accounts}"
            sequencer.submit(TxnSpec(
                proc="kv.transfer", args=("kv", src, dst, 1),
                keys=(("kv", src), ("kv", dst)),
            ))
        else:
            key = f"acct-{(i * 13 + 1) % accounts}"
            sequencer.submit(TxnSpec(
                proc="kv.rmw", args=("kv", key), keys=(("kv", key),),
            ))
    batch = sequencer.cut_epoch()
    best = float("inf")
    # Best-of-N passes: the planner is a sub-ms serial stage, so a single
    # timing is at the mercy of scheduler noise; the minimum is stable.
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(reps):
            plan = plan_epoch(batch, num_shards=shards)
        best = min(best, time.perf_counter() - start)
    assert plan.stats.txns == txns
    return (txns * reps) / best


def run(smoke: bool = False) -> dict:
    from benchmarks import bench_b1_ycsb
    from repro.parallel import WorkerPool

    metrics: dict[str, float] = {}

    plan_scale = dict(txns=500, reps=2) if smoke else dict(txns=4000, reps=5)
    metrics["parallel_plan_txns_per_sec"] = round(_plan_run(
        shards=8, accounts=256, cross_every=16, **plan_scale
    ))

    epoch_scale = (
        dict(txns=120, epochs=1, work=60)
        if smoke else dict(txns=600, epochs=3, work=400)
    )
    shape = dict(shards=8, accounts=64, cross_every=16, **epoch_scale)
    total = epoch_scale["txns"] * epoch_scale["epochs"]
    w0_elapsed, _, w0_state = _epoch_run(0, **shape)
    w2_elapsed, shipped, w2_state = _epoch_run(2, **shape)
    assert w0_state == w2_state, "workers=2 diverged from the inline reference"
    metrics["parallel_epoch_w0_txns_per_sec"] = round(total / w0_elapsed)
    metrics["parallel_epoch_w2_txns_per_sec"] = round(total / w2_elapsed)
    metrics["parallel_epoch_speedup"] = round(w0_elapsed / w2_elapsed, 3)
    metrics["parallel_epoch_bytes_per_txn"] = round(shipped / total)

    # End to end: the B1 claim suite itself, single-process vs a warm pool.
    b1_reps = 1 if smoke else 2
    start = time.perf_counter()
    for _ in range(b1_reps):
        results = bench_b1_ycsb.run_all(workers=0)
    w0_elapsed = time.perf_counter() - start
    with WorkerPool(2) as pool:
        pool.map_calls([(int, ("1",))] * 2)  # warm both pipes
        start = time.perf_counter()
        for _ in range(b1_reps):
            bench_b1_ycsb.run_all(workers=2, pool=pool)
        w2_elapsed = time.perf_counter() - start
    txns = sum(
        sum(r.count for r in result.metrics.recorders().values())
        for result in results
    ) * b1_reps
    metrics["parallel_b1_w0_wall_sec"] = round(w0_elapsed, 4)
    metrics["parallel_b1_w2_wall_sec"] = round(w2_elapsed, 4)
    metrics["parallel_b1_speedup"] = round(w0_elapsed / w2_elapsed, 3)
    metrics["parallel_b1_w2_txns_per_sec"] = round(txns / w2_elapsed)
    return metrics


if __name__ == "__main__":
    import json

    print(json.dumps(run(), indent=2, sort_keys=True))

"""Smoke test for the perf harness (marked ``perf``; not in tier-1).

Runs every bench at reduced scale and checks the metrics come back sane.
For the gated run against the committed baseline use::

    PYTHONPATH=src python scripts/perfcheck.py
"""

import pytest

from benchmarks.perf import bench_e2e, bench_kernel, bench_locks

pytestmark = pytest.mark.perf


def test_kernel_smoke():
    metrics = bench_kernel.run(smoke=True)
    assert metrics["kernel_events_per_sec"] > 0
    assert metrics["kernel_heap_only_events_per_sec"] > 0
    # The fast path must never be slower than the heap-only executor.
    assert metrics["kernel_fast_path_speedup"] >= 1.0


def test_locks_smoke():
    metrics = bench_locks.run(smoke=True)
    for name, value in metrics.items():
        assert value > 0, name


def test_e2e_smoke():
    metrics = bench_e2e.run(smoke=True)
    assert metrics["e2e_smoke_txns_per_sec"] > 0


def test_parallel_smoke():
    from benchmarks.perf import bench_parallel

    metrics = bench_parallel.run(smoke=True)
    assert metrics["parallel_plan_txns_per_sec"] > 0
    assert metrics["parallel_epoch_w0_txns_per_sec"] > 0
    assert metrics["parallel_epoch_w2_txns_per_sec"] > 0
    assert metrics["parallel_epoch_bytes_per_txn"] > 0
    # Speedups are host-dependent (sub-1x on one core); positivity is the
    # portable claim — equivalence is asserted inside run() itself.
    assert metrics["parallel_epoch_speedup"] > 0
    assert metrics["parallel_b1_speedup"] > 0

"""C3 — Orleans-style actor transactions carry a significant penalty.

Paper claim (§4.2): enabling transactional serializability in actor
runtimes (Orleans Transactions) "has been shown to introduce a significant
performance penalty according to recent experimental evaluations,
demotivating broader adoption".

This bench runs the transfer workload on plain actors vs actor
transactions at three contention levels and reports the penalty factor.
Expected shape: the transactional build is several times slower at p50
everywhere, and degrades further as contention grows (locks serialize hot
accounts), while plain actors are almost contention-insensitive — they
simply don't coordinate (and pay in atomicity, see C1).
"""

from repro.apps import ActorBank
from repro.sim import Environment
from repro.workloads import TransferWorkload

from benchmarks.common import report, run_transfers
from repro.harness import format_rows

OPS = 120
CLIENTS = 6
CONTENTION = [("low", 200, 0.2), ("medium", 40, 0.7), ("high", 8, 0.9)]


def run_pair(accounts, theta, seed):
    out = {}
    for mode in ("plain", "transaction"):
        env = Environment(seed=seed + (0 if mode == "plain" else 1))
        workload = TransferWorkload(num_accounts=accounts, theta=theta)
        bank = ActorBank(env, workload, mode=mode)
        out[mode] = run_transfers(
            env, bank, workload, f"{mode}", ops_count=OPS, clients=CLIENTS,
            setup=True,
        )
    return out


def run_all():
    rows = []
    for label, accounts, theta in CONTENTION:
        pair = run_pair(accounts, theta, seed=3000 + accounts)
        penalty_p50 = pair["transaction"].p(50) / max(1e-9, pair["plain"].p(50))
        penalty_tput = pair["plain"].throughput / max(1e-9, pair["transaction"].throughput)
        rows.append(
            (label, accounts, pair["plain"], pair["transaction"],
             penalty_p50, penalty_tput)
        )
    return rows


def test_c3_actor_transaction_penalty(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table_rows = [
        [
            label,
            accounts,
            f"{plain.throughput:.0f}",
            f"{txn.throughput:.0f}",
            f"{plain.p(50):.2f}",
            f"{txn.p(50):.2f}",
            f"{penalty_p50:.1f}x",
            f"{penalty_tput:.1f}x",
        ]
        for label, accounts, plain, txn, penalty_p50, penalty_tput in rows
    ]
    report(
        "C3", "actor transactions: the price of ACID on actors",
        format_rows(
            ["contention", "accounts", "plain ops/s", "txn ops/s",
             "plain p50", "txn p50", "p50 penalty", "tput penalty"],
            table_rows,
        ),
    )
    penalties = {label: p for label, _a, _p, _t, p, _tp in rows}
    # A significant penalty at every contention level...
    assert all(p > 1.5 for p in penalties.values())
    # ...that worsens with contention.
    assert penalties["high"] > penalties["low"]

"""C16 — Replication: the latency floor of quorum commits and consistency levels.

Paper claim (§3.2 / "Distributed Transactional Systems Cannot Be Fast"):
once a shard is replicated for availability, every acknowledged write
must pay at least one quorum round trip, and every *linearizable* read
pays a read-index confirmation round — latency that no amount of
engineering removes.  The recourse the paper discusses is weakening the
read path: bounded-stale follower reads answer locally (zero replication
round trips) at the price of staleness, with read-your-writes sessions
as the middle ground.

Setup: the same 2-shard bank, once unreplicated (one engine per shard)
and once as factor-3 replica groups (``repro.replication``), driven by
sequential single-shard transfers, cross-shard 2PC transfers, and point
reads at each consistency level.  All latencies are *virtual* ms — the
protocol cost, not host speed.

Expected shape: quorum-replicated writes sit strictly above the
single-replica baseline (the extra append round trip + follower fsync);
2PC over replication stacks both costs; leader reads pay the read-index
barrier while follower reads answer from local state and come in well
below them.  Read-your-writes sessions split the difference: local-speed
at the median, but reading your *own* fresh write waits out commit-index
propagation to the follower, so the tail stretches past the leader path.

Run directly (``python benchmarks/bench_c16_replication.py [--smoke]``),
via pytest (``pytest benchmarks/bench_c16_replication.py``), or through
``scripts/perfcheck.py`` (which calls :func:`run`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

if __package__ in (None, ""):  # direct script execution
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.db import IsolationLevel, ShardedDatabase
from repro.db.sharding import shard_of
from repro.harness import format_rows
from repro.replication import ReplicationConfig, Session
from repro.sim import Environment

from benchmarks.common import report

NUM_SHARDS = 2
RTT_MS = 1.0
WRITE_OPS = 60
READ_OPS = 60
SMOKE_OPS = 10
SER = IsolationLevel.SERIALIZABLE


def _key_on(shard: int, start: int = 0) -> int:
    key = start
    while shard_of(key, NUM_SHARDS) != shard:
        key += 1
    return key


def _make_db(env: Environment, replicated: bool) -> ShardedDatabase:
    db = ShardedDatabase(
        env, num_shards=NUM_SHARDS, name="bank", rtt_ms=RTT_MS,
        num_nodes=3 if replicated else None,
        replication=ReplicationConfig(factor=3) if replicated else None,
    )
    db.create_table("accounts")
    keys = sorted({_key_on(s, i) for s in range(NUM_SHARDS) for i in range(64)})
    db.load("accounts", [{"id": k, "balance": 1000} for k in keys])
    return db


def _transfer(db, src, dst, amount):
    txn = db.begin(SER)
    a = yield from db.get(txn, "accounts", src)
    b = yield from db.get(txn, "accounts", dst)
    yield from db.put(txn, "accounts", src,
                      {"id": src, "balance": a["balance"] - amount})
    yield from db.put(txn, "accounts", dst,
                      {"id": dst, "balance": b["balance"] + amount})
    yield from db.commit(txn)
    return txn


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    count = len(ordered)
    return {
        "mean_ms": sum(ordered) / count,
        "p50_ms": ordered[count // 2],
        "p99_ms": ordered[int(0.99 * (count - 1))],
        "ops": count,
    }


def run_writes(replicated: bool, cross_shard: bool, ops: int, seed: int) -> dict:
    env = Environment(seed=seed)
    db = _make_db(env, replicated)
    k0a, k0b = _key_on(0), _key_on(0, start=_key_on(0) + 1)
    k1 = _key_on(1)
    env.run(until=200.0)  # bootstrap no-ops commit; groups go quiescent

    latencies: list[float] = []

    def loop():
        for index in range(ops):
            src, dst = (k0a, k1) if cross_shard else (k0a, k0b)
            started = env.now
            yield from _transfer(db, src, dst, 1)
            latencies.append(env.now - started)

    env.run_until(env.process(loop(), label="c16.writes"))
    label = "2-shard 2pc" if cross_shard else "1-shard write"
    mode = "quorum(3)" if replicated else "single"
    return {"op": f"{label}/{mode}", **_percentiles(latencies)}


def run_reads(level: str, ops: int, seed: int) -> dict:
    env = Environment(seed=seed)
    db = _make_db(env, replicated=True)
    key = _key_on(0)
    env.run(until=200.0)
    group = db.replica_group(0)
    session = Session()

    latencies: list[float] = []

    def loop():
        for index in range(ops):
            txn = yield from _transfer(db, key, _key_on(0, start=key + 1), 1)
            session.observe(txn.applied.get(0))
            started = env.now
            if level == "leader":
                row = yield from group.leader_read("accounts", key)
            elif level == "follower":
                row = yield from group.follower_read("accounts", key)
            else:  # follower read honouring read-your-writes
                row = yield from group.follower_read(
                    "accounts", key, session=session
                )
            assert row is not None
            latencies.append(env.now - started)

    env.run_until(env.process(loop(), label="c16.reads"))
    return {"op": f"read/{level}", **_percentiles(latencies)}


def run_all(smoke: bool = False) -> list[dict]:
    ops = SMOKE_OPS if smoke else WRITE_OPS
    read_ops = SMOKE_OPS if smoke else READ_OPS
    return [
        run_writes(replicated=False, cross_shard=False, ops=ops, seed=161),
        run_writes(replicated=True, cross_shard=False, ops=ops, seed=161),
        run_writes(replicated=False, cross_shard=True, ops=ops, seed=161),
        run_writes(replicated=True, cross_shard=True, ops=ops, seed=161),
        run_reads("leader", ops=read_ops, seed=162),
        run_reads("follower", ops=read_ops, seed=162),
        run_reads("follower+session", ops=read_ops, seed=162),
    ]


def check_claims(results: list[dict]) -> None:
    by = {r["op"]: r for r in results}
    # Quorum-acknowledged writes pay the replication round trip: strictly
    # slower than the single-replica baseline, one- and two-shard alike.
    assert by["1-shard write/quorum(3)"]["mean_ms"] > by["1-shard write/single"]["mean_ms"]
    assert by["2-shard 2pc/quorum(3)"]["mean_ms"] > by["2-shard 2pc/single"]["mean_ms"]
    # 2PC over replication stacks the prepare and decide quorum rounds.
    assert by["2-shard 2pc/quorum(3)"]["mean_ms"] > by["1-shard write/quorum(3)"]["mean_ms"]
    # Linearizable leader reads pay the read-index barrier; bounded-stale
    # follower reads answer locally and come in below them.
    assert by["read/follower"]["mean_ms"] < by["read/leader"]["mean_ms"]
    # Read-your-writes sessions answer locally once the follower has caught
    # up (the median read beats the leader path) but pay the commit-index
    # propagation wait right after observing your own fresh write (the tail
    # stretches past the leader read — freshness is not free on a follower).
    assert by["read/follower+session"]["p50_ms"] < by["read/leader"]["mean_ms"]
    assert by["read/follower+session"]["p99_ms"] > by["read/leader"]["p99_ms"]


def format_table(results: list[dict]) -> str:
    return format_rows(
        ["operation", "ops", "mean ms", "p50 ms", "p99 ms"],
        [[r["op"], r["ops"], f"{r['mean_ms']:.3f}", f"{r['p50_ms']:.3f}",
          f"{r['p99_ms']:.3f}"] for r in results],
    )


def test_c16_replication(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C16", "replication latency floor: quorum writes and consistency levels",
        format_table(results),
    )
    check_claims(results)


def run(smoke: bool = False) -> dict:
    """perfcheck entry point: key virtual latencies plus wall time."""
    started = time.perf_counter()
    results = run_all(smoke=smoke)
    wall = time.perf_counter() - started
    if not smoke:
        check_claims(results)
    by = {r["op"]: r for r in results}
    return {
        "c16_single_write_mean_ms": round(by["1-shard write/single"]["mean_ms"], 3),
        "c16_quorum_write_mean_ms": round(by["1-shard write/quorum(3)"]["mean_ms"], 3),
        "c16_leader_read_mean_ms": round(by["read/leader"]["mean_ms"], 3),
        "c16_follower_read_mean_ms": round(by["read/follower"]["mean_ms"], 3),
        "c16_replication_wall_sec": round(wall, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale sanity run; skips the claim checks")
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    print(format_table(results))
    if not args.smoke:
        check_claims(results)
        report(
            "C16", "replication latency floor: quorum writes and consistency levels",
            format_table(results),
        )
        print("C16 claims hold; wrote benchmarks/results/C16.txt")
    else:
        print("C16 smoke OK (claim checks skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

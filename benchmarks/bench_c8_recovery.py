"""C8 — Recovery models: stateless restart vs actor migration vs checkpoint replay.

Paper claims (§4.1): microservices recover by restarting stateless
instances against a surviving database; actor runtimes migrate actors to
surviving silos (but unsaved state is lost); dataflows roll back to the
last checkpoint and replay.

Setup: each runtime processes a stream of operations; a crash is injected
mid-run; we measure *unavailability* (gap until the first post-crash
success), lost effects, and duplicated effects.  Expected shape:

- microservices: short gap (restart), no lost committed state;
- actors: gap ~ one failed call + re-activation, unsaved deltas lost when
  saves are skipped (we save on every call here, so clean);
- dataflow: gap ~ recovery + replay, exactly-once state.
"""

from repro.apps import ActorBank, DataflowBank, DbBank
from repro.db import IsolationLevel
from repro.harness import format_rows
from repro.messaging import RpcTimeout
from repro.microservices import Microservice, MicroserviceApp
from repro.sim import Environment
from repro.workloads import TransferWorkload

from benchmarks.common import report

OPS = 120
GAP_MS = 5.0
CRASH_AT = 300.0


def _issue_loop(env, execute, results, ops):
    def loop():
        for index, op in enumerate(ops):
            yield env.timeout(GAP_MS)
            try:
                yield from execute(op)
                results.append((env.now, True))
            except Exception:
                results.append((env.now, False))

    return loop


def _downtime(results):
    """Longest success-to-success gap bracketing the crash instant."""
    successes = [t for t, ok in results if ok]
    gaps = [(b - a, a) for a, b in zip(successes, successes[1:])]
    around_crash = [g for g, at in gaps if at <= CRASH_AT + 100]
    return max(around_crash) if around_crash else 0.0


def run_microservices():
    env = Environment(seed=81)
    workload = TransferWorkload(num_accounts=20, theta=0.4)

    def init_db(db):
        db.create_table("accounts", primary_key="id")
        db.load("accounts", workload.initial_rows())

    service = Microservice("bank", init_db=init_db)

    @service.handler("transfer")
    def transfer(ctx, payload):
        from repro.apps.core.retry import with_txn

        def body(txn):
            src = yield from ctx.db.get(txn, "accounts", payload["src"])
            dst = yield from ctx.db.get(txn, "accounts", payload["dst"])
            yield from ctx.db.put(txn, "accounts", payload["src"],
                                  {"id": payload["src"],
                                   "balance": src["balance"] - payload["amount"]})
            yield from ctx.db.put(txn, "accounts", payload["dst"],
                                  {"id": payload["dst"],
                                   "balance": dst["balance"] + payload["amount"]})
            return True

        result = yield from with_txn(ctx, body)
        return result

    app = MicroserviceApp(env, dedup_requests=True)
    app.add_service(service)
    ops = list(workload.operations(env.stream("ops"), OPS))
    results = []

    def execute(op):
        yield from app.request(
            "bank", "transfer",
            {"src": op.src, "dst": op.dst, "amount": op.amount},
            timeout=30.0, retries=3, idempotency_key=op.op_id,
        )

    env.process(_issue_loop(env, execute, results, ops)())
    env.schedule(CRASH_AT, app.crash_service, "bank")
    env.schedule(CRASH_AT + 40.0, app.restart_service, "bank")  # pod restart
    env.run(until=20_000)
    rows = app.database_of("bank").engine.all_rows("accounts")
    total = sum(row["balance"] for row in rows)
    return {
        "runtime": "microservice (stateless restart)",
        "ok": sum(1 for _t, ok in results if ok),
        "failed": sum(1 for _t, ok in results if not ok),
        "downtime_ms": _downtime(results),
        "conserved": total == workload.expected_total,
    }


def run_actors():
    env = Environment(seed=82)
    workload = TransferWorkload(num_accounts=20, theta=0.4)
    bank = ActorBank(env, workload, mode="transaction")
    env.run_until(env.process(bank.setup()))
    ops = list(workload.operations(env.stream("ops"), OPS))
    results = []

    def execute(op):
        yield from bank.execute(op)

    env.process(_issue_loop(env, execute, results, ops)())
    env.schedule(CRASH_AT, bank.runtime.crash_silo, 0)
    env.schedule(CRASH_AT + 500.0, bank.runtime.restart_silo, 0)
    env.run(until=30_000)
    total = sum(row["balance"] for row in bank.balances())
    return {
        "runtime": "actors (migration)",
        "ok": sum(1 for _t, ok in results if ok),
        "failed": sum(1 for _t, ok in results if not ok),
        "downtime_ms": _downtime(results),
        "conserved": total == workload.expected_total,
    }


def run_dataflow():
    env = Environment(seed=83)
    workload = TransferWorkload(num_accounts=20, theta=0.4)
    bank = DataflowBank(env, workload, checkpoint_interval=100.0)
    bank.start()
    ops = list(workload.operations(env.stream("ops"), OPS))

    def feeder():
        for op in ops:
            yield env.timeout(GAP_MS)
            bank.submit(op)

    env.process(feeder())

    def crash_and_recover():
        yield env.timeout(CRASH_AT)
        bank.runtime.crash_worker(0)
        yield env.timeout(20.0)  # detection delay
        yield from bank.runtime.recover()

    env.process(crash_and_recover())
    env.run(until=30_000)
    outputs = bank.runtime.sink_outputs("done")
    emit_times = sorted(t for _k, _v, t in outputs)
    gaps = [b - a for a, b in zip(emit_times, emit_times[1:])]
    total = sum(row["balance"] for row in bank.balances())
    return {
        "runtime": "dataflow (checkpoint+replay)",
        "ok": len(outputs),
        "failed": 0,
        "downtime_ms": max(gaps) if gaps else 0.0,
        "conserved": total == workload.expected_total,
        "replayed": bank.runtime.stats.replayed_records,
    }


def run_all():
    return [run_microservices(), run_actors(), run_dataflow()]


def test_c8_recovery_models(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C8", "crash mid-run: recovery behaviour per runtime",
        format_rows(
            ["runtime", "ok", "failed", "max success gap ms", "state conserved"],
            [[r["runtime"], r["ok"], r["failed"], f"{r['downtime_ms']:.0f}",
              r["conserved"]] for r in rows],
        ),
    )
    micro, actors, dataflow = rows
    # Every model eventually restores a consistent state.
    assert micro["conserved"] and actors["conserved"] and dataflow["conserved"]
    # All made progress after the crash.
    assert micro["ok"] > OPS * 0.8
    assert dataflow["ok"] == OPS
    # Each paradigm shows a visible unavailability window around the crash.
    assert micro["downtime_ms"] > 2 * GAP_MS
    assert dataflow["downtime_ms"] > 2 * GAP_MS

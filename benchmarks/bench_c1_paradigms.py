"""C1 — Programming paradigms differ in throughput, latency, and consistency.

Paper claim (§3.1/§4): microservice frameworks, actors, stateful FaaS, and
dataflows occupy different points in the performance/consistency space;
the trade-offs only become visible when the *same* application runs on all
of them.

This bench runs the bank-transfer workload on eight builds and reports the
standard table.  Expected shape:

- weak builds (db-read-committed, faas-kv) are fast but dirty (anomalies);
- coordinated builds (actors+txn, faas-entities/workflow) are clean but
  slower;
- durable-workflows is the instructive middle: workflow *progress* is
  exactly-once, yet its unlocked activities still race on the shared KV —
  exactly why Durable Functions also ships explicit entity locks (§4.2);
- txn-dataflow is clean with throughput competitive to the coordinated
  builds (batching amortizes commits).
"""

from repro.apps import ActorBank, DbBank, FaasBank, TxnDataflowBank
from repro.apps.banking import DurableWorkflowBank
from repro.db import IsolationLevel
from repro.sim import Environment
from repro.harness import format_results, run_cells
from repro.workloads import TransferWorkload

from benchmarks.common import report, run_transfers

OPS = 160
CLIENTS = 8

BUILDERS = [
    ("db-serializable", lambda env, w: (DbBank(env, w), False)),
    ("db-read-committed",
     lambda env, w: (DbBank(env, w, isolation=IsolationLevel.READ_COMMITTED), False)),
    ("actors-plain", lambda env, w: (ActorBank(env, w, mode="plain"), True)),
    ("actors-txn", lambda env, w: (ActorBank(env, w, mode="transaction"), True)),
    ("faas-kv", lambda env, w: (FaasBank(env, w, mode="kv"), True)),
    ("faas-entities", lambda env, w: (FaasBank(env, w, mode="entities"), True)),
    ("faas-workflow", lambda env, w: (FaasBank(env, w, mode="workflow"), True)),
    ("durable-workflows", lambda env, w: (DurableWorkflowBank(env, w), True)),
    ("txn-dataflow", lambda env, w: (TxnDataflowBank(env, w), True)),
]


def run_one(index):
    """One paradigm build end to end — module-level so cells can fan out
    to worker processes (the builder lambdas themselves never cross the
    process boundary, only the index does)."""
    label, build = BUILDERS[index]
    env = Environment(seed=1000 + index)
    workload = TransferWorkload(num_accounts=40, theta=0.7)
    bank, needs_setup = build(env, workload)
    if isinstance(bank, TxnDataflowBank):
        bank.start()
    return run_transfers(env, bank, workload, label, ops_count=OPS,
                         clients=CLIENTS, setup=needs_setup)


def run_all(workers: int = 0, pool=None):
    return run_cells(
        [(run_one, (index,)) for index in range(len(BUILDERS))],
        workers=workers, pool=pool,
    )


def test_c1_paradigm_comparison(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("C1", "same transfer workload on every paradigm",
           format_results(results))
    by_label = {r.label: r for r in results}

    # Strong builds are clean.
    for label in ("db-serializable", "actors-txn", "faas-entities",
                  "faas-workflow", "txn-dataflow"):
        assert by_label[label].anomalies.clean, label

    # At least one weak build exhibits anomalies under this contention.
    weak_dirty = [
        label for label in ("db-read-committed", "faas-kv")
        if not by_label[label].anomalies.clean
    ]
    assert weak_dirty, "expected at least one weak build to violate invariants"

    # Coordination costs latency: actor transactions slower than plain actors.
    assert by_label["actors-txn"].p(50) > by_label["actors-plain"].p(50)

"""A3 (ablation) — the cost of distributed commit vs the multi-shard fraction.

Design context (§5.2: cross-engine/lower-level transactions; §4.2: the
price of distributed commit): a sharded database commits single-shard
transactions in one phase and cross-shard transactions with 2PC.  The
classic curve: throughput degrades smoothly as the fraction of
transactions that touch two shards rises, because each such transaction
pays prepare+commit round trips *and* holds locks across them.

Sweep: transfer workload with the destination forced to the source's
shard (0%) or to another shard (25/50/100%).
"""

from repro.db import IsolationLevel, ShardedDatabase
from repro.db.errors import TransactionAborted
from repro.db.sharding import shard_of
from repro.harness import WorkloadDriver, format_rows
from repro.sim import Environment
from repro.workloads import ClosedLoop
from repro.workloads.transfers import TransferOp

from benchmarks.common import report

SER = IsolationLevel.SERIALIZABLE
OPS = 120
CLIENTS = 6
ACCOUNTS = 64
SHARDS = 4


def make_ops(env, fraction, count):
    """Transfers whose cross-shard fraction is exactly controlled."""
    rng = env.stream("ops")
    by_shard = {}
    for i in range(ACCOUNTS):
        account = f"acct-{i:05d}"
        by_shard.setdefault(shard_of(account, SHARDS), []).append(account)
    ops = []
    for i in range(count):
        src = f"acct-{rng.randrange(ACCOUNTS):05d}"
        src_shard = shard_of(src, SHARDS)
        cross = rng.random() < fraction
        if cross:
            other_shards = [s for s in by_shard if s != src_shard]
            dst = rng.choice(by_shard[rng.choice(other_shards)])
        else:
            candidates = [a for a in by_shard[src_shard] if a != src]
            dst = rng.choice(candidates)
        ops.append(TransferOp(f"op-{i}", src, dst, 5))
    return ops


def run_fraction(fraction, seed):
    env = Environment(seed=seed)
    sharded = ShardedDatabase(env, num_shards=SHARDS, rtt_ms=3.0)
    sharded.create_table("accounts", primary_key="id")
    sharded.load("accounts", [
        {"id": f"acct-{i:05d}", "balance": 1000} for i in range(ACCOUNTS)
    ])
    ops = make_ops(env, fraction, OPS)

    def execute(op):
        for attempt in range(8):
            txn = sharded.begin(SER)
            try:
                src = yield from sharded.get(txn, "accounts", op.src)
                dst = yield from sharded.get(txn, "accounts", op.dst)
                yield from sharded.put(txn, "accounts", op.src,
                                       {**src, "balance": src["balance"] - op.amount})
                yield from sharded.put(txn, "accounts", op.dst,
                                       {**dst, "balance": dst["balance"] + op.amount})
                yield from sharded.commit(txn)
                return
            except TransactionAborted:
                sharded.abort(txn)
                yield env.timeout(1.0 + attempt)
        raise RuntimeError("retries exhausted")

    driver = WorkloadDriver(env, label=f"{int(fraction * 100)}% cross-shard")
    arrival = ClosedLoop(clients=CLIENTS, ops_per_client=OPS // CLIENTS,
                         think_time_ms=2.0)
    result = env.run_until(
        env.process(driver.run(ops[: arrival.total_ops], execute, arrival))
    )
    total = sum(r["balance"] for r in sharded.all_rows("accounts"))
    result.extra["conserved"] = total == ACCOUNTS * 1000
    result.extra["2pc_commits"] = sharded.stats.distributed_commits
    return result


def run_all():
    return [run_fraction(f, seed=291 + i)
            for i, f in enumerate((0.0, 0.25, 0.5, 1.0))]


def test_a3_cross_shard_fraction_sweep(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "A3", "distributed commit cost vs cross-shard fraction",
        format_rows(
            ["fraction", "ops/s", "p50 ms", "p99 ms", "2PC commits", "conserved"],
            [[r.label, f"{r.throughput:.0f}", f"{r.p(50):.2f}",
              f"{r.p(99):.2f}", r.extra["2pc_commits"], r.extra["conserved"]]
             for r in results],
        ),
    )
    assert all(r.extra["conserved"] for r in results)
    by_label = {r.label: r for r in results}
    # Atomic everywhere, but throughput decays monotonically-ish with the
    # cross-shard fraction, and the all-local case clearly beats all-2PC.
    assert (by_label["0% cross-shard"].throughput
            > 1.3 * by_label["100% cross-shard"].throughput)
    assert by_label["0% cross-shard"].p(50) < by_label["100% cross-shard"].p(50)
    assert by_label["100% cross-shard"].extra["2pc_commits"] >= OPS * 0.9
"""Shared helpers for the claim benchmarks (C1..C12).

Each benchmark regenerates one table operationalizing one qualitative claim
of the tutorial (see DESIGN.md §3).  Tables are printed *and* written to
``benchmarks/results/<cid>.txt`` so `pytest`'s output capture never loses
them; EXPERIMENTS.md records the expected-vs-measured shape.
"""

from __future__ import annotations

import os
from typing import Generator, Optional

from repro.harness import RunResult, WorkloadDriver, format_results, format_rows
from repro.sim import Environment
from repro.workloads import ClosedLoop, TransferWorkload

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def report(cid: str, title: str, text: str) -> str:
    """Print a claim table and persist it under ``benchmarks/results``."""
    banner = f"\n=== {cid}: {title} ===\n{text}\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{cid}.txt"), "w") as handle:
        handle.write(banner)
    print(banner)
    return banner


def run_transfers(
    env: Environment,
    bank,
    workload: TransferWorkload,
    label: str,
    ops_count: int = 200,
    clients: int = 8,
    think_time_ms: float = 2.0,
    setup: bool = False,
) -> RunResult:
    """Drive a transfer workload through a bank adapter (closed loop)."""
    if setup:
        env.run_until(env.process(bank.setup()))
    ops = list(workload.operations(env.stream(f"ops:{label}"), ops_count))
    driver = WorkloadDriver(env, label=label)
    driver.ledger = bank.ledger  # the bank applies effects into this ledger
    arrival = ClosedLoop(
        clients=clients,
        ops_per_client=ops_count // clients,
        think_time_ms=think_time_ms,
    )
    result = env.run_until(
        env.process(
            driver.run(
                ops[: arrival.total_ops],
                bank.execute,
                arrival,
                invariants=workload.invariants(),
                state_fn=bank.balances,
            )
        )
    )
    return result

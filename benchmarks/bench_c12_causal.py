"""C12 — Cross-service causal consistency (the Antipode direction).

Paper claim (§5.2): "more recent work introduces causal consistency for
microservice architectures" — because without it, a service acting on a
notification can read a replica that has not yet seen the state the
notification refers to.

Setup: service A writes an order to a replicated store (replication delay
15 ms) and immediately notifies service B (message delay ~1 ms).  B reads
the order at *its* replica:

- ``eventual`` — plain read: B frequently sees nothing (stale read);
- ``causal`` — A's causal context travels on the notification and B's
  read waits for it: never stale, at the cost of waiting out replication
  lag on cache-cold reads.
"""

from repro.core.metrics import percentile
from repro.harness import format_rows
from repro.sim import Environment
from repro.transactions import CausalStore

from benchmarks.common import report

EVENTS = 200
REPLICATION_MS = 15.0
NOTIFY_MS = 1.0


def run_mode(causal: bool, seed: int):
    env = Environment(seed=seed)
    store = CausalStore(env, ["replica-a", "replica-b"],
                        replication_delay=REPLICATION_MS)
    stale = {"count": 0}
    latencies = []

    def one(index):
        # Service A: write the order, then notify B.
        session_a = store.session("replica-a")
        session_a.write(f"order-{index}", {"status": "placed"})
        yield env.timeout(NOTIFY_MS)  # the notification hop
        # Service B: handle the notification by reading the order.
        session_b = store.session("replica-b")
        started = env.now
        if causal:
            session_b.attach(session_a.context)  # lineage on the message
            value = yield from session_b.read(f"order-{index}")
        else:
            value = session_b.read_eventual(f"order-{index}")
        latencies.append(env.now - started)
        if value is None:
            stale["count"] += 1

    def driver():
        for index in range(EVENTS):
            yield env.timeout(5.0)
            env.process(one(index))

    env.process(driver())
    env.run(until=60_000)
    return {
        "mode": "causal (context propagated)" if causal else "eventual (no context)",
        "stale_reads": stale["count"],
        "p50_read_ms": percentile(latencies, 50),
        "p99_read_ms": percentile(latencies, 99),
        "waits": store.stats.stale_reads_prevented,
    }


def run_all():
    return [run_mode(causal=False, seed=121), run_mode(causal=True, seed=122)]


def test_c12_causal_consistency(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C12", "cross-service reads: eventual vs causal",
        format_rows(
            ["mode", "stale reads", f"of {EVENTS}", "read p50 ms",
             "read p99 ms", "reads that waited"],
            [[r["mode"], r["stale_reads"], EVENTS, f"{r['p50_read_ms']:.1f}",
              f"{r['p99_read_ms']:.1f}", r["waits"]] for r in rows],
        ),
    )
    eventual, causal = rows
    # Without causal metadata, B misses most reads (15ms lag vs 1ms hop).
    assert eventual["stale_reads"] > EVENTS * 0.5
    # With it, B never reads stale state — it waits instead.
    assert causal["stale_reads"] == 0
    assert causal["waits"] > 0
    assert causal["p99_read_ms"] >= REPLICATION_MS - NOTIFY_MS - 1

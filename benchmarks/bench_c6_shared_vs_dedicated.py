"""C6 — A shared database jeopardizes performance isolation.

Paper claim (§3.3): "a physically centralized database can impact teams by
sharing database resources and artifacts (e.g., memory and disk resources,
locks, or latches), jeopardizing performance isolation"; database-per-
service buys isolation "at the expense of higher complexity and
infrastructure costs".

Setup: a latency-sensitive *victim* service does point reads while a
*noisy* tenant hammers big scans.  Two deployments with the same total
resources: one shared database (one 8-connection pool) vs two dedicated
databases (4 connections each).  Expected shape: the victim's p99 degrades
by a large factor under the shared deployment and stays flat under the
dedicated one.
"""

from repro.db import DatabaseServer, IsolationLevel
from repro.harness import format_rows
from repro.net.latency import Latency
from repro.core.metrics import percentile
from repro.sim import Environment

from benchmarks.common import report

RC = IsolationLevel.READ_COMMITTED
VICTIM_OPS = 150
NOISY_CLIENTS = 12
RUN_MS = 2000.0


def _load(db, table, rows):
    db.create_table(table, primary_key="id")
    db.load(table, rows)


def run_deployment(shared: bool, seed: int):
    env = Environment(seed=seed)
    if shared:
        victim_db = noisy_db = DatabaseServer(
            env, name="shared", connections=8,
            op_service_time=Latency.constant(0.3),
            network_rtt=Latency.constant(0.5),
        )
    else:
        victim_db = DatabaseServer(
            env, name="victim", connections=4,
            op_service_time=Latency.constant(0.3),
            network_rtt=Latency.constant(0.5),
        )
        noisy_db = DatabaseServer(
            env, name="noisy", connections=4,
            op_service_time=Latency.constant(0.3),
            network_rtt=Latency.constant(0.5),
        )
    _load(victim_db, "profiles", [{"id": i, "data": "x"} for i in range(100)])
    if noisy_db is not victim_db:
        _load(noisy_db, "events", [{"id": i, "blob": "y"} for i in range(500)])
    else:
        _load(noisy_db, "events", [{"id": i, "blob": "y"} for i in range(500)])

    latencies = []

    def victim(env):
        rng = env.stream("victim")
        for _ in range(VICTIM_OPS):
            yield env.timeout(rng.expovariate(1.0 / 10.0))
            start = env.now
            txn = yield from victim_db.begin(RC)
            yield from victim_db.get(txn, "profiles", rng.randrange(100))
            yield from victim_db.commit(txn)
            latencies.append(env.now - start)

    def noisy(env):
        while env.now < RUN_MS:
            txn = yield from noisy_db.begin(RC)
            # A fat analytical scan holding its connection for a long time.
            for _ in range(5):
                yield from noisy_db.scan(txn, "events")
            yield from noisy_db.commit(txn)

    env.process(victim(env))
    for _ in range(NOISY_CLIENTS):
        env.process(noisy(env))
    env.run(until=RUN_MS * 3)
    return {
        "deployment": "shared database" if shared else "database per service",
        "victim_p50": percentile(latencies, 50),
        "victim_p99": percentile(latencies, 99),
        "victim_ops": len(latencies),
    }


def run_all():
    return [run_deployment(shared=True, seed=61),
            run_deployment(shared=False, seed=62)]


def test_c6_shared_vs_dedicated(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C6", "noisy neighbour: shared vs dedicated database",
        format_rows(
            ["deployment", "victim p50 ms", "victim p99 ms", "victim ops"],
            [[r["deployment"], f"{r['victim_p50']:.2f}",
              f"{r['victim_p99']:.2f}", r["victim_ops"]] for r in rows],
        ),
    )
    shared, dedicated = rows
    # Performance isolation: the dedicated victim is far better at p99.
    assert shared["victim_p99"] > 3 * dedicated["victim_p99"]
    assert shared["victim_p50"] > dedicated["victim_p50"]

"""A2 (ablation) — conflict-free waves vs serial epochs in the txn dataflow.

Design choice under test (DESIGN.md §4): the Styx-like engine parallelizes
an epoch by splitting it into conflict-free waves
(:func:`repro.transactions.sequencer.partition_conflicts`).  This ablation
disables the optimization by declaring every transaction's key set as one
shared key (forcing full serialization) and measures the cost at two skew
levels.

Expected shape: on low-skew workloads waves buy a large speedup (most
transactions are disjoint and share a wave); on extreme skew everything
conflicts anyway, so both variants converge.
"""

from repro.dataflow import TransactionalDataflow
from repro.harness import format_rows
from repro.sim import Environment
from repro.workloads import TransferWorkload

from benchmarks.common import report

OPS = 150


def run_engine(theta, parallel_waves, seed):
    env = Environment(seed=seed)
    workload = TransferWorkload(num_accounts=60, theta=theta)
    engine = TransactionalDataflow(env, epoch_interval=5.0,
                                   checkpoint_every=10_000)

    @engine.function("transfer")
    def transfer(ctx, key, payload):
        ctx.put(key, ctx.get(key, workload.initial_balance) - payload["amount"])
        dst = payload["dst"]
        ctx.put(dst, ctx.get(dst, workload.initial_balance) + payload["amount"])
        return None
        yield  # pragma: no cover

    engine.start()
    ops = list(workload.operations(env.stream("ops"), OPS))
    done = {"at": 0.0, "count": 0}

    def client(op):
        keys = [op.src, op.dst] if parallel_waves else ["GLOBAL"]
        future = engine.submit(
            "transfer", op.src, {"dst": op.dst, "amount": op.amount}, keys=keys
        )
        yield future
        done["count"] += 1
        done["at"] = env.now

    start = env.now
    for op in ops:
        env.process(client(op))
    env.run(until=1_000_000)
    label = f"waves={'on' if parallel_waves else 'off'}/theta={theta}"
    return {
        "label": label,
        "makespan": done["at"] - start,
        "completed": done["count"],
        "waves": engine.stats.waves,
    }


def run_all():
    return [
        run_engine(theta=0.2, parallel_waves=True, seed=171),
        run_engine(theta=0.2, parallel_waves=False, seed=171),
        run_engine(theta=0.95, parallel_waves=True, seed=172),
        run_engine(theta=0.95, parallel_waves=False, seed=172),
    ]


def test_a2_wave_parallelism_ablation(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "A2", "deterministic waves vs fully serial epochs",
        format_rows(
            ["configuration", "makespan ms", "completed", "waves executed"],
            [[r["label"], f"{r['makespan']:.1f}", r["completed"], r["waves"]]
             for r in rows],
        ),
    )
    low_on, low_off, high_on, high_off = rows
    assert all(r["completed"] == OPS for r in rows)
    # Low skew: waves give a clear makespan win.
    assert low_off["makespan"] > 1.5 * low_on["makespan"]
    # High skew: the advantage shrinks (conflicts force serialization).
    low_gain = low_off["makespan"] / low_on["makespan"]
    high_gain = high_off["makespan"] / high_on["makespan"]
    assert high_gain < low_gain

"""C4 — Exactly-once processing is not transactional isolation; Styx closes the gap.

Paper claims (§4.2): "exactly-once processing guarantees alone cannot
ensure transactional isolation"; and (§3.1) implementing serializable
multi-service transactions on dataflows is the open problem systems like
Styx address.

Setup: the same transfer stream through (a) the exactly-once dataflow
engine (debit operator → credit operator), and (b) the deterministic
transactional dataflow.  A concurrent auditor repeatedly reads the total
balance.  Expected shape:

- both engines *converge* to the exact total (exactly-once state effects);
- the plain engine's audits observe in-flight money (isolation
  violations); the transactional engine's audits never do;
- the transactional engine pays an epoch-commit latency premium.
"""

from repro.apps import DataflowBank, StatefunBank, TxnDataflowBank
from repro.harness import format_rows
from repro.sim import Environment
from repro.workloads import TransferWorkload

from benchmarks.common import report

OPS = 150


def run_plain():
    env = Environment(seed=41)
    workload = TransferWorkload(num_accounts=30, theta=0.6)
    bank = DataflowBank(env, workload, checkpoint_interval=50.0)
    bank.start()
    ops = list(workload.operations(env.stream("ops"), OPS))
    dirty_audits = {"count": 0, "total": 0}

    def auditor():
        while dirty_audits["total"] < 60:
            yield env.timeout(1.0)
            dirty_audits["total"] += 1
            if bank.audit_total() != workload.expected_total:
                dirty_audits["count"] += 1

    for op in ops:
        bank.submit(op)
    env.process(auditor())
    env.run(until=3000)
    completed = bank.completed_ops()
    done_at = max(t for _k, _v, t in bank.runtime.sink_outputs("done"))
    conserved = (
        sum(row["balance"] for row in bank.balances()) == workload.expected_total
    )
    return {
        "label": "exactly-once dataflow",
        "completed": len(completed),
        "duration_ms": done_at,
        "dirty_audits": dirty_audits["count"],
        "audits": dirty_audits["total"],
        "conserved": conserved,
    }


def run_txn():
    env = Environment(seed=42)
    workload = TransferWorkload(num_accounts=30, theta=0.6)
    bank = TxnDataflowBank(env, workload, epoch_interval=5.0)
    bank.start()
    env.run_until(env.process(bank.setup()))
    ops = list(workload.operations(env.stream("ops"), OPS))
    dirty_audits = {"count": 0, "total": 0}
    finished = {"at": 0.0, "n": 0}

    def auditor():
        while dirty_audits["total"] < 60:
            yield env.timeout(5.0)
            dirty_audits["total"] += 1
            total = yield from bank.audit()
            if total != workload.expected_total:
                dirty_audits["count"] += 1

    def client(op):
        yield from bank.execute(op)
        finished["n"] += 1
        finished["at"] = env.now

    start = env.now
    for op in ops:
        env.process(client(op))
    env.process(auditor())
    env.run(until=start + 3000)
    conserved = (
        sum(row["balance"] for row in bank.balances()) == workload.expected_total
    )
    return {
        "label": "txn dataflow (Styx-like)",
        "completed": finished["n"],
        "duration_ms": finished["at"] - start,
        "dirty_audits": dirty_audits["count"],
        "audits": dirty_audits["total"],
        "conserved": conserved,
    }


def run_statefun():
    env = Environment(seed=43)
    workload = TransferWorkload(num_accounts=30, theta=0.6)
    bank = StatefunBank(env, workload, checkpoint_interval=50.0)
    bank.start()
    ops = list(workload.operations(env.stream("ops"), OPS))
    dirty_audits = {"count": 0, "total": 0}

    def auditor():
        while dirty_audits["total"] < 60:
            yield env.timeout(1.0)
            dirty_audits["total"] += 1
            if bank.audit_total() != workload.expected_total:
                dirty_audits["count"] += 1

    def feeder():
        for op in ops:
            yield env.timeout(0.5)
            bank.submit(op)

    env.process(feeder())
    env.process(auditor())
    env.run(until=3000)
    completed = bank.completed_ops()
    conserved = (
        sum(row["balance"] for row in bank.balances()) == workload.expected_total
    )
    return {
        "label": "statefun (rewind)",
        "completed": len(completed),
        "duration_ms": float("nan"),
        "dirty_audits": dirty_audits["count"],
        "audits": dirty_audits["total"],
        "conserved": conserved,
    }


def run_all():
    return [run_plain(), run_statefun(), run_txn()]


def test_c4_exactly_once_vs_isolation(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C4", "exactly-once != isolation (and how txn dataflow fixes it)",
        format_rows(
            ["engine", "transfers done", "inconsistent audits",
             "audits", "final total conserved"],
            [[r["label"], r["completed"],
              r["dirty_audits"], r["audits"], r["conserved"]] for r in rows],
        ),
    )
    plain, statefun, txn = rows
    # All three engines converge exactly (exactly-once state effects).
    assert plain["conserved"] and statefun["conserved"] and txn["conserved"]
    assert plain["completed"] == OPS and txn["completed"] == OPS
    assert statefun["completed"] == OPS
    # Only the non-transactional engines expose inconsistent reads.
    assert plain["dirty_audits"] > 0
    assert statefun["dirty_audits"] > 0
    assert txn["dirty_audits"] == 0

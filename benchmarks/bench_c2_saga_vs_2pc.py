"""C2 — Microservices avoid 2PC; its blocking nature hurts, sagas trade isolation.

Paper claims (§4.2): "microservices often avoid distributed commit
protocols"; "the blocking nature of traditional protocol implementations
affects performance"; sagas give eventual consistency through
compensations instead.

This bench runs the marketplace checkout (contended: 5 products) in four
coordination modes.  Expected shape:

- ``none`` is fastest and *broken* (orphan reservations on failures);
- ``saga`` is clean at the end and close to ``none`` in throughput;
- ``choreography`` is clean too, but each step rides the broker (publish +
  consumer poll), so latency is dominated by event-hop delays;
- ``2pc`` is clean but slower at the tail — cross-service locks held
  through the prepare/commit round trips serialize contended checkouts.
"""

from repro.apps import MicroserviceShop
from repro.apps.shop_choreography import ChoreographedShop
from repro.harness import WorkloadDriver, format_results
from repro.sim import Environment
from repro.workloads import ClosedLoop, MarketplaceWorkload

from benchmarks.common import report

OPS = 120
CLIENTS = 6


def run_mode(mode, seed):
    env = Environment(seed=seed)
    workload = MarketplaceWorkload(
        num_products=5, initial_stock=1000, payment_failure_rate=0.15, theta=0.4
    )
    if mode == "choreography":
        shop = ChoreographedShop(env, workload)
        shop_label = mode
    else:
        shop = MicroserviceShop(env, workload, mode=mode)
        shop_label = mode
    ops = list(workload.operations(env.stream("ops"), OPS))
    driver = WorkloadDriver(env, label=mode)
    driver.ledger = shop.ledger
    arrival = ClosedLoop(clients=CLIENTS, ops_per_client=OPS // CLIENTS,
                         think_time_ms=2.0)
    result = env.run_until(
        env.process(
            driver.run(
                ops[: arrival.total_ops],
                shop.execute,
                arrival,
                invariants=workload.invariants(),
                state_fn=shop.final_state,
            )
        )
    )
    return result


def run_all():
    return [run_mode(mode, seed)
            for mode, seed in (("none", 21), ("saga", 22),
                               ("choreography", 24), ("2pc", 23))]


def test_c2_saga_vs_2pc(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("C2", "checkout coordination: none vs saga vs choreography vs 2PC",
           format_results(results))
    by_label = {r.label: r for r in results}

    # Uncoordinated checkouts leave broken state behind.
    assert not by_label["none"].anomalies.clean

    # Both saga styles and 2PC end clean.
    assert by_label["saga"].anomalies.clean
    assert by_label["choreography"].anomalies.clean
    assert by_label["2pc"].anomalies.clean

    # The blocking protocol is slower than the orchestrated saga at the tail.
    assert by_label["2pc"].p(99) > by_label["saga"].p(99)

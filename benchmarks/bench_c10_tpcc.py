"""C10 — Complex transactional applications (TPC-C) stress SFaaS systems.

Paper claims (§4.2, refs [52]): "recent work has found challenges in
supporting large-scale, complex transactional applications like TPC-C in
existing state-of-the-art SFaaS systems"; the Styx line of work responds
with deterministic transactional dataflows.

Setup: TPC-C-lite (45% NewOrder / 43% Payment / 12% OrderStatus) at high
contention (1 warehouse) and lower contention (4 warehouses) on:

- the monolithic serializable database (the pre-cloud baseline),
- Beldi-style OCC workflows over a shared KV (aborts/retries under
  contention — NewOrder reads 7-17 keys),
- the Styx-like deterministic dataflow (no aborts; conflicts serialize in
  epoch waves).

TPC-C consistency conditions are checked on all three.  Expected shape:
all clean; the OCC build bleeds throughput to retries as contention rises
(its conflict count explodes); the deterministic build's abort count stays
zero.
"""

from repro.apps import DbTpcc, StyxTpcc, WorkflowTpcc
from repro.harness import WorkloadDriver, format_rows, run_cells
from repro.sim import Environment
from repro.workloads import ClosedLoop, TpccLite

from benchmarks.common import report

OPS = 120
CLIENTS = 8


def run_impl(name, factory, warehouses, seed):
    env = Environment(seed=seed)
    workload = TpccLite(warehouses=warehouses)
    impl = factory(env, workload)
    ops = list(workload.operations(env.stream("ops"), OPS))
    driver = WorkloadDriver(env, label=f"{name}/w={warehouses}")
    driver.ledger = impl.ledger
    arrival = ClosedLoop(clients=CLIENTS, ops_per_client=OPS // CLIENTS,
                         think_time_ms=2.0)
    result = env.run_until(
        env.process(
            driver.run(ops[: arrival.total_ops], impl.execute, arrival,
                       invariants=workload.invariants(),
                       state_fn=impl.final_state)
        )
    )
    if isinstance(impl, WorkflowTpcc):
        extra = {"conflicts": impl.engine.stats.conflicts, "aborts": "n/a"}
    elif isinstance(impl, StyxTpcc):
        extra = {"conflicts": "n/a", "aborts": impl.engine.stats.aborted}
    else:
        extra = {"conflicts": impl.server.engine.locks.stats.deadlocks,
                 "aborts": impl.server.engine.stats.aborted}
    result.extra.update(extra)
    return result


#: Cells of the matrix: (name, factory, warehouses, seed).  The factories
#: are module-level classes, so cells pickle cleanly to worker processes.
CELLS = [
    (name, factory, warehouses, seed)
    for warehouses in (1, 4)
    for name, factory, seed in (
        ("monolith-db", DbTpcc, 101),
        ("beldi-workflows", WorkflowTpcc, 102),
        ("styx-dataflow", StyxTpcc, 103),
    )
]


def run_all(workers: int = 0, pool=None):
    return run_cells(
        [(run_impl, cell) for cell in CELLS], workers=workers, pool=pool
    )


def test_c10_tpcc(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C10", "TPC-C-lite across transactional runtimes",
        format_rows(
            ["build", "ops/s", "p50 ms", "p99 ms", "conflicts", "aborts",
             "anomalies"],
            [[r.label, f"{r.throughput:.0f}", f"{r.p(50):.1f}",
              f"{r.p(99):.1f}", r.extra.get("conflicts"),
              r.extra.get("aborts"), r.anomalies.summary()] for r in results],
        ),
    )
    # Every build keeps the TPC-C consistency conditions.
    for result in results:
        assert result.anomalies.clean, result.label
    by_label = {r.label: r for r in results}
    # OCC conflicts explode at high contention...
    assert by_label["beldi-workflows/w=1"].extra["conflicts"] > 0
    assert (by_label["beldi-workflows/w=1"].extra["conflicts"]
            > by_label["beldi-workflows/w=4"].extra["conflicts"])
    # ...while deterministic execution never aborts.
    assert by_label["styx-dataflow/w=1"].extra["aborts"] == 0
    assert by_label["styx-dataflow/w=4"].extra["aborts"] == 0

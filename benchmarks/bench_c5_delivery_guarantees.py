"""C5 — Delivery guarantees and the cost of exactly-once effects.

Paper claims (§3.2): HTTP-style RPC gives no delivery guarantee; retries
after timeouts duplicate messages; "uniqueness ID guarantee and subsequent
detection of duplicated messages are still the responsibility of
applications".

Setup: a counter service behind lossy RPC (10% loss each way).  Clients
issue increments under three client/server protocols:

- ``at-most-once`` — no retries: requests lost in the network are simply
  gone (**lost effects**);
- ``at-least-once`` — retries without dedup: a lost *reply* makes the
  client re-execute the increment (**duplicate effects**);
- ``exactly-once`` — retries + idempotency keys on a dedup store: clean,
  for a small latency premium on the dedup bookkeeping.

The effect ledger counts both anomaly kinds; conservation is checked
against the server's counter.
"""

from repro.harness import format_rows
from repro.messaging import IdempotencyStore, RpcClient, RpcServer, RpcTimeout
from repro.net import Latency, Network
from repro.sim import Environment
from repro.transactions import EffectLedger

from benchmarks.common import report

OPS = 300
LOSS = 0.10


def run_protocol(label, retries, dedup, seed):
    env = Environment(seed=seed)
    net = Network(env, default_latency=Latency.lognormal(1.0, 0.2))
    net.add_node("client")
    net.add_node("server")
    net.set_loss(LOSS)
    ledger = EffectLedger()
    state = {"count": 0}
    store = IdempotencyStore(clock=lambda: env.now) if dedup else None
    server = RpcServer(net, net.node("server"), dedup_store=store)

    def incr(payload):
        yield env.timeout(0.2)
        state["count"] += 1
        ledger.apply(payload["op_id"])
        return state["count"]

    server.register("incr", incr)
    client = RpcClient(net, net.node("client"))
    latencies = []

    def one(op_index):
        op_id = f"op-{op_index}"
        start = env.now
        try:
            yield from client.call(
                "server", "incr", {"op_id": op_id},
                timeout=8.0, retries=retries,
                idempotency_key=op_id,
            )
        except RpcTimeout:
            return  # client saw a failure: not acknowledged
        ledger.acknowledge(op_id)
        latencies.append(env.now - start)

    def driver():
        processes = []
        for index in range(OPS):
            yield env.timeout(1.0)
            processes.append(env.process(one(index)))
        for process in processes:
            if not process.done:
                yield process

    env.run_until(env.process(driver()))
    rep = ledger.reconcile()
    from repro.core.metrics import percentile

    return {
        "label": label,
        "acked": ledger.acknowledged_count,
        "applied": ledger.applied_count,
        "lost": rep.lost_effects,
        "duplicates": rep.duplicate_effects,
        "p50": percentile(latencies, 50) if latencies else 0.0,
        "p99": percentile(latencies, 99) if latencies else 0.0,
        "server_count": state["count"],
    }


def run_all():
    return [
        run_protocol("at-most-once (no retry)", retries=0, dedup=False, seed=51),
        run_protocol("at-least-once (retry, no dedup)", retries=5, dedup=False, seed=52),
        run_protocol("exactly-once (retry + idempotency)", retries=5, dedup=True, seed=53),
    ]


def test_c5_delivery_guarantees(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C5", "delivery guarantees under 10% message loss",
        format_rows(
            ["protocol", "acked", "applied", "lost", "duplicates",
             "p50 ms", "p99 ms"],
            [[r["label"], r["acked"], r["applied"], r["lost"],
              r["duplicates"], f"{r['p50']:.2f}", f"{r['p99']:.2f}"]
             for r in rows],
        ),
    )
    amo, alo, eo = rows
    # At-most-once: some sends evaporated (client saw timeout -> not lost
    # by our definition) but crucially some effects are missing vs OPS.
    assert amo["applied"] < OPS
    assert amo["duplicates"] == 0
    # At-least-once: every op landed, some more than once.
    assert alo["duplicates"] > 0
    assert alo["lost"] == 0
    # Exactly-once: applied exactly the acknowledged set, no dupes.
    assert eo["duplicates"] == 0 and eo["lost"] == 0
    assert eo["applied"] == eo["server_count"] == eo["acked"]

"""C11 — The checkpoint interval trades runtime overhead against recovery.

Paper background (§4.1): dataflow fault tolerance is checkpoint + replay;
"on failure, the system can retrieve its state by reloading the latest
checkpoint ... and continuing from where it was left off".  The classic
ablation: frequent checkpoints cost steady-state work (state snapshots to
the object store) but shrink the replay window; sparse checkpoints invert
the trade.

Setup: the banking stream on the exactly-once dataflow engine with
checkpoint intervals from 25 ms to 1600 ms; a crash at a fixed point, then
recovery.  Reported: checkpoints taken, recovery duration (restore +
replay), and records replayed.  Expected shape: replayed records and
recovery time grow with the interval; checkpoint count shrinks.
"""

from repro.apps import DataflowBank
from repro.harness import format_rows
from repro.sim import Environment
from repro.workloads import TransferWorkload

from benchmarks.common import report

OPS = 200
CRASH_AT = 450.0
INTERVALS = [25.0, 100.0, 400.0, 1600.0]


def run_interval(interval, seed):
    env = Environment(seed=seed)
    workload = TransferWorkload(num_accounts=30, theta=0.5)
    bank = DataflowBank(env, workload, checkpoint_interval=interval)
    bank.start()
    ops = list(workload.operations(env.stream("ops"), OPS))

    def feeder():
        # 200 ops over ~1.2s: the crash at t=450 lands mid-stream.
        for op in ops:
            yield env.timeout(6.0)
            bank.submit(op)

    env.process(feeder())
    timing = {}

    def crash_then_recover():
        yield env.timeout(CRASH_AT)
        bank.runtime.crash_worker(0)
        bank.runtime.crash_worker(1)
        started = env.now
        yield from bank.runtime.recover()
        timing["restore_ms"] = env.now - started

    env.process(crash_then_recover())
    env.run(until=30_000)
    total = sum(row["balance"] for row in bank.balances())
    return {
        "interval": interval,
        "checkpoints": bank.runtime.stats.checkpoints_completed,
        "restore_ms": timing.get("restore_ms", 0.0),
        "replayed": bank.runtime.stats.replayed_records,
        "completed": len(bank.completed_ops()),
        "conserved": total == workload.expected_total,
    }


def run_all():
    return [run_interval(interval, seed=111 + i)
            for i, interval in enumerate(INTERVALS)]


def test_c11_checkpoint_interval_sweep(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C11", "checkpoint interval: overhead vs recovery window",
        format_rows(
            ["interval ms", "checkpoints", "restore ms", "replayed records",
             "transfers done", "conserved"],
            [[f"{r['interval']:.0f}", r["checkpoints"], f"{r['restore_ms']:.1f}",
              r["replayed"], r["completed"], r["conserved"]] for r in rows],
        ),
    )
    # Exactly-once state effects at every interval.
    assert all(r["conserved"] for r in rows)
    assert all(r["completed"] == OPS for r in rows)
    # Sparser checkpoints -> fewer checkpoints, bigger replay window.
    checkpoints = [r["checkpoints"] for r in rows]
    assert checkpoints == sorted(checkpoints, reverse=True)
    assert rows[-1]["replayed"] > rows[0]["replayed"]

"""C15 — Overload: flow control degrades gracefully, retry storms collapse.

Paper claim (§3.1-3.2): microservice frameworks ship retries as their
fault-tolerance story, but under overload every timeout becomes a retry
and every retry adds load — the system does ever more work that nobody is
waiting for.  The fix is not more retries but *flow control*: shed excess
work cheaply at the door, budget retries, and drop expired requests.

Setup: the same 4-connection transactional bank behind RPC, driven by an
open-loop Poisson arrival ramp from 0.5x to 10x its saturation rate, in
two configurations:

- **unprotected** — the status-quo client: 30 ms timeout, 3 blind
  retries, no admission control, no deadline propagation, no dedup.
- **flow-controlled** — the ``repro.flow`` stack: admission control
  (max 8 in flight, shed beyond), propagated deadlines (the server drops
  requests nobody waits for), a retry token budget, and an idempotency
  store.

Goodput counts requests acknowledged within a 100 ms SLA.  Expected
shape: both configs match below saturation; past it the unprotected
config collapses (queues grow without bound, timeouts trigger retries,
almost nothing finishes inside the SLA while the server burns capacity
on duplicate and expired work) while the flow-controlled config keeps
goodput near capacity by rejecting the excess instead of queueing it.

Run directly (``python benchmarks/bench_c15_overload.py [--smoke]``),
via pytest (``pytest benchmarks/bench_c15_overload.py``), or through
``scripts/perfcheck.py`` (which calls :func:`run`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

if __package__ in (None, ""):  # direct script execution
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.apps import DbBank
from repro.flow import AdmissionController, RetryBudget
from repro.harness import format_rows
from repro.messaging.idempotency import IdempotencyStore
from repro.messaging.rpc import (
    RpcClient,
    RpcError,
    RpcRejected,
    RpcServer,
    RpcTimeout,
)
from repro.net import Network
from repro.sim import Environment
from repro.workloads import TransferWorkload

from benchmarks.common import report

#: Offered load at 1x — roughly the 4-connection bank's capacity (see C9).
BASE_RATE_PER_S = 600.0
#: A request that takes longer than this counts as lost goodput.
SLA_MS = 100.0
DURATION_MS = 2000.0
SMOKE_DURATION_MS = 300.0
MULTIPLIERS = (0.5, 1.0, 2.0, 5.0, 10.0)
SMOKE_MULTIPLIERS = (1.0, 10.0)


def run_point(multiplier: float, sound: bool, seed: int, duration_ms: float) -> dict:
    """One ramp point: offered load ``multiplier`` x BASE_RATE, one config."""
    env = Environment(seed=seed)
    workload = TransferWorkload(
        num_accounts=200, initial_balance=1000, amount=1, theta=0.2
    )
    bank = DbBank(env, workload, connections=4)
    net = Network(env)
    service = net.add_node("bank")
    edge = net.add_node("edge")
    admission = AdmissionController(8, name="bank.admission") if sound else None
    dedup = IdempotencyStore(clock=lambda: env.now) if sound else None
    server = RpcServer(net, service, dedup_store=dedup, admission=admission)
    server.register("transfer", bank.execute)
    client = RpcClient(net, edge)
    budget = RetryBudget(capacity=40.0, refund=0.1) if sound else None

    stats = {"offered": 0, "ok": 0, "late": 0, "rejected": 0,
             "timeout": 0, "remote_error": 0}
    latencies: list[float] = []

    def one_request(op) -> object:
        t0 = env.now
        try:
            if sound:
                yield from client.call(
                    "bank", "transfer", op, timeout=40.0, retries=2,
                    idempotency_key=op.op_id,
                    deadline=t0 + SLA_MS, retry_budget=budget,
                )
            else:
                yield from client.call(
                    "bank", "transfer", op, timeout=30.0, retries=3,
                    idempotency_key=op.op_id,
                )
        except RpcRejected:
            stats["rejected"] += 1
            return
        except RpcTimeout:
            stats["timeout"] += 1
            return
        except RpcError:
            stats["remote_error"] += 1
            return
        latency = env.now - t0
        if latency <= SLA_MS:
            stats["ok"] += 1
            latencies.append(latency)
        else:
            stats["late"] += 1

    def load_gen() -> object:
        rng = env.stream("arrivals")
        ops = workload.operations(env.stream("ops"), 10 ** 9)
        rate_per_ms = BASE_RATE_PER_S * multiplier / 1000.0
        end = env.now + duration_ms
        while env.now < end:
            yield env.timeout(rng.expovariate(rate_per_ms))
            stats["offered"] += 1
            env.process(one_request(next(ops)), label="c15.request")

    env.process(load_gen(), label="c15.load")
    # Drain window: in-SLA stragglers finish, the rest no longer matter.
    env.run(until=duration_ms + 4.0 * SLA_MS)

    latencies.sort()
    p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else float("nan")
    return {
        "config": "flow" if sound else "unprotected",
        "mult": multiplier,
        "goodput_per_s": stats["ok"] / (duration_ms / 1000.0),
        "p99_ms": p99,
        "offered": stats["offered"],
        "ok": stats["ok"],
        "rejected": stats["rejected"],
        "timeout": stats["timeout"],
        "late": stats["late"] + stats["remote_error"],
        "shed": admission.stats.shed_total if admission else 0,
        "expired": server.stats.expired_dropped,
        "dup_execs": server.stats.duplicate_executions,
    }


def run_all(smoke: bool = False) -> list[dict]:
    duration = SMOKE_DURATION_MS if smoke else DURATION_MS
    multipliers = SMOKE_MULTIPLIERS if smoke else MULTIPLIERS
    results = []
    for multiplier in multipliers:
        results.append(run_point(multiplier, sound=False, seed=151, duration_ms=duration))
        results.append(run_point(multiplier, sound=True, seed=151, duration_ms=duration))
    return results


def check_claims(results: list[dict]) -> None:
    """The C15 claims; assert only at full scale (smoke is a sanity run)."""
    by = {(r["config"], r["mult"]): r for r in results}
    flow_sat = by[("flow", 1.0)]["goodput_per_s"]
    flow_10x = by[("flow", 10.0)]["goodput_per_s"]
    raw_10x = by[("unprotected", 10.0)]["goodput_per_s"]
    raw_sat = by[("unprotected", 1.0)]["goodput_per_s"]
    # Flow control degrades gracefully: >= 70% of saturation goodput at 10x.
    assert flow_10x >= 0.7 * flow_sat, (flow_10x, flow_sat)
    # The unprotected config collapses at 10x ...
    assert raw_10x < 0.3 * raw_sat, (raw_10x, raw_sat)
    # ... and flow control beats it decisively under overload.
    assert flow_10x > 3.0 * raw_10x, (flow_10x, raw_10x)
    # Shedding is the mechanism: the controller visibly rejected work.
    assert by[("flow", 10.0)]["shed"] > 0


def format_table(results: list[dict]) -> str:
    return format_rows(
        ["config/x-sat", "offered", "goodput/s", "p99 ms", "shed", "expired",
         "timeouts", "dup execs"],
        [[f"{r['config']}/{r['mult']:g}x", r["offered"],
          f"{r['goodput_per_s']:.0f}", f"{r['p99_ms']:.1f}", r["shed"],
          r["expired"], r["timeout"], r["dup_execs"]] for r in results],
    )


def test_c15_overload(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C15", "overload ramp: flow control vs unprotected retries",
        format_table(results),
    )
    check_claims(results)


def run(smoke: bool = False) -> dict:
    """perfcheck entry point: the key goodput numbers plus wall time."""
    started = time.perf_counter()
    results = run_all(smoke=smoke)
    wall = time.perf_counter() - started
    if not smoke:
        check_claims(results)
    by = {(r["config"], r["mult"]): r for r in results}
    return {
        "c15_flow_goodput_10x_per_sec": round(
            by[("flow", 10.0)]["goodput_per_s"], 1
        ),
        "c15_unprotected_goodput_10x_per_sec": round(
            by[("unprotected", 10.0)]["goodput_per_s"], 1
        ),
        "c15_overload_wall_sec": round(wall, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale sanity run; skips the claim checks")
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    print(format_table(results))
    if not args.smoke:
        check_claims(results)
        report(
            "C15", "overload ramp: flow control vs unprotected retries",
            format_table(results),
        )
        print("C15 claims hold; wrote benchmarks/results/C15.txt")
    else:
        print("C15 smoke OK (claim checks skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""C7 — Cold starts and disaggregated state undermine FaaS latency.

Paper claims: "challenges associated with cold starts, execution
performance, and costs undermine a wider adoption of the FaaS paradigm"
(§4.3); with disaggregated state, "operations on shared state necessarily
incur network round trips" (§3.3), which caching trades against staleness
(§3.4).

Two sweeps:

1. request inter-arrival time vs keep-alive window → cold-start fraction
   and p99 (sparse traffic re-pays the cold start constantly);
2. remote vs cached state access → per-invocation latency for a 5-read
   function.
"""

from repro.core.metrics import percentile
from repro.faas import FaasPlatform, SharedKv
from repro.harness import format_rows
from repro.net.latency import Latency
from repro.sim import Environment

from benchmarks.common import report

KEEP_ALIVE = 300.0
REQUESTS = 80


def run_arrival_sweep():
    rows = []
    for label, gap_ms in [("hot (10ms gaps)", 10.0),
                          ("warmish (100ms gaps)", 100.0),
                          ("sparse (500ms gaps)", 500.0),
                          ("cold (2000ms gaps)", 2000.0)]:
        env = Environment(seed=71)
        platform = FaasPlatform(
            env, keep_alive=KEEP_ALIVE,
            cold_start=Latency.constant(150.0),
            warm_dispatch=Latency.constant(0.5),
        )

        @platform.function("handler")
        def handler(ctx, payload):
            yield ctx.env.timeout(1.0)
            return payload

        latencies = []

        def client(env):
            for i in range(REQUESTS):
                yield env.timeout(gap_ms)
                start = env.now
                yield from platform.invoke("handler", i)
                latencies.append(env.now - start)

        env.run_until(env.process(client(env)))
        steady = latencies[1:]  # drop the unavoidable first cold start
        rows.append({
            "label": label,
            "cold_fraction": platform.stats.cold_fraction,
            "p50": percentile(steady, 50),
            "p99": percentile(steady, 99),
        })
    return rows


def run_state_access():
    rows = []
    for label, cached in [("remote state (disaggregated)", False),
                          ("cached state (embedded-ish)", True)]:
        env = Environment(seed=72)
        platform = FaasPlatform(
            env, cached_state=cached,
            cold_start=Latency.constant(150.0),
            warm_dispatch=Latency.constant(0.5),
            kv=SharedKv(env, rtt=Latency.constant(2.0)),
        )

        @platform.function("reader")
        def reader(ctx, payload):
            total = 0
            for key_index in range(5):
                value = yield from ctx.kv_get(f"k{key_index}", 0)
                total += value
            return total

        def seed_data(env):
            for key_index in range(5):
                yield from platform.kv.put(f"k{key_index}", key_index)

        env.run_until(env.process(seed_data(env)))
        latencies = []

        def client(env):
            for i in range(60):
                yield env.timeout(5.0)
                start = env.now
                yield from platform.invoke("reader", i)
                latencies.append(env.now - start)

        env.run_until(env.process(client(env)))
        rows.append({
            "label": label,
            "p50": percentile(latencies[1:], 50),  # skip the cold start
            "remote_reads": platform.kv.remote_reads,
            "cached_reads": platform.kv.cached_reads,
        })
    return rows


def run_all():
    return run_arrival_sweep(), run_state_access()


def test_c7_faas_cold_start_and_state(benchmark):
    arrival_rows, state_rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_rows(
        ["traffic", "cold fraction", "p50 ms", "p99 ms"],
        [[r["label"], f"{r['cold_fraction']:.2f}", f"{r['p50']:.1f}",
          f"{r['p99']:.1f}"] for r in arrival_rows],
    )
    text += "\n\n" + format_rows(
        ["state access", "p50 ms (5 reads)", "remote reads", "cached reads"],
        [[r["label"], f"{r['p50']:.2f}", r["remote_reads"], r["cached_reads"]]
         for r in state_rows],
    )
    report("C7", "FaaS cold starts and state locality", text)

    # Sparse traffic beyond the keep-alive re-pays the cold start always.
    assert arrival_rows[0]["cold_fraction"] < 0.1
    assert arrival_rows[-1]["cold_fraction"] > 0.9
    assert arrival_rows[-1]["p99"] > 10 * arrival_rows[0]["p99"]

    # Disaggregated state pays ~5 round trips; the cache collapses them.
    remote, cached = state_rows
    assert remote["p50"] > 3 * cached["p50"]
    assert cached["cached_reads"] > 0

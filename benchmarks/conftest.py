"""Benchmark bootstrap: make ``repro`` importable from a bare checkout."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

"""Benchmark bootstrap: import path + opt-in causal tracing for every bench.

With ``--trace-export[=DIR]`` (or ``REPRO_TRACE=1``) each benchmark's
simulation environments record causal spans, exported after the test as
Chrome ``trace_event`` JSON (load in chrome://tracing or
https://ui.perfetto.dev) plus a text critical-path report — no per-bench
code required.
"""

import os
import re
import sys

import pytest

# Benchmark results are a pure function of the seed: the substrate iterates
# every hash container deterministically (see docs/PERFORMANCE.md).  Pin the
# hash seed anyway so any *subprocess* a bench spawns — and any future
# hash-order hazard — cannot reintroduce run-to-run drift silently.
os.environ.setdefault("PYTHONHASHSEED", "0")

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

from repro import obs  # noqa: E402
from repro.harness import save_trace  # noqa: E402

_DEFAULT_TRACE_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "traces"
)


@pytest.fixture(autouse=True)
def _sim_trace_export(request):
    """Trace every Environment the test creates; export artifacts after."""
    directory = request.config.getoption("--trace-export", None)
    if directory is None and os.environ.get("REPRO_TRACE"):
        directory = _DEFAULT_TRACE_DIR
    if not directory:
        yield
        return
    obs.set_default_tracing(True)
    obs.drain_registered_tracers()  # discard tracers from setup code
    try:
        yield
    finally:
        obs.set_default_tracing(False)
        tracers = obs.drain_registered_tracers()
        test_name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
        for index, tracer in enumerate(tracers):
            if not tracer.spans:
                continue
            save_trace(tracer, directory, f"{test_name}.{index:03d}")

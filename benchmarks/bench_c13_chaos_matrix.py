"""C13 — chaos matrix: which runtime survives which fault class?

The tutorial's core claim is that transactional guarantees must come from
*protocols* (sagas with compensations, actor 2PC, deterministic dataflow
checkpointing, OCC workflows with idempotency), because the substrate
will crash, partition, drop, duplicate, and delay regardless.  This
benchmark operationalizes that: every runtime is fuzzed by the seeded
chaos nemesis (``repro.chaos``) restricted to one fault class per cell,
plus a mixed-schedule column, and each trial is judged by the runtime's
invariant oracles (conservation, exactly-once, saga atomicity, snapshot
audits).

Expected shape: every *sound* configuration survives every admissible
fault class (0 violations); the intentionally broken configurations —
the saga shop without compensations, the actor bank without transactions
— are caught by the same oracles under the same schedules, which is the
evidence that the harness can actually see the difference.
"""

import dataclasses

from repro.chaos import run_trial
from repro.chaos.scenarios import build_scenario
from repro.harness import format_rows
from repro.sim import Environment

from benchmarks.common import report

SEEDS = tuple(range(1, 7))
COLUMNS = ("crash", "kill_leader", "partition", "loss", "duplication", "delay", "mixed")
RUNTIME_ROWS = (
    ("microservice", False, "microservice (saga)"),
    ("actor", False, "actors (2pc)"),
    ("dataflow", False, "dataflow (ckpt+replay)"),
    ("faas", False, "faas (occ workflows)"),
    ("cluster", False, "cluster (live rebalancing)"),
    ("replication", False, "replication (quorum+fencing)"),
    ("microservice", True, "microservice (no compensation)"),
    ("actor", True, "actors (plain, no txn)"),
    ("cluster", True, "cluster (flip w/o drain)"),
    ("replication", True, "replication (no fencing)"),
)


def cell_config(runtime, kind):
    """The scenario's own fault budget, narrowed to one class per cell."""
    config = build_scenario(runtime, Environment(seed=0)).default_config
    if kind != "mixed":
        config = dataclasses.replace(config, fault_classes=(kind,))
    if not config.effective_classes():
        return None  # class not admissible for this runtime (no targets)
    return config


def run_cell(runtime, kind, broken):
    config = cell_config(runtime, kind)
    if config is None:
        return None
    bad = 0
    for seed in SEEDS:
        result = run_trial(runtime, seed, config=config, broken=broken)
        if result.violations:
            bad += 1
    return bad


def run_matrix():
    matrix = {}
    for runtime, broken, label in RUNTIME_ROWS:
        for kind in COLUMNS:
            matrix[(label, kind)] = run_cell(runtime, kind, broken)
    return matrix


def test_c13_chaos_matrix(benchmark):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    def show(value):
        return "-" if value is None else f"{value}/{len(SEEDS)}"

    rows = [
        [label] + [show(matrix[(label, kind)]) for kind in COLUMNS]
        for _, _, label in RUNTIME_ROWS
    ]
    report(
        "C13", "chaos survival matrix (violating trials / trials per fault class)",
        format_rows(["configuration"] + list(COLUMNS), rows),
    )

    # Every sound configuration survives every admissible fault class.
    for runtime, broken, label in RUNTIME_ROWS:
        if broken:
            continue
        for kind in COLUMNS:
            value = matrix[(label, kind)]
            assert value is None or value == 0, (label, kind, value)
    # The oracles can tell the difference: the unsound actor configuration
    # is caught under message-level faults and under mixed schedules.
    broken_actor = "actors (plain, no txn)"
    caught = sum(
        matrix[(broken_actor, kind)] or 0
        for kind in ("loss", "duplication", "mixed")
    )
    assert caught > 0, matrix
    # ... and the undrained migration flip is caught even though the
    # sound cluster configuration survives the same schedules.
    broken_cluster = "cluster (flip w/o drain)"
    caught = sum(
        matrix[(broken_cluster, kind)] or 0
        for kind in ("crash", "partition", "mixed")
    )
    assert caught > 0, matrix
    # ... and unfenced replication loses updates once a deposed leader's
    # stale acks slip through — caught under leader-targeted schedules
    # while the fenced configuration above survives the very same ones.
    broken_repl = "replication (no fencing)"
    caught = sum(
        matrix[(broken_repl, kind)] or 0
        for kind in ("kill_leader", "crash", "partition", "mixed")
    )
    assert caught > 0, matrix

"""A1 (ablation) — the transactional outbox vs naive dual writes.

Design choice under test (DESIGN.md §4, paper §3.2): a service that must
update its database *and* publish an event has three options:

- ``dual-write`` — write DB, then publish: a crash between the two loses
  the event (or, ordered the other way, publishes a ghost event);
- ``outbox`` — enqueue the event in the same DB transaction; an
  at-least-once relay publishes it; consumer dedup absorbs relay retries;
- ``outbox-no-dedup`` — same relay without consumer dedup: duplicates
  reach the consumer (isolates the contribution of each half).

We inject a 10% crash probability between the two halves of the dual
write and a 10% relay crash-after-publish probability, then reconcile
DB state against consumer-observed events.
"""

from repro.db import Database, IsolationLevel
from repro.harness import format_rows
from repro.messaging import Broker, Deduplicator
from repro.messaging.outbox import OutboxRelay, TransactionalOutbox
from repro.sim import Environment

from benchmarks.common import report

ORDERS = 200
CRASH_PROB = 0.10
SER = IsolationLevel.SERIALIZABLE


def _consume_all(env, broker, dedup):
    consumer = broker.consumer("billing", "order-events")
    seen = []

    def pump():
        while True:
            batch = yield from consumer.poll(max_records=50)
            for record in batch:
                event_id = record.value.get("event_id", record.offset)
                if dedup is None or not dedup.is_duplicate(event_id):
                    seen.append(record.value)
            yield from consumer.commit()

    env.process(pump())
    return seen


def run_dual_write(seed):
    env = Environment(seed=seed)
    db = Database(env)
    db.create_table("orders", primary_key="id")
    broker = Broker(env)
    broker.create_topic("order-events")
    rng = env.stream("crash")
    seen = _consume_all(env, broker, dedup=None)

    def place(i):
        txn = db.begin(SER)
        yield from db.insert(txn, "orders", {"id": f"o{i}"})
        yield from db.commit(txn)
        if rng.random() < CRASH_PROB:
            return  # crashed between DB commit and publish: event lost
        yield from broker.publish("order-events", f"o{i}",
                                  {"event_id": f"o{i}", "order": f"o{i}"})

    def driver():
        for i in range(ORDERS):
            yield env.timeout(2.0)
            yield from place(i)

    env.run_until(env.process(driver()))
    env.run(until=env.now + 500)
    orders = len(db.all_rows("orders"))
    distinct = len({e["event_id"] for e in seen})
    dupes = len(seen) - distinct
    return ["dual-write", orders, len(seen), orders - distinct, dupes]


def run_outbox(seed, with_dedup):
    env = Environment(seed=seed)
    db = Database(env)
    db.create_table("orders", primary_key="id")
    broker = Broker(env)
    broker.create_topic("order-events")
    outbox = TransactionalOutbox(db)
    relay = OutboxRelay(env, outbox, broker, poll_interval=10.0,
                        crash_after_publish_prob=CRASH_PROB)
    env.process(relay.run())
    dedup = Deduplicator() if with_dedup else None
    seen = _consume_all(env, broker, dedup=dedup)

    def place(i):
        txn = db.begin(SER)
        yield from db.insert(txn, "orders", {"id": f"o{i}"})
        yield from outbox.enqueue(txn, "order-events", f"o{i}", {"order": f"o{i}"})
        yield from db.commit(txn)

    def driver():
        for i in range(ORDERS):
            yield env.timeout(2.0)
            yield from place(i)

    env.run_until(env.process(driver()))
    env.run(until=env.now + 2000)  # let the relay drain
    relay.stop()
    orders = len(db.all_rows("orders"))
    distinct = len({e["event_id"] for e in seen})
    dupes = len(seen) - distinct
    label = "outbox+dedup" if with_dedup else "outbox-no-dedup"
    return [label, orders, len(seen), orders - distinct, dupes]


def run_all():
    return [
        run_dual_write(seed=161),
        run_outbox(seed=162, with_dedup=False),
        run_outbox(seed=163, with_dedup=True),
    ]


def test_a1_outbox_vs_dual_write(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "A1", "atomic state+event publication: dual write vs outbox",
        format_rows(
            ["strategy", "orders in DB", "events consumed", "missing events",
             "duplicate events"],
            [[str(c) for c in row] for row in rows],
        ),
    )
    dual, outbox_raw, outbox_dedup = rows
    # Dual writes lose events (~10%).
    assert dual[3] > 0 and dual[4] == 0
    # The outbox never loses; without dedup it duplicates.
    assert outbox_raw[3] == 0 and outbox_raw[4] > 0
    # Outbox + consumer dedup: exactly once.
    assert outbox_dedup[3] == 0 and outbox_dedup[4] == 0
    assert outbox_dedup[1] == outbox_dedup[2] == ORDERS

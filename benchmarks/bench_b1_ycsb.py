"""B1 — YCSB mixes across isolation levels on the database engine.

The baseline harness the paper's §5.3 discussion presumes: classic YCSB
core workloads (A: update-heavy, C: read-only, F: read-modify-write) with
zipfian skew, run at the engine's three isolation levels.

Expected shape:

- read-only (C) is isolation-insensitive;
- blind updates (A) cost little extra under stronger isolation;
- read-modify-writes (F) are where isolation bites: READ COMMITTED is
  fastest *and silently loses updates* (counted exactly); SERIALIZABLE
  pays lock waits/deadlock retries; SNAPSHOT sits between, resolving
  conflicts by first-committer-wins retries.
"""

from repro.db import DatabaseServer, IsolationLevel
from repro.db.errors import TransactionAborted
from repro.harness import WorkloadDriver, format_rows, run_cells
from repro.sim import Environment
from repro.workloads import ClosedLoop, YcsbWorkload

from benchmarks.common import report

OPS = 240
CLIENTS = 8
RECORDS = 100
THETA = 0.9  # hot keys

LEVELS = [
    ("read-committed", IsolationLevel.READ_COMMITTED),
    ("snapshot", IsolationLevel.SNAPSHOT),
    ("serializable", IsolationLevel.SERIALIZABLE),
]


class YcsbExecutor:
    """Runs YCSB ops as single-op transactions; counts RMW effects."""

    def __init__(self, env, isolation):
        self.env = env
        self.isolation = isolation
        self.server = DatabaseServer(env, name="ycsb-db")
        self.server.create_table("usertable", primary_key="id")
        self.rmw_applied = 0

    def load(self, rows):
        self.server.load(
            "usertable", [{"id": r["id"], "counter": 0, **r} for r in rows]
        )

    def execute(self, op):
        for attempt in range(8):
            txn = yield from self.server.begin(self.isolation)
            try:
                if op.kind == "read":
                    yield from self.server.get(txn, "usertable", op.key)
                elif op.kind == "update":
                    yield from self.server.put(
                        txn, "usertable", op.key,
                        {"id": op.key, "counter": 0, **op.value},
                    )
                elif op.kind == "insert":
                    yield from self.server.put(
                        txn, "usertable", op.key,
                        {"id": op.key, "counter": 0, **op.value},
                    )
                elif op.kind == "scan":
                    yield from self.server.scan(txn, "usertable")
                else:  # rmw: increment the row's counter
                    row = yield from self.server.get(txn, "usertable", op.key)
                    yield from self.server.update(
                        txn, "usertable", op.key,
                        {"counter": row["counter"] + 1},
                    )
                yield from self.server.commit(txn)
                if op.kind == "rmw":
                    self.rmw_applied += 1
                return
            except TransactionAborted:
                yield from self.server.abort(txn)
                yield self.env.timeout(0.5 * (attempt + 1))
        raise RuntimeError("retries exhausted")

    def counter_total(self):
        return sum(r["counter"] for r in self.server.engine.all_rows("usertable"))


def run_one(mix, level_name, isolation, seed):
    env = Environment(seed=seed)
    workload = YcsbWorkload(record_count=RECORDS, mix=mix, theta=THETA)
    executor = YcsbExecutor(env, isolation)
    executor.load(workload.initial_rows())
    ops = list(workload.operations(env.stream("ops"), OPS))
    driver = WorkloadDriver(env, label=f"{mix}/{level_name}")
    arrival = ClosedLoop(clients=CLIENTS, ops_per_client=OPS // CLIENTS,
                         think_time_ms=1.0)
    result = env.run_until(
        env.process(driver.run(ops[: arrival.total_ops], executor.execute, arrival))
    )
    lost = executor.rmw_applied - executor.counter_total()
    result.extra["lost_updates"] = lost
    # Deterministic per-cell kernel-event count for the e2e_b1_events_per_txn
    # accounting (extras do not appear in the committed result table).
    result.extra["events_executed"] = env.events_executed
    return result


#: Every cell of the matrix: (mix, level_name, isolation, seed).  Cells are
#: independent simulations, each a pure function of its seed — which is what
#: lets ``run_all(workers=N)`` fan them out to real cores with byte-identical
#: results (the golden-equivalence suite holds it to that).
CELLS = [
    (mix, level_name, isolation, 181 + index)
    for mix in ("C", "A", "F")
    for index, (level_name, isolation) in enumerate(LEVELS)
]


def run_all(workers: int = 0, pool=None):
    return run_cells(
        [(run_one, cell) for cell in CELLS], workers=workers, pool=pool
    )


def test_b1_ycsb_isolation_matrix(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "B1", "YCSB mixes x isolation levels",
        format_rows(
            ["mix/level", "ops/s", "p50 ms", "p99 ms", "lost updates"],
            [[r.label, f"{r.throughput:.0f}", f"{r.p(50):.2f}",
              f"{r.p(99):.2f}", r.extra["lost_updates"]] for r in results],
        ),
    )
    by_label = {r.label: r for r in results}
    # Read-only: isolation level does not matter much.
    c_throughputs = [by_label[f"C/{n}"].throughput for n, _l in LEVELS]
    assert max(c_throughputs) < 2 * min(c_throughputs)
    # RMW at READ COMMITTED silently loses updates; stronger levels do not.
    assert by_label["F/read-committed"].extra["lost_updates"] > 0
    assert by_label["F/snapshot"].extra["lost_updates"] == 0
    assert by_label["F/serializable"].extra["lost_updates"] == 0
    # Stronger isolation costs tail latency on the contended RMW mix.
    assert (by_label["F/serializable"].p(99)
            > by_label["F/read-committed"].p(99))

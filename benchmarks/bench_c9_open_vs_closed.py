"""C9 — Open vs closed arrival models change a benchmark's conclusions.

Paper claim (§5.3, Schroeder et al.): "modeling request arrivals should
consider systems' design goals and the cloud serving model used" — a
closed model self-throttles and hides saturation, while an open model
exposes it as unbounded latency.

Setup: the same serializable database transfer service at three offered
loads, driven open (Poisson) and closed (equivalent client population).
Expected shape: at low load the two models agree; near/over capacity the
open model's p99 explodes while the closed model's stays bounded — same
system, different verdicts.
"""

from repro.apps import DbBank
from repro.harness import WorkloadDriver, format_rows
from repro.sim import Environment
from repro.workloads import ClosedLoop, OpenLoop, TransferWorkload

from benchmarks.common import report

OPS = 200


def run_one(arrival, label, seed):
    env = Environment(seed=seed)
    workload = TransferWorkload(num_accounts=50, theta=0.5)
    # A 4-connection pool caps capacity around ~650 ops/s for this mix.
    bank = DbBank(env, workload, connections=4)
    ops = list(workload.operations(env.stream("ops"), OPS))
    driver = WorkloadDriver(env, label=label)
    driver.ledger = bank.ledger
    result = env.run_until(
        env.process(
            driver.run(ops[: getattr(arrival, "total_ops", OPS)], bank.execute,
                       arrival, invariants=workload.invariants(),
                       state_fn=bank.balances)
        )
    )
    return result


def run_all():
    results = []
    # The service's capacity is roughly 500-900 ops/s for this workload.
    for load_label, rate, clients in [
        ("light", 100.0, 1),
        ("moderate", 400.0, 4),
        ("saturating", 1200.0, 12),
    ]:
        results.append(
            run_one(OpenLoop(rate_per_s=rate, total_ops=OPS),
                    f"open/{load_label}", seed=91)
        )
        results.append(
            run_one(
                ClosedLoop(clients=clients, ops_per_client=OPS // clients,
                           think_time_ms=8.0),
                f"closed/{load_label}", seed=92,
            )
        )
    return results


def test_c9_open_vs_closed(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "C9", "open vs closed arrivals on the same system",
        format_rows(
            ["model/load", "ops/s", "p50 ms", "p99 ms"],
            [[r.label, f"{r.throughput:.0f}", f"{r.p(50):.2f}",
              f"{r.p(99):.2f}"] for r in results],
        ),
    )
    by_label = {r.label: r for r in results}
    # At light load the two models roughly agree on latency.
    light_ratio = (
        by_label["open/light"].p(99) / max(1e-9, by_label["closed/light"].p(99))
    )
    assert light_ratio < 4
    # At saturation the open model's tail explodes; the closed one hides it.
    assert by_label["open/saturating"].p(99) > 4 * by_label["closed/saturating"].p(99)
    # The open model's own tail grows enormously from light to saturating.
    assert by_label["open/saturating"].p(99) > 5 * by_label["open/light"].p(99)

"""Simulated machines: processes, ports, crash and restart.

A :class:`Node` is where runtime components (service hosts, actor silos,
FaaS containers, dataflow tasks, database servers) execute.  Crashing a node
interrupts every process running on it and discards all in-memory state —
the substrate for the paper's fault-tolerance discussion (§4.1).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim import Channel, Environment, Process


class NodeCrashed(Exception):
    """Raised by operations attempted on a crashed node."""


class Node:
    """A simulated machine identified by a unique name.

    Components bind *ports* (named mailboxes) to receive messages from the
    network, and spawn processes that are interrupted if the node crashes.
    """

    def __init__(self, env: Environment, name: str) -> None:
        self.env = env
        self.name = name
        self.alive = True
        self.incarnation = 0
        self._ports: dict[str, Channel] = {}
        self._processes: list[Process] = []
        self._restart_hooks: list[Callable[["Node"], None]] = []
        self.crash_count = 0

    # -- ports ---------------------------------------------------------------

    def bind(self, port: str) -> Channel:
        """Create (or return) the mailbox for ``port``."""
        if port not in self._ports:
            self._ports[port] = Channel(self.env, label=f"{self.name}:{port}")
        return self._ports[port]

    def deliver(self, port: str, item: Any) -> bool:
        """Deliver ``item`` to ``port``; dropped if dead or port unbound."""
        if not self.alive:
            return False
        channel = self._ports.get(port)
        if channel is None or channel.closed:
            return False
        channel.put(item)
        return True

    # -- processes -----------------------------------------------------------

    def spawn(self, generator: Generator[Any, Any, Any], label: str = "") -> Process:
        """Run a process on this node; it dies if the node crashes."""
        if not self.alive:
            raise NodeCrashed(self.name)
        process = self.env.process(generator, label=label or f"{self.name}.proc")
        self._processes.append(process)
        if len(self._processes) > 256:
            self._processes = [p for p in self._processes if p.is_alive]
        return process

    # -- lifecycle -----------------------------------------------------------

    def crash(self, cause: Any = "crash") -> None:
        """Kill the node: interrupt all processes, drop mailbox contents."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        processes, self._processes = self._processes, []
        for process in processes:
            if process.is_alive:
                process.interrupt(cause)
        ports, self._ports = self._ports, {}
        for channel in ports.values():
            channel.close()

    def restart(self) -> None:
        """Bring the node back up (empty memory) and fire restart hooks."""
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        for hook in list(self._restart_hooks):
            hook(self)

    def on_restart(self, hook: Callable[["Node"], None]) -> None:
        """Register a hook invoked after each restart (e.g. recovery)."""
        self._restart_hooks.append(hook)

    def check_alive(self) -> None:
        """Raise :class:`NodeCrashed` if the node is down."""
        if not self.alive:
            raise NodeCrashed(self.name)

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.name} {state} inc={self.incarnation}>"

"""The message fabric connecting nodes, with configurable fault injection.

The network is asynchronous and unreliable by default semantics: messages
may be delayed, dropped (when loss is injected), duplicated, or lost to
partitions and crashed receivers.  Reliable delivery is an *application*
concern (retries + idempotency keys, paper §3.2) — exactly what the
messaging layer built on top of this module provides.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from repro.net.latency import Latency, Sampler
from repro.net.node import Node
from repro.sim import Environment


class Message:
    """An envelope traveling between two nodes.

    A ``__slots__`` class rather than a frozen dataclass: one envelope is
    built per dispatched message, and frozen-dataclass construction is the
    second-hottest allocation on the RPC path.  Treat instances as
    immutable.
    """

    __slots__ = (
        "msg_id", "src", "dst", "port", "payload", "sent_at", "duplicate",
        "span", "dst_alive_at_send",
    )

    def __init__(
        self,
        msg_id: int,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        sent_at: float,
        duplicate: bool = False,
        span: Any = None,
        dst_alive_at_send: bool = True,
    ) -> None:
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.port = port
        self.payload = payload
        self.sent_at = sent_at
        self.duplicate = duplicate
        #: Causal tracing span covering the in-flight interval (None untraced).
        self.span = span
        #: Whether the receiver was alive when the message left the sender —
        #: distinguishes a crash-race (receiver died mid-flight) from a send
        #: aimed at an already-dead node.
        self.dst_alive_at_send = dst_alive_at_send

    def __repr__(self) -> str:
        return (
            f"Message(msg_id={self.msg_id!r}, src={self.src!r}, "
            f"dst={self.dst!r}, port={self.port!r}, payload={self.payload!r}, "
            f"sent_at={self.sent_at!r}, duplicate={self.duplicate!r})"
        )


@dataclass
class NetworkStats:
    """Counters of everything the fabric did, for assertions and reports."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_dead: int = 0
    dropped_crashed_inflight: int = 0
    duplicated: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_loss": self.dropped_loss,
            "dropped_partition": self.dropped_partition,
            "dropped_dead": self.dropped_dead,
            "dropped_crashed_inflight": self.dropped_crashed_inflight,
            "duplicated": self.duplicated,
        }


@dataclass
class _LinkFaults:
    """Per-link (or global) fault configuration."""

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    extra_delay: float = 0.0


class Network:
    """The cluster fabric: registry of nodes plus a message scheduler."""

    def __init__(
        self,
        env: Environment,
        default_latency: Optional[Sampler] = None,
    ) -> None:
        self.env = env
        self.default_latency = default_latency or Latency.intra_zone()
        self.nodes: dict[str, Node] = {}
        self.stats = NetworkStats()
        self._rng = env.stream("network")
        self._msg_ids = itertools.count(1)
        self._global_faults = _LinkFaults()
        self._link_faults: dict[tuple[str, str], _LinkFaults] = {}
        self._partitions: set[frozenset[str]] = set()
        self._link_latency: dict[tuple[str, str], Sampler] = {}

    # -- topology -------------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create and register a node; names must be unique."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = Node(self.env, name)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        return self.nodes[name]

    def set_link_latency(self, src: str, dst: str, sampler: Sampler) -> None:
        """Override latency for the directed link ``src -> dst``."""
        self._link_latency[(src, dst)] = sampler

    # -- fault injection --------------------------------------------------------

    def set_loss(self, rate: float, src: str = "*", dst: str = "*") -> None:
        """Drop each matching message independently with probability ``rate``."""
        self._faults_for(src, dst).drop_rate = rate

    def set_duplication(self, rate: float, src: str = "*", dst: str = "*") -> None:
        """Duplicate each matching message with probability ``rate``."""
        self._faults_for(src, dst).duplicate_rate = rate

    def set_extra_delay(self, delay: float, src: str = "*", dst: str = "*") -> None:
        """Add a fixed delay to each matching message (congestion)."""
        self._faults_for(src, dst).extra_delay = delay

    def partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Cut bidirectional connectivity between two groups of nodes."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitions.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        """Whether a message between ``a`` and ``b`` would be cut."""
        return frozenset((a, b)) in self._partitions

    @property
    def loss_rate(self) -> float:
        """Current global message-loss rate."""
        return self._global_faults.drop_rate

    @property
    def duplication_rate(self) -> float:
        """Current global duplication rate."""
        return self._global_faults.duplicate_rate

    @property
    def extra_delay(self) -> float:
        """Current global extra per-message delay."""
        return self._global_faults.extra_delay

    def _faults_for(self, src: str, dst: str) -> _LinkFaults:
        if src == "*" and dst == "*":
            return self._global_faults
        key = (src, dst)
        if key not in self._link_faults:
            self._link_faults[key] = _LinkFaults()
        return self._link_faults[key]

    # -- sending ---------------------------------------------------------------

    def send(self, src: str, dst: str, port: str, payload: Any) -> int:
        """Fire-and-forget a message; returns its id.

        Delivery is asynchronous (after sampled latency) and never
        acknowledged at this layer.
        """
        if dst not in self.nodes:
            raise KeyError(f"unknown destination node {dst!r}")
        msg_id = next(self._msg_ids)
        self.stats.sent += 1

        tracer = self.env.tracer
        faults = self._effective_faults(src, dst)
        if self.is_partitioned(src, dst):
            self.stats.dropped_partition += 1
            tracer.event("net.drop", src=src, dst=dst, port=port, reason="partition")
            return msg_id
        if faults.drop_rate > 0 and self._rng.random() < faults.drop_rate:
            self.stats.dropped_loss += 1
            tracer.event("net.drop", src=src, dst=dst, port=port, reason="loss")
            return msg_id

        self._dispatch(src, dst, port, payload, msg_id, faults, duplicate=False)
        if faults.duplicate_rate > 0 and self._rng.random() < faults.duplicate_rate:
            self.stats.duplicated += 1
            self._dispatch(src, dst, port, payload, msg_id, faults, duplicate=True)
        return msg_id

    def send_local(self, node_name: str, port: str, payload: Any) -> int:
        """Loopback delivery: hand ``payload`` straight to a port on
        ``node_name``, skipping latency sampling and fault injection.

        A process talking to itself does not traverse the fabric, so the
        message cannot be lost, duplicated, partitioned, or delayed — the
        RPC same-node fast path relies on exactly that.  Still counted in
        ``stats`` (sent + delivered, or dropped_dead when the node is down)
        so conservation assertions keep holding.
        """
        node = self.nodes.get(node_name)
        if node is None:
            raise KeyError(f"unknown destination node {node_name!r}")
        msg_id = next(self._msg_ids)
        self.stats.sent += 1
        message = Message(
            msg_id=msg_id,
            src=node_name,
            dst=node_name,
            port=port,
            payload=payload,
            sent_at=self.env.now,
            dst_alive_at_send=node.alive,
        )
        if node.deliver(port, message):
            self.stats.delivered += 1
        else:
            self.stats.dropped_dead += 1
        return msg_id

    def _effective_faults(self, src: str, dst: str) -> _LinkFaults:
        link = self._link_faults.get((src, dst))
        if link is None:
            return self._global_faults
        return _LinkFaults(
            drop_rate=max(link.drop_rate, self._global_faults.drop_rate),
            duplicate_rate=max(link.duplicate_rate, self._global_faults.duplicate_rate),
            extra_delay=link.extra_delay + self._global_faults.extra_delay,
        )

    def _dispatch(
        self,
        src: str,
        dst: str,
        port: str,
        payload: Any,
        msg_id: int,
        faults: _LinkFaults,
        duplicate: bool,
    ) -> None:
        sampler = self._link_latency.get((src, dst), self.default_latency)
        delay = sampler(self._rng) + faults.extra_delay
        if duplicate:
            # A duplicate (retransmission) arrives strictly later.
            delay += sampler(self._rng)
        tracer = self.env.tracer
        span = None
        if tracer.enabled:
            # Detached span: covers the in-flight interval, ended at delivery.
            span = tracer.start(
                "net.msg", src=src, dst=dst, port=port,
                msg_id=msg_id, duplicate=duplicate,
            )
        receiver = self.nodes.get(dst)
        message = Message(
            msg_id=msg_id,
            src=src,
            dst=dst,
            port=port,
            payload=payload,
            sent_at=self.env.now,
            duplicate=duplicate,
            span=span,
            dst_alive_at_send=receiver is not None and receiver.alive,
        )
        self.env.schedule(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        # A partition raised after sending also cuts in-flight messages.
        tracer = self.env.tracer
        if self.is_partitioned(message.src, message.dst):
            self.stats.dropped_partition += 1
            if message.span is not None:
                tracer.end(message.span, outcome="dropped_partition")
            return
        node = self.nodes.get(message.dst)
        if node is None or not node.deliver(message.port, message):
            crash_race = (
                node is not None and not node.alive and message.dst_alive_at_send
            )
            if crash_race:
                self.stats.dropped_crashed_inflight += 1
            else:
                self.stats.dropped_dead += 1
            if message.span is not None:
                tracer.end(
                    message.span,
                    outcome="dropped_crashed_inflight" if crash_race else "dropped_dead",
                )
            return
        self.stats.delivered += 1
        if message.span is not None:
            tracer.end(message.span, outcome="delivered")

"""Simulated cluster network: nodes, links, latency, and fault injection.

This package models the distributed infrastructure that the paper's cloud
runtimes are deployed on: a set of :class:`~repro.net.node.Node` machines
connected by a :class:`~repro.net.network.Network` whose links have
configurable latency distributions and can drop, duplicate, or delay
messages, and which can be partitioned — the failure modes that motivate
idempotency keys, retries, and exactly-once protocols (paper §3.2).
"""

from repro.net.latency import Latency
from repro.net.network import Message, Network, NetworkStats
from repro.net.node import Node, NodeCrashed

__all__ = [
    "Latency",
    "Message",
    "Network",
    "NetworkStats",
    "Node",
    "NodeCrashed",
]

"""Latency distributions for network links and storage devices.

All times are virtual milliseconds.  Distributions are sampled from a
caller-supplied :class:`random.Random` stream so that network jitter does
not perturb other random decisions in the simulation.
"""

from __future__ import annotations

import math
import random
from typing import Callable

Sampler = Callable[[random.Random], float]


class Latency:
    """Factory for latency samplers.

    A sampler is a callable taking an RNG and returning a non-negative
    delay in virtual milliseconds.
    """

    @staticmethod
    def constant(value: float) -> Sampler:
        """A fixed delay."""
        if value < 0:
            raise ValueError("latency must be non-negative")
        return lambda rng: value

    @staticmethod
    def uniform(low: float, high: float) -> Sampler:
        """Uniformly distributed delay in ``[low, high]``."""
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        return lambda rng: rng.uniform(low, high)

    @staticmethod
    def exponential(mean: float) -> Sampler:
        """Exponentially distributed delay with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return lambda rng: rng.expovariate(1.0 / mean)

    @staticmethod
    def lognormal(median: float, sigma: float = 0.25) -> Sampler:
        """Log-normal delay — the classic long-tailed datacenter RTT shape.

        ``median`` is the 50th percentile of the resulting distribution.
        """
        if median <= 0:
            raise ValueError("median must be positive")
        mu = math.log(median)
        return lambda rng: rng.lognormvariate(mu, sigma)

    @staticmethod
    def shifted_exponential(base: float, mean_extra: float) -> Sampler:
        """A floor of ``base`` plus an exponential tail — disk/SSD-like."""
        if base < 0 or mean_extra <= 0:
            raise ValueError("base must be >= 0 and mean_extra > 0")
        return lambda rng: base + rng.expovariate(1.0 / mean_extra)

    # Named profiles used as defaults throughout the repo.  Values follow
    # the ratios in DESIGN.md §4 (intra-zone RPC ~1ms median, object store
    # ~10ms, cold start ~150ms) — it is the *ratios* that drive conclusions.

    @staticmethod
    def intra_zone() -> Sampler:
        """Same-availability-zone network hop (~0.5–1.5 ms)."""
        return Latency.lognormal(0.8, 0.3)

    @staticmethod
    def cross_zone() -> Sampler:
        """Cross-availability-zone hop (~2–6 ms)."""
        return Latency.lognormal(3.0, 0.35)

    @staticmethod
    def local_disk() -> Sampler:
        """Local SSD write (~0.1–0.4 ms)."""
        return Latency.shifted_exponential(0.1, 0.1)

    @staticmethod
    def object_store() -> Sampler:
        """Cloud object storage round trip (~5–30 ms)."""
        return Latency.shifted_exponential(5.0, 6.0)

"""Credit-based flow control: a bounded counter with FIFO waiters.

The idiom (SNIPPETS.md's ray wordcount: a ``ray.wait``-bounded in-flight
queue): a producer must hold a credit to push work downstream; credits are
returned when the consumer finishes, so the producer *blocks* instead of
growing an unbounded buffer.  Blocking the producer is the whole point —
it propagates overload upstream to whoever can actually shed or slow down,
instead of hiding it in a queue that turns into latency.

Built on the same FIFO-granting pattern as :class:`repro.sim.Semaphore`,
but with explicit multi-credit release (a consumer commit can free a whole
batch at once) and non-blocking inspection for stats.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim import Environment, Future


class CreditGate:
    """``capacity`` credits; ``acquire`` blocks (FIFO) when none are left."""

    def __init__(self, env: Environment, capacity: int, label: str = "credits") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.label = label
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Future] = deque()
        #: acquisitions that had to wait (backpressure visibility)
        self.blocked = 0

    @property
    def available(self) -> int:
        return self._available

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Future:
        """A future resolving once one credit is held."""
        fut = Future(self.env, label=f"{self.label}.acquire")
        if self._available > 0:
            self._available -= 1
            fut.succeed(None)
        else:
            self.blocked += 1
            self._waiters.append(fut)
        return fut

    def try_acquire(self) -> bool:
        """Take a credit without blocking; ``False`` when none are left."""
        if self._available > 0:
            self._available -= 1
            return True
        return False

    def release(self, credits: int = 1) -> None:
        """Return ``credits`` credits, handing them to waiters FIFO."""
        if credits < 0:
            raise ValueError("credits must be >= 0")
        for _ in range(credits):
            granted = False
            while self._waiters:
                waiter = self._waiters.popleft()
                if not waiter.done:  # skip waiters cancelled by interrupts
                    waiter.succeed(None)
                    granted = True
                    break
            if not granted:
                if self._available >= self.capacity:
                    raise RuntimeError(
                        f"{self.label}: release() beyond capacity"
                    )
                self._available += 1

"""End-to-end flow control: credits, retry budgets, admission, load signals.

Paper §3 argues that the microservice era's reliability features are
double-edged: timeouts + retries *amplify* load exactly when the system can
least afford it, and buffering brokers hide overload until latency has
already collapsed.  This package is the defense layer the stack threads
through broker → service → database:

- :class:`CreditGate` — a bounded credit counter with FIFO waiters; the
  producer-side primitive behind bounded broker partitions (a producer
  blocks instead of growing the log without bound).
- :class:`RetryBudget` — a token bucket shared by a client's retry loops: a
  retry spends a token, a success refunds a fraction.  When the bucket is
  dry the client stops retrying — the circuit that prevents retry storms.
- :class:`AdmissionController` — load-shedding admission control with
  priority classes: low-priority work is rejected first (with the distinct
  :class:`AdmissionRejected`), and rejection is cheap by construction —
  shed work never reaches the expensive resource.
- :class:`LoadSignal` — a virtual-time-windowed EWMA of operation rate,
  the same fold (``alpha * window + (1 - alpha) * ewma``) the cluster
  rebalancer's :class:`~repro.cluster.stats.ShardStats` uses, so the
  database's adaptive group-commit window and the shard rebalancer react
  to one consistent notion of load.

See ``docs/OVERLOAD.md`` for the full design and ``benchmarks/
bench_c15_overload.py`` for the overload ramp that motivates it.
"""

from repro.flow.admission import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AdmissionController,
    AdmissionRejected,
    AdmissionStats,
)
from repro.flow.budget import RetryBudget
from repro.flow.credits import CreditGate
from repro.flow.signal import LoadSignal

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "CreditGate",
    "LoadSignal",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "RetryBudget",
]

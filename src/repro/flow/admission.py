"""Load-shedding admission control with priority classes.

Shedding at the door is the only overload defense whose cost does not grow
with load: a rejected request consumes O(1) work, while a queued one holds
memory, a timeout slot, and eventually a retry.  The controller bounds
concurrent in-flight work and rejects by priority — low-priority work is
turned away while the system still has headroom for high-priority work,
so goodput degrades by *class* instead of collapsing across the board.

Rejection is a distinct, typed error (:class:`AdmissionRejected`), never a
timeout: callers must be able to tell "the system refused cheaply" from
"the system may have done the work" — rejected work definitely did not
execute, which the chaos oracle for the overload scenario relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Priority classes, higher admits later (sheds last).
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2

_PRIORITY_NAMES = {PRIORITY_LOW: "low", PRIORITY_NORMAL: "normal", PRIORITY_HIGH: "high"}


class AdmissionRejected(Exception):
    """The request was shed at admission — it definitely did not execute."""

    def __init__(self, resource: str, priority: int, inflight: int, limit: int) -> None:
        name = _PRIORITY_NAMES.get(priority, str(priority))
        super().__init__(
            f"{resource}: {name}-priority request shed at {inflight}/{limit} in flight"
        )
        self.resource = resource
        self.priority = priority


@dataclass
class AdmissionStats:
    admitted: int = 0
    completed: int = 0
    #: rejected requests by priority class (the shed counter)
    shed: dict[int, int] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())


class AdmissionController:
    """Bounds concurrent in-flight requests, shedding low priority first.

    ``max_inflight`` is the hard concurrency limit; each priority class is
    admitted only while in-flight work is below its watermark fraction of
    that limit (defaults: low 50%, normal 90%, high 100%).  Callers wrap
    work in ``admit``/``release``::

        controller.admit(priority)        # raises AdmissionRejected
        try:
            ... do the work ...
        finally:
            controller.release()
    """

    def __init__(
        self,
        max_inflight: int,
        name: str = "admission",
        watermarks: dict[int, float] | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.name = name
        self.max_inflight = max_inflight
        self.watermarks = dict(watermarks) if watermarks is not None else {
            PRIORITY_LOW: 0.5,
            PRIORITY_NORMAL: 0.9,
            PRIORITY_HIGH: 1.0,
        }
        for priority, fraction in self.watermarks.items():
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"watermark for priority {priority} must be in (0, 1]"
                )
        self.inflight = 0
        self.stats = AdmissionStats()

    def limit_for(self, priority: int) -> int:
        """Admission ceiling for a priority class (at least 1 slot)."""
        fraction = self.watermarks.get(priority, 1.0)
        return max(1, int(self.max_inflight * fraction))

    def try_admit(self, priority: int = PRIORITY_NORMAL) -> bool:
        """Admit if the class has headroom; ``False`` means shed."""
        limit = self.limit_for(priority)
        if self.inflight >= limit:
            self.stats.shed[priority] = self.stats.shed.get(priority, 0) + 1
            return False
        self.inflight += 1
        self.stats.admitted += 1
        return True

    def admit(self, priority: int = PRIORITY_NORMAL) -> None:
        """Admit or raise :class:`AdmissionRejected`."""
        if not self.try_admit(priority):
            raise AdmissionRejected(
                self.name, priority, self.inflight, self.limit_for(priority)
            )

    def release(self) -> None:
        """Mark one admitted request complete (success or failure)."""
        if self.inflight <= 0:
            raise RuntimeError(f"{self.name}: release() without admit()")
        self.inflight -= 1
        self.stats.completed += 1

"""Retry budgets: a token bucket that starves retry storms.

The failure mode (paper §3.1): every caller retries independently, so at
the moment the system is slowest each logical request turns into N
physical ones — offered load *multiplies* exactly at saturation.  A retry
budget couples the retry rate to the success rate instead: retries spend
from a bounded bucket that only successes refill, so a healthy system
retries freely while a saturated one quickly stops adding fuel.

The bucket is intentionally client-wide (share one instance across all of
a client's calls): the point is to bound the *aggregate* retry traffic a
client injects, not to ration per call.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RetryBudget:
    """Token bucket: a retry spends 1 token, a success refunds ``refund``.

    Parameters
    ----------
    capacity:
        Maximum (and initial) token count.  A fresh budget allows a burst
        of ``capacity`` retries before any success is required.
    refund:
        Tokens credited per successful call (fractional; the classic
        "retry ratio" — ``refund=0.1`` sustains roughly one retry per ten
        successes once the initial burst is spent).
    """

    capacity: float = 10.0
    refund: float = 0.1

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.refund < 0:
            raise ValueError("refund must be >= 0")
        self.tokens = float(self.capacity)
        self.spent = 0
        self.denied = 0
        self.refunded = 0

    def try_spend(self) -> bool:
        """Take one token for a retry; ``False`` (and no retry) when dry."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def on_success(self) -> None:
        """Refund a fraction of a token, capped at ``capacity``."""
        self.tokens = min(float(self.capacity), self.tokens + self.refund)
        self.refunded += 1

    @property
    def exhausted(self) -> bool:
        return self.tokens < 1.0

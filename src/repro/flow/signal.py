"""A virtual-time-windowed EWMA load signal.

One smoothing formula for the whole stack: the fold is *identical* to the
cluster rebalancer's :class:`repro.cluster.stats.ShardStats`
(``load = alpha * window + (1 - alpha) * load`` at every window roll, and
the live read includes ``alpha * window`` so cold starts see data), so the
database's adaptive group-commit window, the admission controller's
introspection, and shard rebalancing all react to the same notion of
"load".  Windows roll lazily off the virtual clock — no background
process, no events, therefore zero effect on simulated behaviour: a
consumer that never reads the signal leaves the event schedule
byte-identical.
"""

from __future__ import annotations

from repro.sim import Environment


class LoadSignal:
    """Operations per ``window_ms`` window, EWMA-smoothed across rolls."""

    def __init__(
        self,
        env: Environment,
        window_ms: float = 10.0,
        alpha: float = 0.5,
    ) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.env = env
        self.window_ms = window_ms
        self.alpha = alpha
        self._window = 0.0
        self._ewma = 0.0
        self._window_start = env.now
        self.windows_rolled = 0

    def _roll_to_now(self) -> None:
        """Fold every fully elapsed window into the EWMA (lazy roll)."""
        elapsed = self.env.now - self._window_start
        if elapsed < self.window_ms:
            return
        alpha = self.alpha
        whole = int(elapsed / self.window_ms)
        # The first elapsed window folds the recorded count; any further
        # fully idle windows fold zeros (same as ShardStats rolling with an
        # empty window each tick).
        self._ewma = alpha * self._window + (1.0 - alpha) * self._ewma
        self._window = 0.0
        for _ in range(min(whole - 1, 64)):  # 64 idle rolls ≈ signal is dead
            if self._ewma < 1e-9:
                self._ewma = 0.0
                break
            self._ewma *= 1.0 - alpha
        self._window_start += whole * self.window_ms
        self.windows_rolled += whole

    def record(self, cost: float = 1.0) -> None:
        """Charge ``cost`` against the current window."""
        self._roll_to_now()
        self._window += cost

    def load(self) -> float:
        """Smoothed ops-per-window; includes the live window like ShardStats."""
        self._roll_to_now()
        return self._ewma + self.alpha * self._window

"""Latency/throughput measurement over virtual time.

Because the clock is virtual, latencies are exact (no measurement noise)
and percentiles are reproducible.  A :class:`MetricsCollector` is shared by
the workload drivers; benchmarks print its :meth:`MetricsCollector.summary`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches numpy's default behaviour; defined to avoid the dependency in
    the core path.  Raises ``ValueError`` on an empty sample set.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    return percentile_sorted(sorted(samples), q)


def percentile_sorted(ordered: list[float], q: float) -> float:
    """:func:`percentile` over an already-sorted sample list (no re-sort)."""
    if not ordered:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class LatencyRecorder:
    """Accumulates latency samples for one operation type.

    Percentile queries sort once and cache the ordering; :meth:`record`
    invalidates the cache, so repeated ``p(50)``/``p(99)`` calls (every
    benchmark table renders several) cost one sort total.
    """

    def __init__(self) -> None:
        self.samples: list[float] = []
        self._sorted: Optional[list[float]] = None

    def record(self, latency: float) -> None:
        self.samples.append(latency)
        self._sorted = None

    def extend(self, latencies: list[float]) -> None:
        """Bulk-append samples (pooling recorders across operations)."""
        self.samples.extend(latencies)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def sorted_samples(self) -> list[float]:
        """Samples in ascending order (cached until the next record)."""
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._sorted

    def p(self, q: float) -> float:
        """Percentile; 0.0 when empty (keeps report rendering simple)."""
        return percentile_sorted(self.sorted_samples, q) if self.samples else 0.0


@dataclass
class OpSummary:
    """Per-operation aggregate used in benchmark tables."""

    name: str
    completed: int
    failed: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    throughput_per_s: float


class MetricsCollector:
    """Shared sink for operation outcomes during a run.

    ``start()``/``stop()`` bracket the measured window in virtual time;
    throughput = completed / window.  Operations completing outside the
    window still record latency (the window only scales throughput).
    """

    def __init__(self) -> None:
        self._latencies: dict[str, LatencyRecorder] = defaultdict(LatencyRecorder)
        self._failures: dict[str, int] = defaultdict(int)
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    def start(self, now: float) -> None:
        self._started_at = now

    def stop(self, now: float) -> None:
        self._stopped_at = now

    @property
    def window(self) -> float:
        if self._started_at is None or self._stopped_at is None:
            return 0.0
        return self._stopped_at - self._started_at

    def record_success(self, op: str, latency: float) -> None:
        self._latencies[op].record(latency)

    def record_failure(self, op: str) -> None:
        self._failures[op] += 1

    #: Shared empty recorder returned for never-recorded operations, so
    #: read paths never insert rows (it is never handed out for writing).
    _EMPTY = LatencyRecorder()

    def completed(self, op: Optional[str] = None) -> int:
        if op is not None:
            recorder = self._latencies.get(op)
            return recorder.count if recorder is not None else 0
        return sum(r.count for r in self._latencies.values())

    def failed(self, op: Optional[str] = None) -> int:
        if op is not None:
            return self._failures.get(op, 0)
        return sum(self._failures.values())

    def latency(self, op: str) -> LatencyRecorder:
        """Read-only view of one operation's samples.

        Never inserts: querying an unknown op returns an empty recorder
        without fabricating a row in :meth:`summary`.
        """
        return self._latencies.get(op, MetricsCollector._EMPTY)

    def recorders(self) -> dict[str, LatencyRecorder]:
        """The live per-operation recorders (do not mutate)."""
        return dict(self._latencies)

    def throughput(self, op: Optional[str] = None) -> float:
        """Completed operations per second of virtual time (window-scaled)."""
        window_s = self.window / 1000.0  # clock unit is ms
        if window_s <= 0:
            return 0.0
        return self.completed(op) / window_s

    def summary(self) -> list[OpSummary]:
        """One row per operation type, sorted by name."""
        rows = []
        for name in sorted(set(self._latencies) | set(self._failures)):
            recorder = self._latencies.get(name, MetricsCollector._EMPTY)
            rows.append(
                OpSummary(
                    name=name,
                    completed=recorder.count,
                    failed=self._failures.get(name, 0),
                    mean_ms=recorder.mean,
                    p50_ms=recorder.p(50),
                    p99_ms=recorder.p(99),
                    throughput_per_s=self.throughput(name),
                )
            )
        return rows


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Align rows under headers; the shared ASCII table helper.

    Ragged input is tolerated: rows shorter than ``headers`` are padded
    with empty cells, longer rows are truncated to the header width.
    """
    columns = len(headers)
    rows = [(row + [""] * (columns - len(row)))[:columns] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(columns)
    ]

    def fmt(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)

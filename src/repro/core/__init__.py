"""Core abstractions: the paper's taxonomy, metrics, and fault injection.

The tutorial's contribution is a *taxonomy* (§2, Figure 1) organizing cloud
application runtimes along programming model, messaging, and state
management axes.  :mod:`repro.core.taxonomy` encodes that taxonomy as data,
with one :class:`RuntimeProfile` per runtime built in this repository;
:mod:`repro.core.metrics` and :mod:`repro.core.faults` provide the
measurement and failure-injection machinery shared by every benchmark.
"""

from repro.core.faults import FaultEvent, FaultPlan, FaultPlanError
from repro.core.metrics import (
    LatencyRecorder,
    MetricsCollector,
    percentile,
    percentile_sorted,
    render_table,
)
from repro.core.taxonomy import (
    PROFILES,
    ConsistencyGuarantee,
    DeliveryGuarantee,
    ProgrammingModel,
    RuntimeProfile,
    StateAccess,
    StatePlacement,
    taxonomy_table,
)

__all__ = [
    "ConsistencyGuarantee",
    "DeliveryGuarantee",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "LatencyRecorder",
    "MetricsCollector",
    "PROFILES",
    "ProgrammingModel",
    "RuntimeProfile",
    "StateAccess",
    "StatePlacement",
    "percentile",
    "percentile_sorted",
    "render_table",
    "taxonomy_table",
]

"""Declarative fault plans: scripted crashes, partitions, and chaos.

A :class:`FaultPlan` turns a benchmark's failure scenario into data:
"crash node X at t=500, restart it at t=800, partition A|B from 1000 to
1500".  Plans apply against a :class:`~repro.net.network.Network` and are
shared by the recovery benchmarks (C8) and fault-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.network import Network
from repro.sim import Environment


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at: float
    kind: str  # crash | restart | partition | heal | loss | duplication
    target: Optional[str] = None
    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()
    rate: float = 0.0


class FaultPlan:
    """A scriptable sequence of fault events.

    Build fluently, then :meth:`apply`::

        plan = (FaultPlan()
                .crash("silo-1", at=500)
                .restart("silo-1", at=800)
                .partition(["db"], ["svc-a", "svc-b"], at=1000, heal_at=1500))
        plan.apply(env, net)
    """

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []

    def crash(self, node: str, at: float) -> "FaultPlan":
        self.events.append(FaultEvent(at=at, kind="crash", target=node))
        return self

    def restart(self, node: str, at: float) -> "FaultPlan":
        self.events.append(FaultEvent(at=at, kind="restart", target=node))
        return self

    def crash_restart(self, node: str, at: float, downtime: float) -> "FaultPlan":
        return self.crash(node, at).restart(node, at + downtime)

    def partition(
        self,
        group_a: list[str],
        group_b: list[str],
        at: float,
        heal_at: Optional[float] = None,
    ) -> "FaultPlan":
        self.events.append(
            FaultEvent(at=at, kind="partition",
                       group_a=tuple(group_a), group_b=tuple(group_b))
        )
        if heal_at is not None:
            self.events.append(FaultEvent(at=heal_at, kind="heal"))
        return self

    def loss(self, rate: float, at: float = 0.0) -> "FaultPlan":
        self.events.append(FaultEvent(at=at, kind="loss", rate=rate))
        return self

    def duplication(self, rate: float, at: float = 0.0) -> "FaultPlan":
        self.events.append(FaultEvent(at=at, kind="duplication", rate=rate))
        return self

    def apply(self, env: Environment, net: Network) -> None:
        """Schedule every event against the network's environment."""
        for event in self.events:
            env.schedule(event.at, self._execute, net, event)

    @staticmethod
    def _execute(net: Network, event: FaultEvent) -> None:
        if event.kind == "crash":
            net.node(event.target).crash("fault-plan")
        elif event.kind == "restart":
            net.node(event.target).restart()
        elif event.kind == "partition":
            net.partition(list(event.group_a), list(event.group_b))
        elif event.kind == "heal":
            net.heal()
        elif event.kind == "loss":
            net.set_loss(event.rate)
        elif event.kind == "duplication":
            net.set_duplication(event.rate)
        else:
            raise ValueError(f"unknown fault kind {event.kind!r}")

"""Declarative fault plans: scripted crashes, partitions, and chaos.

A :class:`FaultPlan` turns a benchmark's failure scenario into data:
"crash node X at t=500, restart it at t=800, partition A|B from 1000 to
1500".  Plans apply against a :class:`~repro.net.network.Network` and are
shared by the recovery benchmarks (C8), fault-injection tests, and the
randomized :mod:`repro.chaos` nemesis, whose fuzzed schedules compile down
to plain fault plans so scripted and fuzzed runs share one execution path.

Plans are *data*: :meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`
round-trip a plan losslessly, which is the repro-artifact format the chaos
shrinker emits.  Validation happens at build and apply time — a malformed
plan (negative offset, unknown fault kind, restart of a never-crashed
node, crash of a node the network does not have) raises
:class:`FaultPlanError` up front instead of exploding mid-simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.net.network import Network
from repro.sim import Environment

#: Fault kinds a plan may contain, in canonical order.
FAULT_KINDS = (
    "crash", "restart", "partition", "heal", "loss", "duplication", "delay",
    "kill_leader",
)


class FaultPlanError(ValueError):
    """A fault plan is malformed (caught at build/apply time, not mid-run)."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``rate`` carries the loss/duplication probability, or the extra delay
    in milliseconds for ``delay`` events.  ``until`` (loss / duplication /
    delay only) auto-restores the fault to zero at that time, so a burst
    does not silently persist for the rest of the run.
    """

    at: float
    kind: str  # crash | restart | partition | heal | loss | duplication | delay
    target: Optional[str] = None
    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()
    rate: float = 0.0
    until: Optional[float] = None

    def to_dict(self) -> dict:
        out: dict = {"at": self.at, "kind": self.kind}
        if self.target is not None:
            out["target"] = self.target
        if self.group_a:
            out["group_a"] = list(self.group_a)
        if self.group_b:
            out["group_b"] = list(self.group_b)
        if self.rate:
            out["rate"] = self.rate
        if self.until is not None:
            out["until"] = self.until
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        known = {"at", "kind", "target", "group_a", "group_b", "rate", "until"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(f"unknown fault event fields: {sorted(unknown)}")
        return cls(
            at=float(data["at"]),
            kind=data["kind"],
            target=data.get("target"),
            group_a=tuple(data.get("group_a", ())),
            group_b=tuple(data.get("group_b", ())),
            rate=float(data.get("rate", 0.0)),
            until=float(data["until"]) if data.get("until") is not None else None,
        )


def _check_at(at: float, what: str) -> None:
    if not (isinstance(at, (int, float)) and 0.0 <= float(at) < float("inf")):
        raise FaultPlanError(f"{what}: offset must be finite and >= 0, got {at!r}")


def _check_rate(rate: float, what: str) -> None:
    if not (isinstance(rate, (int, float)) and 0.0 <= float(rate) <= 1.0):
        raise FaultPlanError(f"{what}: rate must be in [0, 1], got {rate!r}")


def _check_node(node: object, what: str) -> None:
    if not isinstance(node, str) or not node:
        raise FaultPlanError(f"{what}: node name must be a non-empty string, got {node!r}")


def _check_until(at: float, until: Optional[float], what: str) -> None:
    if until is not None:
        _check_at(until, what)
        if until <= at:
            raise FaultPlanError(f"{what}: until ({until}) must be after at ({at})")


class FaultPlan:
    """A scriptable sequence of fault events.

    Build fluently, then :meth:`apply`::

        plan = (FaultPlan()
                .crash("silo-1", at=500)
                .restart("silo-1", at=800)
                .partition(["db"], ["svc-a", "svc-b"], at=1000, heal_at=1500))
        plan.apply(env, net)
    """

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []

    def crash(self, node: str, at: float) -> "FaultPlan":
        _check_node(node, "crash")
        _check_at(at, f"crash({node!r})")
        self.events.append(FaultEvent(at=at, kind="crash", target=node))
        return self

    def restart(self, node: str, at: float) -> "FaultPlan":
        _check_node(node, "restart")
        _check_at(at, f"restart({node!r})")
        self.events.append(FaultEvent(at=at, kind="restart", target=node))
        return self

    def crash_restart(self, node: str, at: float, downtime: float) -> "FaultPlan":
        if downtime <= 0:
            raise FaultPlanError(f"crash_restart({node!r}): downtime must be positive")
        return self.crash(node, at).restart(node, at + downtime)

    def partition(
        self,
        group_a: list[str],
        group_b: list[str],
        at: float,
        heal_at: Optional[float] = None,
    ) -> "FaultPlan":
        _check_at(at, "partition")
        if not group_a or not group_b:
            raise FaultPlanError("partition: both groups must be non-empty")
        for node in list(group_a) + list(group_b):
            _check_node(node, "partition")
        overlap = set(group_a) & set(group_b)
        if overlap:
            raise FaultPlanError(f"partition: groups overlap on {sorted(overlap)}")
        if heal_at is not None and heal_at <= at:
            raise FaultPlanError(f"partition: heal_at ({heal_at}) must be after at ({at})")
        self.events.append(
            FaultEvent(at=at, kind="partition",
                       group_a=tuple(group_a), group_b=tuple(group_b))
        )
        if heal_at is not None:
            self.events.append(FaultEvent(at=heal_at, kind="heal"))
        return self

    def heal(self, at: float) -> "FaultPlan":
        """Remove all partitions at ``at`` (explicit form)."""
        _check_at(at, "heal")
        self.events.append(FaultEvent(at=at, kind="heal"))
        return self

    def loss(self, rate: float, at: float = 0.0, until: Optional[float] = None) -> "FaultPlan":
        """Message loss burst; with ``until`` the rate restores to 0 there."""
        _check_rate(rate, "loss")
        _check_at(at, "loss")
        _check_until(at, until, "loss")
        self.events.append(FaultEvent(at=at, kind="loss", rate=rate, until=until))
        return self

    def duplication(self, rate: float, at: float = 0.0, until: Optional[float] = None) -> "FaultPlan":
        """Duplication burst; with ``until`` the rate restores to 0 there."""
        _check_rate(rate, "duplication")
        _check_at(at, "duplication")
        _check_until(at, until, "duplication")
        self.events.append(FaultEvent(at=at, kind="duplication", rate=rate, until=until))
        return self

    def delay(self, extra_ms: float, at: float = 0.0, until: Optional[float] = None) -> "FaultPlan":
        """A latency spike: add ``extra_ms`` to every message, optionally
        restored at ``until``."""
        if not (isinstance(extra_ms, (int, float)) and extra_ms >= 0):
            raise FaultPlanError(f"delay: extra_ms must be >= 0, got {extra_ms!r}")
        _check_at(at, "delay")
        _check_until(at, until, "delay")
        self.events.append(FaultEvent(at=at, kind="delay", rate=extra_ms, until=until))
        return self

    def kill_leader(self, group: str, at: float, until: float) -> "FaultPlan":
        """Crash whichever node *leads* ``group`` when the event fires.

        ``group`` is a replica-group label resolved at execution time by
        the scenario's leader resolver (see :meth:`apply`), not a node
        name — the whole point is to target leadership wherever the
        elections have moved it.  The killed node restarts at ``until``.
        """
        _check_node(group, "kill_leader")
        _check_at(at, f"kill_leader({group!r})")
        _check_until(at, until, f"kill_leader({group!r})")
        if until is None:
            raise FaultPlanError(f"kill_leader({group!r}): until is required")
        self.events.append(
            FaultEvent(at=at, kind="kill_leader", target=group, until=until)
        )
        return self

    # -- validation -----------------------------------------------------------

    def validate(self, net: Optional[Network] = None) -> None:
        """Check plan consistency; with ``net``, also check node names.

        Raises :class:`FaultPlanError` on: unknown fault kind, negative
        offsets, a restart that does not follow a crash of the same node,
        or (with ``net``) a crash/restart/partition naming a node the
        network does not have.
        """
        node_state: dict[str, str] = {}  # node -> "up" | "down"
        ordered = sorted(
            range(len(self.events)), key=lambda i: (self.events[i].at, i)
        )
        for index in ordered:
            event = self.events[index]
            if event.kind not in FAULT_KINDS:
                raise FaultPlanError(f"unknown fault kind {event.kind!r}")
            _check_at(event.at, event.kind)
            if event.kind == "kill_leader":
                if not event.target:
                    raise FaultPlanError("kill_leader: missing target group")
                if event.until is None:
                    raise FaultPlanError("kill_leader: missing until (restart time)")
                # target is a group label, resolved at execution time —
                # deliberately outside the node-state machine below
                continue
            if event.kind in ("crash", "restart"):
                if not event.target:
                    raise FaultPlanError(f"{event.kind}: missing target node")
                state = node_state.get(event.target, "up")
                if event.kind == "crash":
                    if state == "down":
                        raise FaultPlanError(
                            f"crash of {event.target!r} at t={event.at}: already down"
                        )
                    node_state[event.target] = "down"
                else:
                    if state != "down":
                        raise FaultPlanError(
                            f"restart of {event.target!r} at t={event.at} "
                            "precedes any crash of it"
                        )
                    node_state[event.target] = "up"
            if net is not None:
                for name in self._named_nodes(event):
                    if name not in net.nodes:
                        raise FaultPlanError(
                            f"{event.kind} at t={event.at} names unknown node {name!r}"
                        )

    @staticmethod
    def _named_nodes(event: FaultEvent) -> tuple[str, ...]:
        if event.kind in ("crash", "restart") and event.target:
            return (event.target,)
        if event.kind == "partition":
            return event.group_a + event.group_b
        return ()

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        plan = cls()
        for entry in data.get("events", []):
            event = FaultEvent.from_dict(entry)
            if event.kind not in FAULT_KINDS:
                raise FaultPlanError(f"unknown fault kind {event.kind!r}")
            plan.events.append(event)
        plan.validate()
        return plan

    def to_json(self) -> str:
        """Canonical JSON — the shrinker's repro-artifact format."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- execution ------------------------------------------------------------

    def apply(self, env: Environment, net: Network, resolver=None) -> None:
        """Validate, then schedule every event against the environment.

        Offsets are relative to ``env.now`` at apply time, so a plan built
        for "workload time" applies unchanged after a setup phase.

        ``resolver`` maps a ``kill_leader`` event's group label to the
        node name currently leading that group (returning ``None`` when
        there is no leader to kill); plans containing ``kill_leader``
        events require it.
        """
        self.validate(net)
        for event in self.events:
            if event.kind == "kill_leader" and resolver is None:
                raise FaultPlanError(
                    "plan contains kill_leader events but apply() got no "
                    "leader resolver"
                )
        for event in self.events:
            env.schedule(event.at, self._execute, net, event, resolver, env)
            if event.until is not None and event.kind in ("loss", "duplication", "delay"):
                restore = FaultEvent(at=event.until, kind=event.kind, rate=0.0)
                env.schedule(event.until, self._execute, net, restore)

    @staticmethod
    def _execute(net: Network, event: FaultEvent, resolver=None, env=None) -> None:
        if event.kind == "crash":
            net.node(event.target).crash("fault-plan")
        elif event.kind == "restart":
            net.node(event.target).restart()
        elif event.kind == "kill_leader":
            # Resolved at fire time: kill whoever leads the group *now*.
            name = resolver(event.target)
            node = net.nodes.get(name) if name is not None else None
            if node is None or not node.alive:
                return  # leaderless (mid-election) or already down: no-op
            node.crash("kill-leader")
            env.schedule(event.until - event.at, node.restart)
        elif event.kind == "partition":
            net.partition(list(event.group_a), list(event.group_b))
        elif event.kind == "heal":
            net.heal()
        elif event.kind == "loss":
            net.set_loss(event.rate)
        elif event.kind == "duplication":
            net.set_duplication(event.rate)
        elif event.kind == "delay":
            net.set_extra_delay(event.rate)
        else:  # pragma: no cover - validate() rejects unknown kinds up front
            raise FaultPlanError(f"unknown fault kind {event.kind!r}")

"""The paper's taxonomy (Figure 1) encoded as data.

Each runtime implemented in this repository carries a
:class:`RuntimeProfile` placing it on the taxonomy's axes: programming
model, state placement (embedded vs external), state access (centralized vs
decentralized), message-delivery guarantee, and cross-component consistency
guarantee.  ``taxonomy_table()`` renders the comparison the tutorial walks
its audience through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ProgrammingModel(enum.Enum):
    """§3.1: how application logic is expressed."""

    MICROSERVICE = "microservice framework"
    ACTOR = "virtual actors"
    FAAS = "stateful functions (FaaS)"
    DATAFLOW = "stateful dataflow"


class StatePlacement(enum.Enum):
    """§3.3: where state lives relative to the application runtime."""

    EMBEDDED = "embedded"
    EXTERNAL = "external"


class StateAccess(enum.Enum):
    """§3.3: unified vs per-component state management."""

    CENTRALIZED = "centralized"
    DECENTRALIZED = "decentralized"


class DeliveryGuarantee(enum.Enum):
    """§3.2: what the messaging substrate promises."""

    AT_MOST_ONCE = "at-most-once"
    AT_LEAST_ONCE = "at-least-once"
    EXACTLY_ONCE = "exactly-once"


class ConsistencyGuarantee(enum.Enum):
    """§4.2: strongest cross-component guarantee offered by default."""

    NONE = "none (eventual)"
    CAUSAL = "causal"
    ATOMIC = "atomic (no isolation)"
    SERIALIZABLE = "serializable"


@dataclass(frozen=True)
class RuntimeProfile:
    """One runtime's position in the taxonomy, plus its repro module."""

    name: str
    model: ProgrammingModel
    state_placement: StatePlacement
    state_access: StateAccess
    delivery: DeliveryGuarantee
    consistency: ConsistencyGuarantee
    stands_in_for: str
    module: str


PROFILES: dict[str, RuntimeProfile] = {
    "microservices": RuntimeProfile(
        name="microservices",
        model=ProgrammingModel.MICROSERVICE,
        state_placement=StatePlacement.EXTERNAL,
        state_access=StateAccess.DECENTRALIZED,
        delivery=DeliveryGuarantee.AT_LEAST_ONCE,
        consistency=ConsistencyGuarantee.NONE,
        stands_in_for="Spring Boot / Flask + sagas",
        module="repro.microservices",
    ),
    "actors": RuntimeProfile(
        name="actors",
        model=ProgrammingModel.ACTOR,
        state_placement=StatePlacement.EXTERNAL,
        state_access=StateAccess.DECENTRALIZED,
        delivery=DeliveryGuarantee.AT_MOST_ONCE,
        consistency=ConsistencyGuarantee.NONE,
        stands_in_for="Orleans / Akka virtual actors",
        module="repro.actors",
    ),
    "actors+txn": RuntimeProfile(
        name="actors+txn",
        model=ProgrammingModel.ACTOR,
        state_placement=StatePlacement.EXTERNAL,
        state_access=StateAccess.DECENTRALIZED,
        delivery=DeliveryGuarantee.AT_LEAST_ONCE,
        consistency=ConsistencyGuarantee.SERIALIZABLE,
        stands_in_for="Orleans Transactions",
        module="repro.actors.transactions",
    ),
    "faas": RuntimeProfile(
        name="faas",
        model=ProgrammingModel.FAAS,
        state_placement=StatePlacement.EXTERNAL,
        state_access=StateAccess.CENTRALIZED,
        delivery=DeliveryGuarantee.AT_LEAST_ONCE,
        consistency=ConsistencyGuarantee.CAUSAL,
        stands_in_for="Cloudburst-style SFaaS",
        module="repro.faas",
    ),
    "durable-functions": RuntimeProfile(
        name="durable-functions",
        model=ProgrammingModel.FAAS,
        state_placement=StatePlacement.EXTERNAL,
        state_access=StateAccess.CENTRALIZED,
        delivery=DeliveryGuarantee.EXACTLY_ONCE,
        consistency=ConsistencyGuarantee.ATOMIC,
        stands_in_for="Azure Durable Functions entities",
        module="repro.faas.entities",
    ),
    "transactional-faas": RuntimeProfile(
        name="transactional-faas",
        model=ProgrammingModel.FAAS,
        state_placement=StatePlacement.EXTERNAL,
        state_access=StateAccess.CENTRALIZED,
        delivery=DeliveryGuarantee.EXACTLY_ONCE,
        consistency=ConsistencyGuarantee.SERIALIZABLE,
        stands_in_for="Beldi / Boki workflows",
        module="repro.faas.workflows",
    ),
    "dataflow": RuntimeProfile(
        name="dataflow",
        model=ProgrammingModel.DATAFLOW,
        state_placement=StatePlacement.EMBEDDED,
        state_access=StateAccess.DECENTRALIZED,
        delivery=DeliveryGuarantee.EXACTLY_ONCE,
        consistency=ConsistencyGuarantee.ATOMIC,
        stands_in_for="Flink / Statefun",
        module="repro.dataflow",
    ),
    "txn-dataflow": RuntimeProfile(
        name="txn-dataflow",
        model=ProgrammingModel.DATAFLOW,
        state_placement=StatePlacement.EMBEDDED,
        state_access=StateAccess.DECENTRALIZED,
        delivery=DeliveryGuarantee.EXACTLY_ONCE,
        consistency=ConsistencyGuarantee.SERIALIZABLE,
        stands_in_for="Styx deterministic transactional dataflow",
        module="repro.dataflow.txn",
    ),
}


def taxonomy_table() -> str:
    """Render the taxonomy as an aligned ASCII table (the tutorial's map)."""
    headers = [
        "runtime", "model", "state", "access", "delivery", "consistency",
        "stands in for",
    ]
    rows = [
        [
            profile.name,
            profile.model.value,
            profile.state_placement.value,
            profile.state_access.value,
            profile.delivery.value,
            profile.consistency.value,
            profile.stands_in_for,
        ]
        for profile in PROFILES.values()
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    def fmt(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)

"""Queue-oriented deterministic parallel execution (QueCC-style).

The single-threaded simulation kernel is the repository's hard speed
ceiling; this package is the multi-core unlock.  Following "A
Queue-oriented Transaction Processing Paradigm" (QueCC, see PAPERS.md), it
splits deterministic transaction processing into a **planning phase** — a
sequencer epoch is partitioned into per-shard execution queues, with
cross-shard transactions becoming multi-queue entries settled at
deterministic rendezvous points — and an **execution phase** that drains
independent queues on real cores (OS worker processes; pickled snapshot
slices in, write deltas out) with zero shared-lock coordination, before a
**merge phase** re-applies every result into the authoritative engines in
the sequencer's seeded total order.

The governing invariant is golden equivalence: ``workers=N`` must produce
byte-identical engine state, result tables, and trace exports to the
``workers=0`` single-threaded reference (``tests/test_golden_equivalence``
and ``tests/test_parallel``).  Parallelism may buy wall-clock time only —
never a different answer.

The :class:`WorkerPool` is also the substrate for coarse-grained
parallelism over independent benchmark cells
(:func:`repro.harness.run_cells`): whole deterministic simulations fan out
to worker processes and their results merge back in cell order.
"""

from repro.parallel.executor import EpochExecutor, EpochResult
from repro.parallel.plan import (
    EpochPlan,
    PlannedTxn,
    PlanStats,
    Round,
    TxnSpec,
    plan_epoch,
)
from repro.parallel.pool import (
    PoolStats,
    WorkerError,
    WorkerPool,
    preferred_start_method,
)
from repro.parallel.procs import (
    PROC_REGISTRY,
    TxnView,
    UndeclaredKey,
    UnknownProcedure,
    execute_entries,
    procedure,
    spin,
)

__all__ = [
    "EpochExecutor",
    "EpochPlan",
    "EpochResult",
    "PlanStats",
    "PlannedTxn",
    "PoolStats",
    "PROC_REGISTRY",
    "Round",
    "TxnSpec",
    "TxnView",
    "UndeclaredKey",
    "UnknownProcedure",
    "WorkerError",
    "WorkerPool",
    "execute_entries",
    "plan_epoch",
    "preferred_start_method",
    "procedure",
    "spin",
]

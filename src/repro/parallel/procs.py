"""Deterministic stored procedures: the only code workers execute.

Queue-oriented execution ships *transaction descriptors*, never closures:
a :class:`~repro.parallel.plan.TxnSpec` names a procedure registered here
plus its (picklable) arguments and its declared key set.  Workers resolve
the name in their own process — under the ``fork`` start method the
registry is inherited, under ``spawn`` the executor ships the module names
to import — so the bytes crossing the process boundary stay small and the
execution is a pure function of ``(snapshot slice, queue)``.

Procedures must be deterministic: no wall clock, no unseeded randomness,
no iteration over unordered containers whose order leaks into writes.
Every key a procedure touches must be declared in its spec — the
:class:`TxnView` enforces this, because an undeclared access would have
been invisible to the planner and could silently break the conflict-free
partitioning.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

#: name -> procedure; populated by :func:`procedure` at import time.
PROC_REGISTRY: dict[str, Callable] = {}


class UnknownProcedure(KeyError):
    """A spec named a procedure the executing process never registered."""


class UndeclaredKey(RuntimeError):
    """A procedure touched a key absent from its spec's declared key set."""


def procedure(name: str) -> Callable[[Callable], Callable]:
    """Register ``fn`` as the stored procedure called ``name``."""

    def register(fn: Callable) -> Callable:
        if name in PROC_REGISTRY:
            raise ValueError(f"procedure {name!r} is already registered")
        PROC_REGISTRY[name] = fn
        return fn

    return register


def resolve(name: str) -> Callable:
    try:
        return PROC_REGISTRY[name]
    except KeyError:
        raise UnknownProcedure(
            f"procedure {name!r} is not registered in this process; "
            "pass its defining module via EpochExecutor(modules=...)"
        ) from None


class TxnView:
    """One transaction's window onto a shard store.

    ``store`` maps ``(table, key) -> row dict`` (absent = no row).  Reads
    and writes are restricted to the declared key set; writes apply to the
    store immediately (later transactions in the same queue see them) and
    are recorded in order for the deterministic merge back into the
    authoritative engine.
    """

    __slots__ = ("_store", "_allowed", "writes")

    def __init__(self, store: Any, allowed: frozenset) -> None:
        self._store = store
        self._allowed = allowed
        #: ordered ``((table, key), row_or_None)`` pairs; ``None`` deletes.
        self.writes: list[tuple[tuple[str, Hashable], Optional[dict]]] = []

    def _check(self, table: str, key: Hashable) -> tuple[str, Hashable]:
        ref = (table, key)
        if ref not in self._allowed:
            raise UndeclaredKey(
                f"access to {table}[{key!r}] was not declared in the "
                "transaction's key set — the planner cannot partition "
                "undeclared accesses"
            )
        return ref

    def get(self, table: str, key: Hashable) -> Optional[dict]:
        """The current row (or ``None``); sees this txn's own writes."""
        return self._store.get(self._check(table, key))

    def put(self, table: str, key: Hashable, row: dict) -> None:
        """Install a full row (copied, so callers may reuse the dict)."""
        ref = self._check(table, key)
        frozen = dict(row)
        self._store[ref] = frozen
        self.writes.append((ref, frozen))

    def update(self, table: str, key: Hashable, changes: dict) -> dict:
        """Merge ``changes`` into the existing row; raises if absent."""
        ref = self._check(table, key)
        current = self._store.get(ref)
        if current is None:
            raise KeyError(f"{table}[{key!r}] does not exist")
        merged = dict(current)
        merged.update(changes)
        self._store[ref] = merged
        self.writes.append((ref, merged))
        return merged

    def delete(self, table: str, key: Hashable) -> None:
        ref = self._check(table, key)
        self._store.pop(ref, None)
        self.writes.append((ref, None))


def spin(rounds: int, salt: int = 0) -> int:
    """Deterministic CPU work (a linear-congruential chain).

    Models the compute cost of real transaction logic; benches use it to
    make the execution phase CPU-bound without touching the clock.
    """
    value = (salt * 2654435761 + 1) & 0x7FFFFFFF
    for _ in range(rounds):
        value = (value * 1103515245 + 12345) & 0x7FFFFFFF
    return value


# -- built-in procedures ------------------------------------------------------
#
# The KV family mirrors the YCSB operation shapes the benches use; apps can
# register richer procedures from their own modules.


@procedure("kv.read")
def _kv_read(ctx: TxnView, table: str, key: Hashable) -> Optional[dict]:
    return ctx.get(table, key)


@procedure("kv.put")
def _kv_put(ctx: TxnView, table: str, key: Hashable, row: dict) -> None:
    ctx.put(table, key, row)


@procedure("kv.rmw")
def _kv_rmw(
    ctx: TxnView,
    table: str,
    key: Hashable,
    field: str = "counter",
    delta: int = 1,
    work: int = 0,
) -> int:
    """Read-modify-write: increment ``field``, optionally burning CPU."""
    row = ctx.get(table, key)
    if row is None:
        row = {"id": key, field: 0}
    value = row.get(field, 0) + delta
    if work:
        value += spin(work, salt=value) % 1  # burns cycles, adds nothing
    ctx.put(table, key, {**row, field: value})
    return value


@procedure("kv.transfer")
def _kv_transfer(
    ctx: TxnView,
    table: str,
    src: Hashable,
    dst: Hashable,
    amount: float,
    field: str = "balance",
    work: int = 0,
) -> None:
    """Move ``amount`` between two rows — the canonical cross-shard txn."""
    src_row = ctx.get(table, src) or {"id": src, field: 0}
    dst_row = ctx.get(table, dst) or {"id": dst, field: 0}
    if work:
        spin(work, salt=hash(amount) & 0xFFFF)
    ctx.put(table, src, {**src_row, field: src_row.get(field, 0) - amount})
    ctx.put(table, dst, {**dst_row, field: dst_row.get(field, 0) + amount})


def execute_entries(store: Any, entries: list) -> list:
    """Run planned transactions serially, in queue order, against a store.

    The single execution kernel shared by the inline (``workers=0``)
    reference path and the worker processes — equivalence between the two
    is structural, not coincidental.  Returns ``(tid, writes)`` per entry.
    """
    out = []
    for entry in entries:
        spec = entry.spec
        ctx = TxnView(store, frozenset(spec.keys))
        resolve(spec.proc)(ctx, *spec.args)
        out.append((entry.tid, ctx.writes))
    return out

"""The execution phase: run planned queues on real cores, merge in order.

One :class:`EpochExecutor` drives the full queue-oriented cycle per epoch:

1. **snapshot** — export the authoritative engine's committed rows and
   slice them per shard (pickled to the owning worker; the whole slice
   crosses the process boundary, which is the honest cost of
   shared-nothing execution and is visible in :class:`EpochResult`'s byte
   counters);
2. **execute** — each round's per-shard queues run concurrently on the
   worker processes (``workers=0`` runs the *identical* kernel inline —
   the permanent single-threaded reference the golden-equivalence suite
   compares against); cross-shard transactions settle at each round's
   rendezvous barrier on the coordinator, in TID order, and their writes
   are patched to the owning workers with the next dispatch;
3. **merge** — every transaction's recorded writes are applied back into
   the authoritative engine(s) in the sequencer's seeded total (TID)
   order, one commit sequence per transaction, so the resulting state is
   byte-identical to serial execution.

Works against a single :class:`~repro.db.engine.Database` (logical shards
via the cluster hash) or a :class:`~repro.db.sharding.ShardedDatabase`
(planning follows its live router, merging lands in each shard's own
engine).  Shard → worker assignment can follow a
:class:`~repro.cluster.PlacementDirectory`, so the same placement layer
that routes live traffic also routes queue execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Sequence

from repro.cluster import stable_hash
from repro.parallel.plan import EpochPlan, TxnSpec, plan_epoch
from repro.parallel.pool import WorkerPool
from repro.parallel.procs import TxnView, execute_entries, resolve
from repro.transactions.sequencer import SequencedTxn, Sequencer


class _MultiStore:
    """A cross-shard view over the coordinator's per-shard stores.

    Rendezvous transactions read and write through this: every access
    routes to the owning shard's store, so their effects are indistinguishable
    from having run on a single store.
    """

    __slots__ = ("stores", "route")

    def __init__(self, stores: dict[int, dict], route: Callable[[Hashable], int]) -> None:
        self.stores = stores
        self.route = route

    def get(self, ref: tuple, default: Any = None) -> Any:
        return self.stores[self.route(ref[1])].get(ref, default)

    def __setitem__(self, ref: tuple, row: dict) -> None:
        self.stores[self.route(ref[1])][ref] = row

    def pop(self, ref: tuple, default: Any = None) -> Any:
        return self.stores[self.route(ref[1])].pop(ref, default)


@dataclass
class EpochResult:
    """What one epoch's plan → execute → merge cycle did."""

    epoch: int
    txns: int
    rounds: int
    cross_shard: int
    #: committed write batches installed into authoritative engines
    applied: int
    #: pickled bytes shipped to / received from workers for this epoch
    bytes_sent: int = 0
    bytes_received: int = 0
    plan: Optional[EpochPlan] = None


class EpochExecutor:
    """Deterministic parallel execution of sequencer epochs (see module doc).

    ``workers=0`` (the default) is the single-threaded reference: the same
    planning, the same execution kernel, the same merge — minus the
    processes.  ``workers=N`` runs shard queues on ``N`` OS processes.
    """

    def __init__(
        self,
        db: Any,
        *,
        num_shards: Optional[int] = None,
        workers: int = 0,
        shard_of: Optional[Callable[[Hashable], int]] = None,
        placement: Any = None,
        modules: Sequence[str] = (),
        epoch_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.db = db
        self._sharded = hasattr(db, "export_shard_snapshot")
        if self._sharded:
            self.num_shards = len(db.shards)
            self._shard_of = shard_of or db.router.shard_of
        else:
            if num_shards is None or num_shards <= 0:
                raise ValueError("num_shards is required for a single engine")
            self.num_shards = num_shards
            self._shard_of = shard_of or (
                lambda key: stable_hash(key) % num_shards
            )
        self.workers = workers
        self.sequencer = Sequencer(epoch_size=epoch_size)
        self._placement = placement
        self._pool: Optional[WorkerPool] = None
        if workers > 0:
            self._pool = WorkerPool(workers, start_method=start_method)
            self._pool.import_modules(tuple(modules))
        self.epochs_run = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "EpochExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @property
    def pool_stats(self):
        return self._pool.stats if self._pool is not None else None

    # -- submission convenience ----------------------------------------------

    def submit(self, spec: TxnSpec) -> SequencedTxn:
        """Order a transaction into the executor's current epoch."""
        return self.sequencer.submit(spec)

    def flush(self) -> EpochResult:
        """Cut the current epoch and run it end to end."""
        return self.run_epoch(self.sequencer.cut_epoch())

    # -- the epoch cycle -----------------------------------------------------

    def _worker_of(self, shard: int) -> int:
        if self._placement is not None:
            nodes = sorted(set(self._placement.owners().values()))
            node = self._placement.owner_of(shard)
            return nodes.index(node) % self.workers
        return shard % self.workers

    def _export_stores(self) -> dict[int, dict]:
        stores: dict[int, dict] = {shard: {} for shard in range(self.num_shards)}
        if self._sharded:
            for shard in range(self.num_shards):
                stores[shard] = self.db.export_shard_snapshot(shard)
        else:
            for ref, row in self.db.export_snapshot().items():
                stores[self._shard_of(ref[1])][ref] = row
        return stores

    def run_epoch(self, batch: list[SequencedTxn]) -> EpochResult:
        """Plan, execute, and merge one epoch; returns what happened."""
        plan = plan_epoch(
            batch, num_shards=self.num_shards, shard_of=self._shard_of
        )
        pool = self._pool
        sent0 = pool.stats.bytes_sent if pool else 0
        received0 = pool.stats.bytes_received if pool else 0
        stores = self._export_stores()
        multi = _MultiStore(stores, self._shard_of)
        txn_writes: list[tuple[int, list]] = []

        if pool is not None and batch:
            per_worker: dict[int, dict[int, dict]] = {}
            for shard, store in stores.items():
                per_worker.setdefault(self._worker_of(shard), {})[shard] = store
            pool.request(
                {w: ("snapshot", slices) for w, slices in per_worker.items()}
            )

        #: rendezvous writes awaiting shipment to each shard's worker
        patches: dict[int, list] = {}
        for rnd in plan.rounds:
            if rnd.local:
                if pool is not None:
                    tasks: dict[int, list] = {}
                    for shard in sorted(rnd.local):
                        tasks.setdefault(self._worker_of(shard), []).append(
                            (shard, patches.pop(shard, []), rnd.local[shard])
                        )
                    replies = pool.request(
                        {w: ("exec", batch_) for w, batch_ in tasks.items()}
                    )
                    for worker in sorted(replies):
                        for shard, results in replies[worker]:
                            store = stores[shard]
                            for tid, writes in results:
                                for ref, row in writes:
                                    if row is None:
                                        store.pop(ref, None)
                                    else:
                                        store[ref] = row
                                txn_writes.append((tid, writes))
                else:
                    for shard in sorted(rnd.local):
                        txn_writes.extend(
                            execute_entries(stores[shard], rnd.local[shard])
                        )
            for entry in rnd.rendezvous:
                ctx = TxnView(multi, frozenset(entry.spec.keys))
                resolve(entry.spec.proc)(ctx, *entry.spec.args)
                txn_writes.append((entry.tid, ctx.writes))
                if pool is not None:
                    for ref, row in ctx.writes:
                        patches.setdefault(self._shard_of(ref[1]), []).append(
                            (ref, row)
                        )
        # Unshipped patches are dropped deliberately: worker slices are
        # rebuilt from the authoritative snapshot at the next epoch.

        txn_writes.sort(key=lambda item: item[0])  # the seeded total order
        applied = self._merge(txn_writes, plan.epoch)
        self.epochs_run += 1
        return EpochResult(
            epoch=plan.epoch,
            txns=plan.stats.txns,
            rounds=plan.stats.rounds,
            cross_shard=plan.stats.cross_shard,
            applied=applied,
            bytes_sent=(pool.stats.bytes_sent - sent0) if pool else 0,
            bytes_received=(pool.stats.bytes_received - received0) if pool else 0,
            plan=plan,
        )

    def _merge(self, txn_writes: list[tuple[int, list]], epoch: int) -> int:
        """Install results into the authoritative engine(s) in TID order."""
        if not self._sharded:
            return self.db.apply_epoch(txn_writes, epoch=epoch)
        per_shard: dict[int, list] = {}
        for tid, writes in txn_writes:
            split: dict[int, list] = {}
            for ref, row in writes:
                split.setdefault(self._shard_of(ref[1]), []).append((ref, row))
            for shard, shard_writes in split.items():
                per_shard.setdefault(shard, []).append((tid, shard_writes))
        applied = 0
        for shard in sorted(per_shard):
            applied += self.db.apply_shard_epoch(
                shard, per_shard[shard], epoch=epoch
            )
        return applied

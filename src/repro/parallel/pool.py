"""A persistent multiprocessing worker pool with visible serialization costs.

The execution phase needs real cores, so this is the one corner of the
repository that leaves the single-threaded simulation world: plain OS
processes connected by pipes.  Design constraints:

- **persistent** — workers live across epochs (and across benchmark
  cells), so fork/spawn cost is paid once, not per dispatch;
- **batched messages** — each dispatch sends one pickled message per
  worker and reads one reply, so pipe buffers can never deadlock on
  interleaved traffic;
- **accounted** — every byte pickled in either direction lands in
  :class:`PoolStats`; serialization is the tax queue-oriented execution
  pays for shared-nothing parallelism and the perf bench reports it
  instead of hiding it;
- **deterministic** — task → worker assignment is a pure function of the
  task index (round-robin) or the shard id, never of scheduling noise.

The pool prefers the ``fork`` start method (cheap, inherits the procedure
registry and ``sys.modules``); where only ``spawn`` exists the executor
ships module names for the worker to import.  Everything here is plain
wall-clock-free Python, so the no-wallclock determinism guard holds.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

#: per-shard stores living in a worker process: shard -> {(table, key): row}
_SLICES: dict[int, dict] = {}


class WorkerError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""


@dataclass
class PoolStats:
    workers: int = 0
    messages: int = 0
    tasks: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


def _handle(message: tuple) -> Any:
    """Execute one parent → worker message; runs inside the worker."""
    kind = message[0]
    if kind == "calls":
        results = []
        for fn, args, kwargs in message[1]:
            results.append(fn(*args, **(kwargs or {})))
        return results
    if kind == "exec":
        from repro.parallel.procs import execute_entries

        replies = []
        for shard, patch, entries in message[1]:
            store = _SLICES.setdefault(shard, {})
            for ref, row in patch:
                if row is None:
                    store.pop(ref, None)
                else:
                    store[ref] = row
            replies.append((shard, execute_entries(store, entries)))
        return replies
    if kind == "snapshot":
        for shard, slice_ in message[1].items():
            _SLICES[shard] = dict(slice_)
        return len(message[1])
    if kind == "import":
        import importlib

        for name in message[1]:
            importlib.import_module(name)
        return list(message[1])
    raise ValueError(f"unknown pool message kind {kind!r}")


def _worker_main(conn) -> None:
    while True:
        try:
            data = conn.recv_bytes()
        except EOFError:
            return
        message = pickle.loads(data)
        if message[0] == "exit":
            conn.close()
            return
        try:
            reply: tuple = ("ok", _handle(message))
        except BaseException as exc:  # noqa: BLE001 - marshalled to parent
            reply = ("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
        conn.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))


def preferred_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerPool:
    """N worker processes driven over pipes; see the module docstring."""

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        method = start_method or preferred_start_method()
        context = multiprocessing.get_context(method)
        self.start_method = method
        self.stats = PoolStats(workers=workers)
        self._conns = []
        self._procs = []
        try:
            for index in range(workers):
                parent, child = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(child,),
                    name=f"repro-parallel-{index}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    @property
    def workers(self) -> int:
        return len(self._conns)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- messaging ----------------------------------------------------------

    def _send(self, worker: int, message: tuple) -> None:
        data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.messages += 1
        self.stats.bytes_sent += len(data)
        self._conns[worker].send_bytes(data)

    def _recv(self, worker: int) -> Any:
        data = self._conns[worker].recv_bytes()
        self.stats.bytes_received += len(data)
        status, payload = pickle.loads(data)
        if status == "err":
            raise WorkerError(f"worker {worker} failed:\n{payload}")
        return payload

    def request(self, assignments: dict[int, tuple]) -> dict[int, Any]:
        """Send one message per assigned worker; collect every reply.

        Sends complete before any receive (workers consume their pipe
        eagerly), so a slow worker never blocks another's dispatch.
        """
        for worker in assignments:
            self._send(worker, assignments[worker])
        return {worker: self._recv(worker) for worker in assignments}

    def broadcast(self, message: tuple) -> list[Any]:
        return list(
            self.request({w: message for w in range(self.workers)}).values()
        )

    # -- high-level helpers --------------------------------------------------

    def import_modules(self, modules: Sequence[str]) -> None:
        """Make procedure-registering modules importable in every worker."""
        if modules:
            self.broadcast(("import", tuple(modules)))

    def map_calls(
        self, calls: Sequence[tuple[Callable, tuple]], kwargs: Optional[dict] = None
    ) -> list[Any]:
        """Run ``fn(*args)`` tasks across the pool; results in task order.

        Assignment is deterministic round-robin (task ``i`` → worker
        ``i % workers``).  Functions must be picklable by reference
        (module-level); results must be picklable values.
        """
        buckets: dict[int, list[int]] = {}
        for index in range(len(calls)):
            buckets.setdefault(index % self.workers, []).append(index)
        assignments = {
            worker: (
                "calls",
                [(calls[i][0], calls[i][1], kwargs) for i in indexes],
            )
            for worker, indexes in buckets.items()
        }
        self.stats.tasks += len(calls)
        replies = self.request(assignments)
        results: list[Any] = [None] * len(calls)
        for worker, indexes in buckets.items():
            for position, index in enumerate(indexes):
                results[index] = replies[worker][position]
        return results

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        for conn in self._conns:
            try:
                conn.send_bytes(pickle.dumps(("exit",)))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns = []
        self._procs = []

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass

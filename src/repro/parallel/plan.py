"""The planning phase: cut epoch → per-shard queues → rendezvous rounds.

QueCC's split ("A Queue-oriented Transaction Processing Paradigm", see
PAPERS.md) separates *planning* from *execution*: a planner thread walks
the epoch in the sequencer's total order and distributes transactions into
per-shard priority queues; executors then drain the queues in parallel
with zero shared-lock coordination, because the plan already encodes every
conflict.

Here the total order is the seeded Calvin-style order of
:class:`repro.transactions.sequencer.Sequencer` (TID order within an
epoch), key → shard routing goes through the cluster layer's platform-
stable hash (:func:`repro.cluster.stable_hash`, the same formula the
placement directory's rings use), and cross-shard transactions become
**multi-queue entries with deterministic rendezvous points**: the planner
slices the epoch into *rounds* — independent per-shard queue segments
followed by the cross-shard transactions that must observe all of them —
so the executor can run each round's queues on real cores and settle the
rendezvous transactions at the barrier, in TID order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.cluster import stable_hash
from repro.transactions.sequencer import (
    SequencedTxn,
    partition_conflicts,
    partition_queues,
)


@dataclass(frozen=True)
class TxnSpec:
    """A declarative transaction: procedure + args + declared key set.

    ``keys`` lists every ``(table, key)`` the procedure may touch; the
    planner derives queue membership from it and the execution context
    enforces it.  Everything must be picklable — specs cross process
    boundaries.
    """

    proc: str
    args: tuple = ()
    keys: tuple = ()


@dataclass(frozen=True)
class PlannedTxn:
    """A transaction with its plan-time routing decision attached."""

    tid: int
    spec: TxnSpec
    #: sorted shard ids owning at least one declared key
    shards: tuple

    @property
    def cross_shard(self) -> bool:
        return len(self.shards) != 1


@dataclass
class Round:
    """One barrier-free slice of an epoch.

    ``local`` queues contain only single-shard transactions and may run
    concurrently (their key sets are disjoint across shards by
    construction); ``rendezvous`` holds the cross-shard transactions that
    execute — serially, in TID order — once every local queue of the round
    has drained.
    """

    local: dict[int, list[PlannedTxn]] = field(default_factory=dict)
    rendezvous: list[PlannedTxn] = field(default_factory=list)

    def txn_count(self) -> int:
        return sum(len(q) for q in self.local.values()) + len(self.rendezvous)


@dataclass
class PlanStats:
    txns: int = 0
    single_shard: int = 0
    cross_shard: int = 0
    rounds: int = 0
    #: conflict-free waves of the whole epoch (partition_conflicts): the
    #: theoretical serialization depth the queues must respect
    waves: int = 0
    #: largest per-shard queue — the critical path of the execution phase
    max_queue: int = 0


@dataclass
class EpochPlan:
    """The planner's output: queues for the satellite view, rounds for the
    executor, and the stats the planning-phase bench reports."""

    epoch: int
    num_shards: int
    #: shard -> full queue (cross-shard txns appear in every owning queue)
    queues: dict[int, list[PlannedTxn]]
    rounds: list[Round]
    stats: PlanStats

    def txn_count(self) -> int:
        return self.stats.txns


def plan_epoch(
    batch: list[SequencedTxn],
    *,
    num_shards: int,
    shard_of: Optional[Callable[[Hashable], int]] = None,
    epoch: Optional[int] = None,
) -> EpochPlan:
    """Partition one sequencer epoch into per-shard queues and rounds.

    ``batch`` is the output of :meth:`Sequencer.cut_epoch` whose payloads
    are :class:`TxnSpec`s.  ``shard_of`` maps a *row key* to a shard id and
    defaults to the cluster layer's stable hash — pass
    ``sharded_db.router.shard_of`` to plan against a live placement.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    route = shard_of or (lambda key: stable_hash(key) % num_shards)

    def keys_of(spec: TxnSpec) -> set:
        return set(spec.keys)

    queue_view = partition_queues(
        batch, keys_of, lambda ref: route(ref[1])
    )

    planned: dict[int, PlannedTxn] = {}
    stats = PlanStats(txns=len(batch))
    rounds: list[Round] = []
    current = Round()
    for txn in batch:  # TID order
        spec = txn.payload
        shards: list[int] = []
        for table, key in spec.keys:
            shard = route(key)
            if shard not in shards:
                shards.append(shard)
        shards.sort()
        entry = PlannedTxn(tid=txn.tid, spec=spec, shards=tuple(shards))
        planned[txn.tid] = entry
        if len(entry.shards) == 1:
            stats.single_shard += 1
            # A local txn ordered after a rendezvous txn belongs to the
            # next round: within a round, locals precede the barrier.
            if current.rendezvous:
                rounds.append(current)
                current = Round()
            current.local.setdefault(entry.shards[0], []).append(entry)
        else:
            stats.cross_shard += 1
            current.rendezvous.append(entry)
    if current.local or current.rendezvous:
        rounds.append(current)

    queues = {
        shard: [planned[txn.tid] for txn in queue]
        for shard, queue in queue_view.items()
    }
    stats.rounds = len(rounds)
    stats.max_queue = max((len(q) for q in queues.values()), default=0)
    stats.waves = len(partition_conflicts(batch, keys_of))
    return EpochPlan(
        epoch=batch[0].epoch if epoch is None and batch else (epoch or 0),
        num_shards=num_shards,
        queues=queues,
        rounds=rounds,
        stats=stats,
    )

"""The workload driver: arrivals → operations → metrics + ledger + trace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.core.metrics import LatencyRecorder, MetricsCollector
from repro.obs import Tracer, chrome_trace_json, critical_path_report
from repro.sim import Environment, Interrupted
from repro.transactions.anomalies import AnomalyReport, EffectLedger, Invariant

#: An executor runs one abstract operation end to end; raising means the
#: client observed a failure (the op is then *not* acknowledged).
Executor = Callable[[Any], Generator]


def run_cells(
    cells: Iterable[tuple[Callable, tuple]],
    workers: int = 0,
    pool: Any = None,
) -> list:
    """Run independent benchmark cells, optionally on real cores.

    Each cell is ``(fn, args)`` with ``fn`` a module-level callable that
    builds its own :class:`~repro.sim.Environment` and returns a picklable
    result (a :class:`RunResult` qualifies).  Cells share no state, and
    each is a pure function of its seed, so where they run cannot change
    what they return — ``workers=0`` (the single-process reference) and
    ``workers=N`` (a :class:`repro.parallel.WorkerPool` fan-out) must be
    byte-identical, which the golden-equivalence suite asserts against the
    B1/C1/C10 claim suites.  Results always return in cell order.

    Pass ``pool`` to reuse an existing warm pool (the perf bench amortizes
    worker start-up across repetitions this way); it is left open.
    """
    cells = list(cells)
    if workers <= 0 or len(cells) <= 1:
        return [fn(*args) for fn, args in cells]
    from repro.parallel import WorkerPool

    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(min(workers, len(cells)))
    try:
        return pool.map_calls([(fn, args) for fn, args in cells])
    finally:
        if own_pool:
            pool.close()


def _kind_of(op: Any) -> str:
    return getattr(op, "kind", type(op).__name__)


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    label: str
    metrics: MetricsCollector
    anomalies: AnomalyReport
    wall_ms: float
    extra: dict = field(default_factory=dict)
    #: The run's :class:`~repro.obs.Tracer` when tracing was enabled.
    trace: Optional[Tracer] = None
    _pooled: Optional[LatencyRecorder] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def throughput(self) -> float:
        return self.metrics.throughput()

    def p(self, q: float) -> float:
        """Latency percentile pooled over every operation type.

        Samples are pooled once (without touching the collector's state)
        and the pooled recorder caches its sort, so repeated ``p(50)`` /
        ``p(99)`` queries cost one sort total.
        """
        if self._pooled is None:
            pooled = LatencyRecorder()
            for recorder in self.metrics.recorders().values():
                pooled.extend(recorder.samples)
            self._pooled = pooled
        if not self._pooled.count:
            return 0.0
        return self._pooled.p(q)

    @property
    def completed(self) -> int:
        return self.metrics.completed()

    @property
    def failed(self) -> int:
        return self.metrics.failed()

    # -- trace artifacts ----------------------------------------------------

    def trace_json(self) -> str:
        """Chrome ``trace_event`` JSON for this run (Perfetto-loadable)."""
        if self.trace is None:
            raise ValueError(
                f"run {self.label!r} was not traced; pass tracer=Tracer() to "
                "Environment or call repro.obs.set_default_tracing(True)"
            )
        return chrome_trace_json(self.trace)

    def critical_path(self, top: int = 1) -> str:
        """Text critical-path decomposition of the slowest operation(s)."""
        if self.trace is None:
            raise ValueError(f"run {self.label!r} was not traced")
        return critical_path_report(self.trace, top=top)


class WorkloadDriver:
    """Runs an operation list through an executor under an arrival model."""

    def __init__(self, env: Environment, label: str = "run") -> None:
        self.env = env
        self.label = label
        self.metrics = MetricsCollector()
        self.ledger = EffectLedger()

    def issue_fn(self, ops: list[Any], execute: Executor) -> Callable[[int], Generator]:
        """Build the per-operation callback for an arrival process."""

        def issue(op_index: int) -> Generator:
            op = ops[op_index]
            kind = _kind_of(op)
            tracer = self.env.tracer
            if not tracer.enabled:
                # Untraced fast path: no span bookkeeping per operation.
                started = self.env.now
                try:
                    yield from execute(op)
                except Interrupted:
                    raise
                except Exception:  # noqa: BLE001 - a failure the client observed
                    self.metrics.record_failure(kind)
                    raise
                self.metrics.record_success(kind, self.env.now - started)
                op_id = getattr(op, "op_id", None)
                if op_id is not None:
                    self.ledger.acknowledge(op_id)
                return
            # Each client-visible operation is a root span: the unit the
            # critical-path report decomposes.
            span = tracer.begin(f"op:{kind}", parent=None, index=op_index)
            started = self.env.now
            try:
                yield from execute(op)
            except Interrupted:
                tracer.end(span, outcome="interrupted")
                raise
            except Exception:  # noqa: BLE001 - a failure the client observed
                self.metrics.record_failure(kind)
                tracer.end(span, outcome="failed")
                raise
            self.metrics.record_success(kind, self.env.now - started)
            tracer.end(span, outcome="ok")
            op_id = getattr(op, "op_id", None)
            if op_id is not None:
                self.ledger.acknowledge(op_id)

        return issue

    def run(
        self,
        ops: Iterable[Any],
        execute: Executor,
        arrival,
        invariants: Iterable[Invariant] = (),
        state: Any = None,
        state_fn: Optional[Callable[[], Any]] = None,
        extra: Optional[dict] = None,
    ) -> Generator:
        """Drive the whole run; returns a :class:`RunResult`.

        ``state_fn`` (if given) is called after the run to produce the
        snapshot the invariants check — use it when final state must be
        read after quiescence.
        """
        ops = list(ops)
        started = self.env.now
        self.metrics.start(started)
        yield from arrival.drive(self.env, self.issue_fn(ops, execute))
        self.metrics.stop(self.env.now)
        final_state = state_fn() if state_fn is not None else state
        report = self.ledger.reconcile(invariants=invariants, state=final_state)
        tracer = self.env.tracer
        return RunResult(
            label=self.label,
            metrics=self.metrics,
            anomalies=report,
            wall_ms=self.env.now - started,
            extra=dict(extra or {}),
            trace=tracer if tracer.enabled else None,
        )

"""The workload driver: arrivals → operations → metrics + ledger."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.core.metrics import MetricsCollector
from repro.sim import Environment, Interrupted
from repro.transactions.anomalies import AnomalyReport, EffectLedger, Invariant

#: An executor runs one abstract operation end to end; raising means the
#: client observed a failure (the op is then *not* acknowledged).
Executor = Callable[[Any], Generator]


def _kind_of(op: Any) -> str:
    return getattr(op, "kind", type(op).__name__)


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    label: str
    metrics: MetricsCollector
    anomalies: AnomalyReport
    wall_ms: float
    extra: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.metrics.throughput()

    def p(self, q: float) -> float:
        """Latency percentile pooled over every operation type."""
        samples: list[float] = []
        for row in self.metrics.summary():
            samples.extend(self.metrics.latency(row.name).samples)
        if not samples:
            return 0.0
        from repro.core.metrics import percentile

        return percentile(samples, q)

    @property
    def completed(self) -> int:
        return self.metrics.completed()

    @property
    def failed(self) -> int:
        return self.metrics.failed()


class WorkloadDriver:
    """Runs an operation list through an executor under an arrival model."""

    def __init__(self, env: Environment, label: str = "run") -> None:
        self.env = env
        self.label = label
        self.metrics = MetricsCollector()
        self.ledger = EffectLedger()

    def issue_fn(self, ops: list[Any], execute: Executor) -> Callable[[int], Generator]:
        """Build the per-operation callback for an arrival process."""

        def issue(op_index: int) -> Generator:
            op = ops[op_index]
            kind = _kind_of(op)
            started = self.env.now
            try:
                yield from execute(op)
            except Interrupted:
                raise
            except Exception:  # noqa: BLE001 - a failure the client observed
                self.metrics.record_failure(kind)
                raise
            self.metrics.record_success(kind, self.env.now - started)
            op_id = getattr(op, "op_id", None)
            if op_id is not None:
                self.ledger.acknowledge(op_id)

        return issue

    def run(
        self,
        ops: Iterable[Any],
        execute: Executor,
        arrival,
        invariants: Iterable[Invariant] = (),
        state: Any = None,
        state_fn: Optional[Callable[[], Any]] = None,
        extra: Optional[dict] = None,
    ) -> Generator:
        """Drive the whole run; returns a :class:`RunResult`.

        ``state_fn`` (if given) is called after the run to produce the
        snapshot the invariants check — use it when final state must be
        read after quiescence.
        """
        ops = list(ops)
        started = self.env.now
        self.metrics.start(started)
        yield from arrival.drive(self.env, self.issue_fn(ops, execute))
        self.metrics.stop(self.env.now)
        final_state = state_fn() if state_fn is not None else state
        report = self.ledger.reconcile(invariants=invariants, state=final_state)
        return RunResult(
            label=self.label,
            metrics=self.metrics,
            anomalies=report,
            wall_ms=self.env.now - started,
            extra=dict(extra or {}),
        )

"""Benchmark report rendering: the tables the benches print."""

from __future__ import annotations

from typing import Iterable

from repro.core.metrics import render_table
from repro.harness.driver import RunResult


def format_rows(headers: list[str], rows: list[list[object]]) -> str:
    """Render arbitrary rows (stringified) under headers."""
    return render_table(headers, [[str(cell) for cell in row] for row in rows])


def format_results(results: Iterable[RunResult], title: str = "") -> str:
    """The standard benchmark table: perf columns + the correctness column."""
    rows = []
    for result in results:
        rows.append(
            [
                result.label,
                f"{result.completed}",
                f"{result.failed}",
                f"{result.throughput:.1f}",
                f"{result.p(50):.2f}",
                f"{result.p(99):.2f}",
                result.anomalies.summary(),
            ]
        )
    table = render_table(
        ["configuration", "ok", "fail", "ops/s", "p50 ms", "p99 ms", "anomalies"],
        rows,
    )
    if title:
        return f"\n=== {title} ===\n{table}"
    return table

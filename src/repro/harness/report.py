"""Benchmark report rendering: the tables the benches print, plus traces."""

from __future__ import annotations

import os
from typing import Iterable

from repro.core.metrics import render_table
from repro.harness.driver import RunResult
from repro.obs import Tracer, chrome_trace_json, critical_path_report


def format_rows(headers: list[str], rows: list[list[object]]) -> str:
    """Render arbitrary rows (stringified) under headers."""
    return render_table(headers, [[str(cell) for cell in row] for row in rows])


def format_results(results: Iterable[RunResult], title: str = "") -> str:
    """The standard benchmark table: perf columns + the correctness column."""
    rows = []
    for result in results:
        rows.append(
            [
                result.label,
                f"{result.completed}",
                f"{result.failed}",
                f"{result.throughput:.1f}",
                f"{result.p(50):.2f}",
                f"{result.p(99):.2f}",
                result.anomalies.summary(),
            ]
        )
    table = render_table(
        ["configuration", "ok", "fail", "ops/s", "p50 ms", "p99 ms", "anomalies"],
        rows,
    )
    if title:
        return f"\n=== {title} ===\n{table}"
    return table


def save_trace(
    trace: Tracer,
    directory: str,
    label: str,
    critical_top: int = 3,
) -> tuple[str, str]:
    """Write one tracer's artifacts; returns (chrome_path, critpath_path).

    ``<label>.trace.json`` loads in ``chrome://tracing`` / Perfetto;
    ``<label>.critpath.txt`` is the text critical-path decomposition of the
    slowest operations.
    """
    os.makedirs(directory, exist_ok=True)
    chrome_path = os.path.join(directory, f"{label}.trace.json")
    with open(chrome_path, "w") as handle:
        handle.write(chrome_trace_json(trace))
    crit_path = os.path.join(directory, f"{label}.critpath.txt")
    with open(crit_path, "w") as handle:
        handle.write(critical_path_report(trace, top=critical_top) + "\n")
    return chrome_path, crit_path


def save_result_traces(
    results: Iterable[RunResult], directory: str
) -> list[tuple[str, str]]:
    """Persist trace artifacts for every traced result (untraced skipped)."""
    written = []
    for result in results:
        if result.trace is None:
            continue
        label = result.label.replace("/", "_").replace(" ", "_")
        written.append(save_trace(result.trace, directory, label))
    return written

"""Experiment harness: drive workloads, measure, reconcile, report.

Ties together the pieces every benchmark needs: an arrival process
(:mod:`repro.workloads.arrivals`), an adapter that executes abstract
operations on a runtime, a :class:`~repro.core.metrics.MetricsCollector`,
and an :class:`~repro.transactions.anomalies.EffectLedger` — so each bench
prints both a performance row *and* a correctness row, per the paper's
§5.3 critique of performance-only benchmarks.
"""

from repro.harness.driver import RunResult, WorkloadDriver, run_cells
from repro.harness.report import (
    format_results,
    format_rows,
    save_result_traces,
    save_trace,
)

__all__ = [
    "RunResult",
    "WorkloadDriver",
    "format_results",
    "format_rows",
    "run_cells",
    "save_result_traces",
    "save_trace",
]

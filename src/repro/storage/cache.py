"""A look-aside cache (Redis/Hazelcast stand-in) with LRU + TTL eviction.

The paper notes (§3.4) that low-latency microservices embed caches to speed
up state retrieval, "blurring the line between embedded and external state
management" — and paying for it with staleness, which the cache exposes via
hit/stale counters that the consistency benchmarks read.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache:
    """Bounded mapping with least-recently-used eviction and optional TTL.

    ``clock`` supplies the current time (pass ``lambda: env.now`` to tie
    TTLs to virtual time); entries older than ``ttl`` are treated as misses.
    """

    def __init__(
        self,
        capacity: int,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock or (lambda: 0.0)
        self._entries: OrderedDict[Any, tuple[Any, float]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the cached value; counts a miss if absent or expired."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return default
        value, written_at = entry
        if self.ttl is not None and self._clock() - written_at > self.ttl:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert or refresh a key, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (value, self._clock())
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: Any) -> bool:
        """Drop a key (cache-invalidation path); returns whether present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

"""Storage substrates: versioned KV, LSM-tree, WAL, object store, cache.

These are the state backends the paper's runtimes choose between (§3.3):
*embedded* state (the LSM store, standing in for RocksDB), *external* state
(the KV/database servers), *disaggregated* checkpoints (the object store,
standing in for S3), and look-aside *caches* (standing in for Redis).
"""

from repro.storage.cache import LruCache
from repro.storage.kv import KeyValueStore, Versioned
from repro.storage.lsm import LsmStore
from repro.storage.object_store import ObjectStore, ObjectStoreServer
from repro.storage.tiered import TieredStore
from repro.storage.wal import LogRecord, WriteAheadLog

__all__ = [
    "KeyValueStore",
    "LogRecord",
    "LruCache",
    "LsmStore",
    "ObjectStore",
    "ObjectStoreServer",
    "TieredStore",
    "Versioned",
    "WriteAheadLog",
]

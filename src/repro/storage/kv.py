"""A versioned in-memory key-value store with CAS and snapshots.

This is the simple *external state* building block: FaaS shared state,
actor persistence providers, and idempotency stores are built on it.  Every
write bumps a per-key version, enabling optimistic concurrency (compare-and-
set) — the concurrency primitive of Cloudburst-style shared-state FaaS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class Versioned:
    """A value paired with its monotonically increasing version."""

    value: Any
    version: int


class CasConflict(Exception):
    """Raised when a compare-and-set loses the race."""

    def __init__(self, key: Any, expected: int, actual: int) -> None:
        super().__init__(f"cas on {key!r}: expected v{expected}, found v{actual}")
        self.key = key
        self.expected = expected
        self.actual = actual


class KeyValueStore:
    """Dictionary semantics plus versions, CAS, and scans.

    Deletion is a real write: it bumps the version and leaves a tombstone
    version counter so a CAS against a deleted key fails cleanly.
    """

    def __init__(self) -> None:
        self._data: dict[Any, Any] = {}
        self._versions: dict[Any, int] = {}
        self.write_count = 0
        self.read_count = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the current value, or ``default``."""
        self.read_count += 1
        return self._data.get(key, default)

    def get_versioned(self, key: Any) -> Optional[Versioned]:
        """Return the value with its version, or ``None`` if absent."""
        self.read_count += 1
        if key not in self._data:
            return None
        return Versioned(self._data[key], self._versions[key])

    def version(self, key: Any) -> int:
        """Current version of ``key`` (0 if never written)."""
        return self._versions.get(key, 0)

    def put(self, key: Any, value: Any) -> int:
        """Write unconditionally; returns the new version."""
        self.write_count += 1
        new_version = self._versions.get(key, 0) + 1
        self._data[key] = value
        self._versions[key] = new_version
        return new_version

    def compare_and_set(self, key: Any, value: Any, expected_version: int) -> int:
        """Write only if the key is still at ``expected_version``.

        Use ``expected_version=0`` for insert-if-absent.  Raises
        :class:`CasConflict` on mismatch; returns the new version.
        """
        actual = self._versions.get(key, 0)
        if actual != expected_version:
            raise CasConflict(key, expected_version, actual)
        return self.put(key, value)

    def update(self, key: Any, fn: Callable[[Any], Any], default: Any = None) -> Any:
        """Read-modify-write in one step; returns the new value."""
        new_value = fn(self._data.get(key, default))
        self.put(key, new_value)
        return new_value

    def delete(self, key: Any) -> bool:
        """Remove the key; the version counter survives as a tombstone."""
        if key not in self._data:
            return False
        self.write_count += 1
        del self._data[key]
        self._versions[key] = self._versions.get(key, 0) + 1
        return True

    def keys(self) -> Iterator[Any]:
        return iter(list(self._data.keys()))

    def items(self) -> Iterator[tuple[Any, Any]]:
        return iter(list(self._data.items()))

    def scan(self, prefix: str) -> list[tuple[Any, Any]]:
        """All ``(key, value)`` pairs whose string key starts with ``prefix``."""
        self.read_count += 1
        return sorted(
            (k, v)
            for k, v in self._data.items()
            if isinstance(k, str) and k.startswith(prefix)
        )

    def snapshot(self) -> dict[Any, Any]:
        """A shallow copy of the current contents (checkpointing)."""
        return dict(self._data)

    def restore(self, snapshot: dict[Any, Any]) -> None:
        """Replace contents with a snapshot (recovery)."""
        self._data = dict(snapshot)
        for key in self._data:
            self._versions[key] = self._versions.get(key, 0) + 1

    def clear(self) -> None:
        self._data.clear()
        self._versions.clear()

"""A cloud object store (S3-like): buckets, high latency, high durability.

The *disaggregated* storage tier of the paper (§3.3, §5.2): dataflow
checkpoints, actor persistence, and FaaS state all land here.  The pure
:class:`ObjectStore` holds the bytes; :class:`ObjectStoreServer` runs it on
a node and charges realistic request latency plus size-proportional
transfer time, which is what makes embedded-vs-disaggregated trade-offs
measurable.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.net.latency import Latency, Sampler
from repro.net.node import Node
from repro.sim import Environment


class NoSuchKey(KeyError):
    """Requested object does not exist."""


class ObjectStore:
    """Durable flat namespace of ``(bucket, key) -> object``.

    Objects survive any node crash: durability is the defining property of
    the disaggregated tier.
    """

    def __init__(self) -> None:
        self._objects: dict[tuple[str, str], Any] = {}
        self.put_count = 0
        self.get_count = 0
        self.bytes_written = 0

    def put(self, bucket: str, key: str, obj: Any, size: int = 1) -> None:
        """Store an object (last-writer-wins, like S3)."""
        self._objects[(bucket, key)] = obj
        self.put_count += 1
        self.bytes_written += size

    def get(self, bucket: str, key: str) -> Any:
        """Fetch an object; raises :class:`NoSuchKey` if absent."""
        self.get_count += 1
        try:
            return self._objects[(bucket, key)]
        except KeyError:
            raise NoSuchKey(f"{bucket}/{key}") from None

    def exists(self, bucket: str, key: str) -> bool:
        return (bucket, key) in self._objects

    def delete(self, bucket: str, key: str) -> bool:
        return self._objects.pop((bucket, key), None) is not None

    def list(self, bucket: str, prefix: str = "") -> list[str]:
        """Sorted keys in ``bucket`` starting with ``prefix``."""
        return sorted(
            k for (b, k) in self._objects if b == bucket and k.startswith(prefix)
        )


class ObjectStoreServer:
    """Latency-charging facade over an :class:`ObjectStore`.

    All methods are generators intended for ``yield from`` inside simulation
    processes; each charges a sampled request latency plus a per-unit-size
    transfer cost.
    """

    def __init__(
        self,
        env: Environment,
        store: Optional[ObjectStore] = None,
        latency: Optional[Sampler] = None,
        transfer_ms_per_unit: float = 0.01,
    ) -> None:
        self.env = env
        self.store = store if store is not None else ObjectStore()
        self._latency = latency or Latency.object_store()
        self._transfer = transfer_ms_per_unit
        self._rng = env.stream("object-store")

    def put(self, bucket: str, key: str, obj: Any, size: int = 1) -> Generator:
        """Store an object, charging request + transfer latency."""
        yield self.env.timeout(self._latency(self._rng) + self._transfer * size)
        self.store.put(bucket, key, obj, size=size)

    def get(self, bucket: str, key: str, size: int = 1) -> Generator:
        """Fetch an object, charging request + transfer latency."""
        yield self.env.timeout(self._latency(self._rng) + self._transfer * size)
        return self.store.get(bucket, key)

    def exists(self, bucket: str, key: str) -> Generator:
        yield self.env.timeout(self._latency(self._rng))
        return self.store.exists(bucket, key)

    def list(self, bucket: str, prefix: str = "") -> Generator:
        yield self.env.timeout(self._latency(self._rng))
        return self.store.list(bucket, prefix)

"""A write-ahead log with LSNs, durability horizon, and truncation.

Used by the database engine (ARIES-lite recovery), the message broker
(durable partitions), and the transactional outbox.  The log survives node
crashes by construction — it models a durable device, so a crash loses only
records not yet flushed (``fsync`` moves the durability horizon).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional


class LogRecord:
    """A single durable log entry.

    A plain ``__slots__`` class rather than a frozen dataclass: the engine
    appends one record per write plus one per commit decision, and frozen-
    dataclass construction (``object.__setattr__`` per field) is measurable
    at that rate.  Records are immutable by convention.
    """

    __slots__ = ("lsn", "kind", "payload")

    def __init__(self, lsn: int, kind: str, payload: Any) -> None:
        self.lsn = lsn
        self.kind = kind
        self.payload = payload

    def __repr__(self) -> str:
        return f"LogRecord(lsn={self.lsn!r}, kind={self.kind!r}, payload={self.payload!r})"

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, LogRecord):
            return NotImplemented
        return (self.lsn, self.kind, self.payload) == (
            other.lsn, other.kind, other.payload
        )

    def __hash__(self) -> int:
        return hash((self.lsn, self.kind))


class WriteAheadLog:
    """Append-only log with explicit flush (fsync) semantics.

    ``append`` buffers a record; ``flush`` makes everything appended so far
    durable.  ``crash`` discards the unflushed tail — exactly the window a
    real machine loses on power failure.
    """

    def __init__(self, name: str = "wal") -> None:
        self.name = name
        self._records: list[LogRecord] = []
        self._flushed_lsn = 0
        self._next_lsn = 1
        self._truncated_before = 1
        self.flush_count = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 if empty)."""
        return self._next_lsn - 1

    @property
    def flushed_lsn(self) -> int:
        """Highest LSN guaranteed durable."""
        return self._flushed_lsn

    def append(self, kind: str, payload: Any) -> int:
        """Buffer a record; returns its LSN.  Not durable until flush."""
        record = LogRecord(self._next_lsn, kind, payload)
        self._records.append(record)
        self._next_lsn += 1
        return record.lsn

    def flush(self) -> int:
        """Make all appended records durable; returns the flushed LSN."""
        self._flushed_lsn = self.last_lsn
        self.flush_count += 1
        return self._flushed_lsn

    def crash(self) -> None:
        """Discard the unflushed tail, as a power failure would."""
        self._records = [r for r in self._records if r.lsn <= self._flushed_lsn]
        self._next_lsn = self._flushed_lsn + 1

    def records(self, from_lsn: int = 0) -> Iterator[LogRecord]:
        """Iterate durable *and* buffered records with ``lsn >= from_lsn``."""
        for record in self._records:
            if record.lsn >= from_lsn:
                yield record

    def durable_records(self, from_lsn: int = 0) -> Iterator[LogRecord]:
        """Iterate only records at or below the durability horizon."""
        for record in self._records:
            if from_lsn <= record.lsn <= self._flushed_lsn:
                yield record

    def read(self, lsn: int) -> Optional[LogRecord]:
        """Random access by LSN (None if truncated or absent)."""
        if not self._records or lsn < self._records[0].lsn or lsn > self.last_lsn:
            return None
        return self._records[lsn - self._records[0].lsn]

    def truncate(self, before_lsn: int) -> int:
        """Drop records with ``lsn < before_lsn`` (checkpoint GC); returns count."""
        kept = [r for r in self._records if r.lsn >= before_lsn]
        dropped = len(self._records) - len(kept)
        self._records = kept
        self._truncated_before = max(self._truncated_before, before_lsn)
        return dropped

"""Tiered state: a bounded hot tier spilling to disaggregated storage.

Paper §3.3: "whenever the operator's state exceeds the local storage
capacity, the state must be checkpointed and the associated operator ...
migrated"; "recently, there has been increasing interest in using tiered
storage to battle scenarios where operators' states exceed local node
storage" (Flink 2.0 disaggregated state, RisingWave).

:class:`TieredStore` keeps the hottest ``hot_capacity`` entries in local
memory (free to access) and spills the least-recently-used remainder to a
cloud object store (a charged round trip per cold access, with promotion
back to hot on read).  The working-set-vs-capacity ratio therefore decides
the average access cost — measurable, and measured in its tests.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generator, Hashable, Optional

from repro.storage.object_store import NoSuchKey, ObjectStoreServer


@dataclass
class TieredStats:
    hot_hits: int = 0
    cold_hits: int = 0
    misses: int = 0
    spills: int = 0
    promotions: int = 0

    @property
    def cold_fraction(self) -> float:
        total = self.hot_hits + self.cold_hits
        return self.cold_hits / total if total else 0.0


class TieredStore:
    """Hot in-memory tier over a cold object-store tier.

    All accessors are generators: hot accesses resolve without advancing
    virtual time, cold accesses charge the object store's latency.
    Eviction is write-back (the spill itself pays one store write).
    """

    def __init__(
        self,
        object_store: ObjectStoreServer,
        hot_capacity: int,
        bucket: str = "tiered-state",
        name: str = "tiered",
    ) -> None:
        if hot_capacity <= 0:
            raise ValueError("hot_capacity must be positive")
        self.cold = object_store
        self.hot_capacity = hot_capacity
        self.bucket = bucket
        self.name = name
        self._hot: OrderedDict[Hashable, Any] = OrderedDict()
        self._cold_keys: set[Hashable] = set()
        self.stats = TieredStats()

    def __len__(self) -> int:
        return len(self._hot) + len(self._cold_keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._hot or key in self._cold_keys

    def _cold_key(self, key: Hashable) -> str:
        return f"{self.name}/{key!r}"

    # -- access ------------------------------------------------------------------

    def put(self, key: Hashable, value: Any) -> Generator:
        """Write into the hot tier, spilling LRU entries if over capacity."""
        if key in self._hot:
            self._hot.move_to_end(key)
        self._hot[key] = value
        self._cold_keys.discard(key)
        while len(self._hot) > self.hot_capacity:
            victim, victim_value = self._hot.popitem(last=False)
            yield from self.cold.put(
                self.bucket, self._cold_key(victim), victim_value
            )
            self._cold_keys.add(victim)
            self.stats.spills += 1

    def get(self, key: Hashable, default: Any = None) -> Generator:
        """Read; cold entries pay a round trip and promote to hot."""
        if key in self._hot:
            self._hot.move_to_end(key)
            self.stats.hot_hits += 1
            return self._hot[key]
        if key in self._cold_keys:
            try:
                value = yield from self.cold.get(self.bucket, self._cold_key(key))
            except NoSuchKey:  # pragma: no cover - bookkeeping invariant
                self._cold_keys.discard(key)
                self.stats.misses += 1
                return default
            self.stats.cold_hits += 1
            self.stats.promotions += 1
            self._cold_keys.discard(key)
            yield from self.put(key, value)  # may spill another entry
            return value
        self.stats.misses += 1
        return default

    def delete(self, key: Hashable) -> Generator:
        """Remove from whichever tier holds the key."""
        if key in self._hot:
            del self._hot[key]
            return True
        if key in self._cold_keys:
            yield from self.cold.put(self.bucket, self._cold_key(key), None)
            self._cold_keys.discard(key)
            self.cold.store.delete(self.bucket, self._cold_key(key))
            return True
        return False

    # -- introspection ----------------------------------------------------------------

    @property
    def hot_keys(self) -> list[Hashable]:
        return list(self._hot.keys())

    @property
    def cold_count(self) -> int:
        return len(self._cold_keys)

    def snapshot(self) -> Generator:
        """Materialize the full logical contents (checkpointing)."""
        merged: dict[Hashable, Any] = {}
        for key in list(self._cold_keys):
            merged[key] = yield from self.cold.get(self.bucket, self._cold_key(key))
        merged.update(self._hot)
        return merged

"""An LSM-tree key-value store: memtable, SSTables, bloom filters, compaction.

Stands in for RocksDB as the *embedded, decentralized* state backend of
dataflow operators (paper §3.3): writes go to a sorted memtable that flushes
into immutable sorted runs; reads consult the memtable then runs newest to
oldest, skipping runs via bloom filters; leveled compaction bounds read
amplification.  Counters expose flush/compaction/bloom activity so tests and
benchmarks can assert on the mechanics, not just the mapping semantics.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

_TOMBSTONE = object()


class BloomFilter:
    """A classic k-hash bloom filter over a fixed bit array."""

    def __init__(self, capacity: int, bits_per_key: int = 10) -> None:
        self._num_bits = max(64, capacity * bits_per_key)
        self._bits = 0
        self._num_hashes = max(1, int(bits_per_key * 0.69))

    def _positions(self, key: Any) -> Iterator[int]:
        h1 = hash(("bloom-a", key))
        h2 = hash(("bloom-b", key)) | 1
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, key: Any) -> None:
        for pos in self._positions(key):
            self._bits |= 1 << pos

    def might_contain(self, key: Any) -> bool:
        return all(self._bits >> pos & 1 for pos in self._positions(key))


class SSTable:
    """An immutable sorted run of key-value pairs with a bloom filter."""

    _ids = iter(range(1, 1 << 60))

    def __init__(self, items: list[tuple[Any, Any]]) -> None:
        self.table_id = next(SSTable._ids)
        self._keys = [k for k, _ in items]
        self._values = [v for _, v in items]
        self.bloom = BloomFilter(max(1, len(items)))
        for key in self._keys:
            self.bloom.add(key)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None

    def get(self, key: Any) -> Any:
        """Return the stored value, ``_TOMBSTONE``, or ``None`` if absent."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._values[index]
        return None

    def items(self) -> Iterator[tuple[Any, Any]]:
        return zip(self._keys, self._values)

    def range(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Items with ``low <= key < high``."""
        start = bisect.bisect_left(self._keys, low)
        for i in range(start, len(self._keys)):
            if self._keys[i] >= high:
                break
            yield self._keys[i], self._values[i]


@dataclass
class LsmStats:
    """Operation counters for assertions and ablation benchmarks."""

    flushes: int = 0
    compactions: int = 0
    bloom_skips: int = 0
    sstable_reads: int = 0
    memtable_hits: int = 0


class LsmStore:
    """The store: one mutable memtable over leveled immutable runs.

    Parameters
    ----------
    memtable_limit:
        Number of entries that triggers a flush to level 0.
    level0_limit:
        Number of level-0 runs that triggers compaction into level 1.
    level_ratio:
        Size multiplier between consecutive levels.
    """

    def __init__(
        self,
        memtable_limit: int = 1024,
        level0_limit: int = 4,
        level_ratio: int = 10,
    ) -> None:
        if memtable_limit <= 0 or level0_limit <= 0 or level_ratio <= 1:
            raise ValueError("invalid LSM configuration")
        self.memtable_limit = memtable_limit
        self.level0_limit = level0_limit
        self.level_ratio = level_ratio
        self._memtable: dict[Any, Any] = {}
        # levels[0] is a list of possibly-overlapping runs (newest last);
        # levels[i >= 1] each hold a single non-overlapping merged run.
        self._levels: list[list[SSTable]] = [[]]
        self.stats = LsmStats()

    # -- writes ----------------------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        """Insert or overwrite a key.  ``None`` values are not allowed
        (indistinguishable from absence, as in most KV stores)."""
        if value is None:
            raise ValueError("LsmStore does not support None values")
        self._memtable[key] = value
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def delete(self, key: Any) -> None:
        """Delete via tombstone (reclaimed at the bottom level)."""
        self._memtable[key] = _TOMBSTONE
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new level-0 run."""
        if not self._memtable:
            return
        items = sorted(self._memtable.items())
        self._levels[0].append(SSTable(items))
        self._memtable = {}
        self.stats.flushes += 1
        if len(self._levels[0]) >= self.level0_limit:
            self._compact(0)

    def _compact(self, level: int) -> None:
        """Merge all runs of ``level`` into the single run of ``level+1``."""
        self.stats.compactions += 1
        if level + 1 >= len(self._levels):
            self._levels.append([])
        sources = list(self._levels[level]) + list(self._levels[level + 1])
        merged: dict[Any, Any] = {}
        # Oldest first so newer runs overwrite: lower level runs are newer
        # than the level below's run; within level 0, later runs are newer.
        for run in list(self._levels[level + 1]) + list(self._levels[level]):
            for key, value in run.items():
                merged[key] = value
        bottom = level + 1 == len(self._levels) - 1
        items = sorted(
            (k, v)
            for k, v in merged.items()
            if not (bottom and v is _TOMBSTONE)
        )
        self._levels[level] = []
        self._levels[level + 1] = [SSTable(items)] if items else []
        del sources
        limit = self.memtable_limit * (self.level_ratio ** (level + 1))
        if self._levels[level + 1] and len(self._levels[level + 1][0]) > limit:
            self._compact(level + 1)

    # -- reads -----------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup: memtable, then runs newest to oldest."""
        if key in self._memtable:
            self.stats.memtable_hits += 1
            value = self._memtable[key]
            return default if value is _TOMBSTONE else value
        for run in self._runs_newest_first():
            if not run.bloom.might_contain(key):
                self.stats.bloom_skips += 1
                continue
            self.stats.sstable_reads += 1
            value = run.get(key)
            if value is not None:
                return default if value is _TOMBSTONE else value
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def _runs_newest_first(self) -> Iterator[SSTable]:
        for run in reversed(self._levels[0]):
            yield run
        for level in self._levels[1:]:
            for run in level:
                yield run

    def range(self, low: Any, high: Any) -> list[tuple[Any, Any]]:
        """Sorted items with ``low <= key < high`` (merging all sources)."""
        merged: dict[Any, Any] = {}
        for run in reversed(list(self._runs_newest_first())):  # oldest first
            for key, value in run.range(low, high):
                merged[key] = value
        for key, value in self._memtable.items():
            if low <= key < high:
                merged[key] = value
        return sorted(
            (k, v) for k, v in merged.items() if v is not _TOMBSTONE
        )

    def items(self) -> list[tuple[Any, Any]]:
        """All live items, sorted by key."""
        merged: dict[Any, Any] = {}
        for run in reversed(list(self._runs_newest_first())):
            for key, value in run.items():
                merged[key] = value
        merged.update(self._memtable)
        return sorted((k, v) for k, v in merged.items() if v is not _TOMBSTONE)

    def __len__(self) -> int:
        return len(self.items())

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict[Any, Any]:
        """Materialize current contents (for checkpoints)."""
        return dict(self.items())

    def restore(self, snapshot: dict[Any, Any]) -> None:
        """Reset to exactly the snapshot's contents."""
        self._memtable = {}
        self._levels = [[]]
        for key, value in snapshot.items():
            self.put(key, value)

    @property
    def num_runs(self) -> int:
        return sum(len(level) for level in self._levels)

"""Synchronous RPC over the simulated network (REST/gRPC stand-in).

HTTP-style request/response is stateless and gives no delivery guarantee
(paper §3.2): a timed-out request is retried, and because the original may
have been delivered *and executed*, retries create duplicate executions.
The client attaches an idempotency key to every logical call; whether the
server deduplicates on it is the server's choice — leaving it off is how
the benchmarks reproduce the double-charge anomalies the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.flow import AdmissionController, RetryBudget, PRIORITY_NORMAL
from repro.messaging.idempotency import IdempotencyStore
from repro.net.network import Message, Network
from repro.net.node import Node
from repro.obs.tracer import NULL_SPAN
from repro.sim import Environment, Interrupted, any_of


class RpcError(Exception):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """No reply within the deadline after all retries."""

    def __init__(self, dst: str, method: str, attempts: int) -> None:
        super().__init__(f"rpc {dst}.{method} timed out after {attempts} attempt(s)")
        self.dst = dst
        self.method = method
        self.attempts = attempts


class RpcRemoteError(RpcError):
    """The remote handler raised; carries the remote exception repr."""

    def __init__(self, dst: str, method: str, remote_error: str) -> None:
        super().__init__(f"rpc {dst}.{method} failed remotely: {remote_error}")
        self.remote_error = remote_error


class RpcRejected(RpcError):
    """The server shed the request at admission (it did NOT execute).

    Distinct from :class:`RpcTimeout` on purpose: a rejection is a definite
    negative — the handler never ran — so callers must not retry it through
    the same overloaded server (that is how retry storms start) and chaos
    oracles may count it as "definitely not applied".
    """

    def __init__(self, dst: str, method: str, detail: str) -> None:
        super().__init__(f"rpc {dst}.{method} shed by admission control: {detail}")
        self.detail = detail


class _Request:
    """One wire request.  ``__slots__``: built once per attempt on the hot
    path, so dataclass construction overhead is measurable."""

    __slots__ = (
        "request_id", "method", "payload", "reply_to", "reply_port",
        "idempotency_key", "trace_parent", "deadline", "priority",
    )

    def __init__(
        self,
        request_id: int,
        method: str,
        payload: Any,
        reply_to: str,
        reply_port: str,
        idempotency_key: Optional[str],
        trace_parent: Optional[int] = None,
        deadline: Optional[float] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        self.request_id = request_id
        self.method = method
        self.payload = payload
        self.reply_to = reply_to
        self.reply_port = reply_port
        self.idempotency_key = idempotency_key
        #: Caller's span id, carried across the wire for causal trace linking.
        self.trace_parent = trace_parent
        #: Absolute virtual-time deadline, propagated so downstream work can
        #: be dropped once nobody is waiting for it (None = no deadline).
        self.deadline = deadline
        #: Admission-control priority class (repro.flow PRIORITY_*).
        self.priority = priority


class _Reply:
    """One wire reply (``code="rejected"`` = shed at admission)."""

    __slots__ = ("request_id", "ok", "value", "code")

    def __init__(
        self, request_id: int, ok: bool, value: Any, code: Optional[str] = None
    ) -> None:
        self.request_id = request_id
        self.ok = ok
        self.value = value
        self.code = code


class _ReplyBatch:
    """Several replies to the same destination coalesced into one envelope.

    Produced only by servers with ``coalesce_replies=True``: replies issued
    within the same virtual instant to one (node, port) share a single
    network message — one latency sample, one delivery event — instead of
    one message each.
    """

    __slots__ = ("replies",)

    def __init__(self, replies: list[_Reply]) -> None:
        self.replies = replies


@dataclass
class RpcStats:
    calls: int = 0
    retries: int = 0
    timeouts: int = 0
    duplicate_executions: int = 0
    deduplicated: int = 0
    #: client: calls that raised RpcRejected (server shed them)
    rejected: int = 0
    #: client: retry loops stopped early by an exhausted retry budget
    budget_stopped: int = 0
    #: server: requests dropped unexecuted because their deadline passed
    expired_dropped: int = 0
    #: server: requests shed by the admission controller
    shed: int = 0
    #: client: futures failed because the node restarted mid-call
    restart_failed_calls: int = 0


class RpcServer:
    """Dispatches incoming requests to registered handler generators.

    ``handler(payload)`` must be a generator function; each request runs as
    its own process on the server's node (so a node crash kills in-flight
    handlers mid-execution — the partial-failure case of §3.2).

    If ``dedup_store`` is given, requests carrying an idempotency key are
    executed at most once: repeats return the recorded response.

    If ``admission`` is given, requests are shed at the door when the
    controller's in-flight limit for their priority class is reached
    (reply code ``"rejected"`` → the client raises :class:`RpcRejected`),
    and requests whose propagated deadline already passed are dropped
    unexecuted — the two server-side overload defenses of ``repro.flow``.

    ``coalesce_replies=True`` batches replies issued within one virtual
    instant to the same (node, port) into a single network message (a
    :class:`_ReplyBatch` the client pump unpacks).  Off by default: fewer
    wire messages also means fewer latency samples, so coalescing changes
    reply timing and is an opt-in trade, not a golden-equivalent fast path.

    ``local_fast_path=True`` hands replies addressed to this server's own
    node directly to the local port, skipping network dispatch entirely
    (the loopback half of the client-side same-node shortcut).
    """

    def __init__(
        self,
        network: Network,
        node: Node,
        service: str = "rpc",
        dedup_store: Optional[IdempotencyStore] = None,
        admission: Optional[AdmissionController] = None,
        *,
        coalesce_replies: bool = False,
        local_fast_path: bool = False,
    ) -> None:
        self.network = network
        self.node = node
        self.service = service
        self.dedup = dedup_store
        self.admission = admission
        self.coalesce_replies = coalesce_replies
        self.local_fast_path = local_fast_path
        self._handlers: dict[str, Callable[[Any], Generator]] = {}
        self.stats = RpcStats()
        self._executed_keys: set[str] = set()
        self._inflight: dict[str, Any] = {}  # idempotency key -> Future
        self._reply_buffer: dict[tuple[str, str], list[_Reply]] = {}
        self.node.on_restart(lambda _node: self._on_restart())
        self._start()

    def _on_restart(self) -> None:
        self._inflight = {}  # in-flight executions died with the node
        self._reply_buffer = {}  # buffered replies died with the node
        self._start()

    def register(self, method: str, handler: Callable[[Any], Generator]) -> None:
        """Expose ``handler`` as ``method`` (a generator function)."""
        self._handlers[method] = handler

    def _start(self) -> None:
        inbox = self.node.bind(self.service)

        def listen(env: Environment) -> Generator:
            while True:
                message = yield inbox.get()
                self.node.spawn(
                    self._handle(message), label=f"{self.service}.handler"
                )

        self.node.spawn(listen(self.network.env), label=f"{self.service}.listener")

    def _handle(self, message: Message):
        # Plain function: untraced requests run the processing generator
        # directly (no span bookkeeping, no delegating frame).
        request: _Request = message.payload
        if self.network.env.tracer.enabled:
            return self._handle_traced(request)
        return self._process(request, NULL_SPAN)

    def _handle_traced(self, request: _Request) -> Generator:
        tracer = self.network.env.tracer
        span = tracer.begin(
            "rpc.handle",
            parent=request.trace_parent,
            method=request.method,
            node=self.node.name,
        )
        try:
            yield from self._process(request, span)
        finally:
            tracer.end(span)

    def _process(self, request: _Request, span: Any) -> Generator:
        handler = self._handlers.get(request.method)
        if handler is None:
            self._reply(request, ok=False, value=f"no such method {request.method!r}")
            return
        if (
            request.deadline is not None
            and self.network.env.now >= request.deadline
        ):
            # Nobody is waiting for this answer any more; executing it would
            # only add load.  Drop it on the floor — the caller's timeout
            # already fired (or will, from its own clock).
            self.stats.expired_dropped += 1
            span.annotate(outcome="expired")
            return
        key = request.idempotency_key
        if key is not None and self.dedup is not None:
            # Dedup *before* admission: serving a recorded response costs
            # O(1), and shedding a retry of work that already executed would
            # tell the caller "definitely not done" about work that is done.
            hit = self.dedup.lookup(key)
            if hit is not None:
                self.stats.deduplicated += 1
                span.annotate(dedup="store")
                self._reply(request, ok=True, value=hit.response)
                return
            inflight = self._inflight.get(key)
            if inflight is not None:
                # A duplicate arrived while the original still executes:
                # piggyback on its outcome instead of re-executing.  No
                # admission slot is held while parked here.
                self.stats.deduplicated += 1
                span.annotate(dedup="inflight")
                outcome = yield inflight
                self._reply(request, ok=outcome[0], value=outcome[1])
                return
        if self.admission is not None and not self.admission.try_admit(
            request.priority
        ):
            self.stats.shed += 1
            span.annotate(outcome="shed")
            self._reply(
                request,
                ok=False,
                value=f"{self.service}@{self.node.name} over admission limit",
                code="rejected",
            )
            return
        # Execution proper (inlined rather than a nested generator: one
        # frame per request at benchmark rates).
        try:
            if key is not None:
                if self.dedup is not None:
                    self._inflight[key] = self.network.env.future(
                        label=f"inflight:{key}"
                    )
                if key in self._executed_keys:
                    self.stats.duplicate_executions += 1
                self._executed_keys.add(key)
            try:
                result = yield from handler(request.payload)
            except Interrupted:
                raise  # node crashed mid-handler; no reply is ever sent
            except Exception as exc:  # noqa: BLE001 - report remote errors to caller
                self._settle_inflight(key, ok=False, value=repr(exc))
                self._reply(request, ok=False, value=repr(exc))
                return
            if key is not None and self.dedup is not None:
                self.dedup.record(key, result)
            self._settle_inflight(key, ok=True, value=result)
            self._reply(request, ok=True, value=result)
        finally:
            if self.admission is not None:
                self.admission.release()

    def _settle_inflight(self, key: Optional[str], ok: bool, value: Any) -> None:
        if key is None or self.dedup is None:
            return
        fut = self._inflight.pop(key, None)
        if fut is not None:
            fut.try_succeed((ok, value))

    def _reply(
        self, request: _Request, ok: bool, value: Any, code: Optional[str] = None
    ) -> None:
        reply = _Reply(request.request_id, ok, value, code)
        if self.coalesce_replies:
            key = (request.reply_to, request.reply_port)
            buffered = self._reply_buffer.get(key)
            if buffered is not None:
                buffered.append(reply)
                return
            self._reply_buffer[key] = [reply]
            # Flush after every handler that can finish at this instant has
            # finished: call_soon runs behind all currently-ready events.
            self.network.env.call_soon(self._flush_replies, key)
            return
        self._send_reply(request.reply_to, request.reply_port, reply)

    def _flush_replies(self, key: tuple[str, str]) -> None:
        replies = self._reply_buffer.pop(key, None)
        if not replies:
            return  # node restarted between buffer and flush
        payload: Any = replies[0] if len(replies) == 1 else _ReplyBatch(replies)
        self._send_reply(key[0], key[1], payload)

    def _send_reply(self, dst: str, port: str, payload: Any) -> None:
        if self.local_fast_path and dst == self.node.name:
            self.network.send_local(dst, port, payload)
            return
        self.network.send(self.node.name, dst, port, payload)


class RpcClient:
    """Issues calls from a node, with timeout/retry and reply matching.

    ``local_fast_path=True`` sends requests addressed to this client's own
    node straight to the local service port, skipping network dispatch
    (no latency sample, no loss/duplication/partition).  Off by default:
    it changes call timing, so it is an opt-in optimization for
    colocated-tier topologies, not a golden-equivalent fast path.
    """

    def __init__(
        self,
        network: Network,
        node: Node,
        service: str = "rpc",
        *,
        local_fast_path: bool = False,
    ) -> None:
        self.network = network
        self.node = node
        self.service = service
        self.local_fast_path = local_fast_path
        self.stats = RpcStats()
        self._pending: dict[int, Any] = {}
        self._reply_port = f"{service}-replies"
        self.node.on_restart(lambda _node: self._on_restart())
        self._start()

    def _on_restart(self) -> None:
        # The crash interrupted every caller and dropped the reply port, so
        # no pending reply can ever be matched again.  Fail the futures and
        # reset the table — leaving them in place leaks an entry per
        # in-flight call on every crash, forever.
        pending, self._pending = self._pending, {}
        for request_id, fut in pending.items():
            self.stats.restart_failed_calls += 1
            fut.try_fail(
                RpcError(f"node {self.node.name} restarted with call #{request_id} pending")
            )
        self._start()

    def _start(self) -> None:
        inbox = self.node.bind(self._reply_port)

        def pump(env: Environment) -> Generator:
            while True:
                message = yield inbox.get()
                payload = message.payload
                replies = (
                    payload.replies if type(payload) is _ReplyBatch else (payload,)
                )
                for reply in replies:
                    fut = self._pending.pop(reply.request_id, None)
                    if fut is not None:
                        fut.try_succeed(reply)

        self.node.spawn(pump(self.network.env), label=f"{self._reply_port}.pump")

    def call(
        self,
        dst: str,
        method: str,
        payload: Any = None,
        timeout: float = 20.0,
        retries: int = 3,
        idempotency_key: Optional[str] = None,
        deadline: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Generator:
        """Invoke ``method`` on node ``dst``; returns the handler's result.

        Retries up to ``retries`` extra times after each ``timeout``; each
        retry is a *new network message with the same idempotency key* —
        the duplicate-generation mechanism of §3.2.  Raises
        :class:`RpcTimeout` or :class:`RpcRemoteError`.

        Overload defenses (all optional, all off by default):

        - ``deadline`` — absolute virtual-time deadline.  Propagated to the
          server (which drops expired requests unexecuted) and enforced
          locally: attempts never wait past it, and no retry is sent once
          it has passed.
        - ``retry_budget`` — a :class:`repro.flow.RetryBudget`; every retry
          must buy a token, and a success refunds a fraction.  With the
          budget empty, the call fails fast instead of amplifying load.
        - ``priority`` — admission class carried to the server; low
          priority is shed first under overload.  A shed reply raises
          :class:`RpcRejected` and is never retried here — the server
          explicitly refused, so hammering it again is the storm.
        """
        env = self.network.env
        tracer = env.tracer
        traced = tracer.enabled
        self.stats.calls += 1
        span = tracer.begin("rpc.call", dst=dst, method=method) if traced else NULL_SPAN
        attempts = 0
        try:
            while attempts <= retries:
                if deadline is not None and env.now >= deadline:
                    break  # out of time — fall through to RpcTimeout
                if attempts > 0:
                    if retry_budget is not None and not retry_budget.try_spend():
                        self.stats.budget_stopped += 1
                        span.annotate(outcome="budget-exhausted")
                        break
                    self.stats.retries += 1
                attempts += 1
                request_id = env.next_id("rpc-request")
                request = _Request(
                    request_id=request_id,
                    method=method,
                    payload=payload,
                    reply_to=self.node.name,
                    reply_port=self._reply_port,
                    idempotency_key=idempotency_key,
                    trace_parent=span.span_id if traced else None,
                    deadline=deadline,
                    priority=priority,
                )
                attempt_span = (
                    tracer.begin("rpc.attempt", attempt=attempts)
                    if traced
                    else NULL_SPAN
                )
                fut = env.future(label=f"rpc:{dst}.{method}#{request_id}")
                self._pending[request_id] = fut
                if self.local_fast_path and dst == self.node.name:
                    self.network.send_local(dst, self.service, request)
                else:
                    self.network.send(self.node.name, dst, self.service, request)
                wait = timeout
                if deadline is not None:
                    wait = min(wait, deadline - env.now)
                winner = yield any_of(env, [fut, env.timeout(wait, "timeout")])
                index, value = winner
                if index == 0:
                    tracer.end(attempt_span, outcome="reply")
                    reply: _Reply = value
                    span.annotate(attempts=attempts)
                    if reply.ok:
                        if retry_budget is not None:
                            retry_budget.on_success()
                        return reply.value
                    if reply.code == "rejected":
                        self.stats.rejected += 1
                        span.annotate(outcome="rejected")
                        raise RpcRejected(dst, method, reply.value)
                    raise RpcRemoteError(dst, method, reply.value)
                tracer.end(attempt_span, outcome="timeout")
                self._pending.pop(request_id, None)
            self.stats.timeouts += 1
            span.annotate(attempts=attempts, outcome="timeout")
            raise RpcTimeout(dst, method, attempts)
        finally:
            tracer.end(span)

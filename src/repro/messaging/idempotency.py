"""Receiver-side deduplication: idempotency keys and message-id dedup.

The paper (§3.2) puts the burden of exactly-once effects on applications:
"uniqueness ID guarantee and subsequent detection of duplicated messages
are still the responsibility of applications".  These two helpers are that
responsibility, packaged:

- :class:`IdempotencyStore` — keyed by a caller-chosen idempotency key;
  stores the first response so duplicates can be answered without
  re-execution (the HTTP Idempotency-Key pattern).
- :class:`Deduplicator` — keyed by message id; a bounded set for
  at-least-once consumers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional


@dataclass(frozen=True)
class IdempotencyEntry:
    """The recorded outcome of the first execution."""

    key: str
    response: Any
    recorded_at: float


class IdempotencyStore:
    """Durable map of idempotency key → first response.

    Durability matters: if the store were lost with the state it guards, a
    replayed message would re-execute.  Co-locate it with the state (same
    database transaction) for true exactly-once — see
    :mod:`repro.messaging.outbox` for the pattern.
    """

    def __init__(self, clock=None) -> None:
        self._entries: dict[str, IdempotencyEntry] = {}
        self._clock = clock or (lambda: 0.0)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def lookup(self, key: str) -> Optional[IdempotencyEntry]:
        """Return the recorded entry, or ``None`` if this key is new."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def record(self, key: str, response: Any) -> IdempotencyEntry:
        """Record the first response for ``key`` (first writer wins)."""
        if key in self._entries:
            return self._entries[key]
        entry = IdempotencyEntry(key, response, self._clock())
        self._entries[key] = entry
        return entry

    def check_and_record(self, key: str, response: Any) -> tuple[bool, Any]:
        """Atomically test-and-set: returns ``(is_first, response)``."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return False, entry.response
        self.misses += 1
        self._entries[key] = IdempotencyEntry(key, response, self._clock())
        return True, response


class Deduplicator:
    """Bounded set of already-processed message ids (FIFO eviction).

    A finite window models reality: dedup state cannot grow forever, so a
    sufficiently delayed duplicate *can* slip through — which is why the
    window must exceed the maximum redelivery delay.
    """

    def __init__(self, window: int = 100_000) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._seen: OrderedDict[Hashable, None] = OrderedDict()
        self.duplicates = 0
        self.accepted = 0

    def is_duplicate(self, message_id: Hashable) -> bool:
        """Test-and-record: True if seen before (within the window)."""
        if message_id in self._seen:
            self.duplicates += 1
            return True
        self._seen[message_id] = None
        if len(self._seen) > self.window:
            self._seen.popitem(last=False)
        self.accepted += 1
        return False

    def __len__(self) -> int:
        return len(self._seen)

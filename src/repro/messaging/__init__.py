"""Messaging substrates: log-based broker, RPC, idempotency, outbox.

Implements the communication styles of paper §3.2:

- :mod:`repro.messaging.rpc` — synchronous request/response (REST/gRPC
  stand-in) with timeouts and retries; retry-after-timeout is exactly the
  duplicate source the paper describes, and idempotency keys are the fix.
- :mod:`repro.messaging.broker` — a partitioned, offset-based persistent
  log (Kafka stand-in) with consumer groups and ack-driven redelivery,
  giving at-most-once or at-least-once delivery depending on when offsets
  are committed.
- :mod:`repro.messaging.idempotency` — receiver-side deduplication, the
  application half of exactly-once processing.
- :mod:`repro.messaging.outbox` — the transactional outbox pattern: state
  change and message publication made atomic through the database.
"""

from repro.messaging.broker import Broker, Consumer, GroupMember, Record
from repro.messaging.idempotency import Deduplicator, IdempotencyStore
from repro.messaging.outbox import OutboxRelay, TransactionalOutbox
from repro.messaging.rpc import (
    RpcClient,
    RpcError,
    RpcRejected,
    RpcRemoteError,
    RpcServer,
    RpcTimeout,
)

__all__ = [
    "Broker",
    "Consumer",
    "Deduplicator",
    "GroupMember",
    "IdempotencyStore",
    "OutboxRelay",
    "Record",
    "RpcClient",
    "RpcError",
    "RpcRejected",
    "RpcRemoteError",
    "RpcServer",
    "RpcTimeout",
    "TransactionalOutbox",
]

"""A partitioned, persistent, offset-based message broker (Kafka stand-in).

Producers append records to topic partitions (routed by key hash); consumer
groups track a committed offset per partition.  Delivery semantics are a
*protocol choice by the consumer*, exactly as the paper describes (§3.2):

- commit offsets **before** processing → at-most-once (a crash loses the
  in-flight batch);
- commit offsets **after** processing → at-least-once (a crash redelivers
  the uncommitted batch, producing duplicates the application must
  deduplicate).

The broker itself is modeled as durable and highly available (as a
replicated Kafka cluster is); the interesting failures live in producers
and consumers.

With ``max_backlog`` set, partitions are *bounded*: a producer must hold a
credit to append, and credits only return when a consumer group commits
past its records — the broker stops hiding overload in an ever-growing
log and pushes it back to whoever can shed (paper §3.2's "buffering
brokers amplify overload" failure mode, defended).  The default
(``max_backlog=None``) keeps the historical unbounded behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Generator, Optional

from repro.cluster import stable_hash
from repro.sim import Environment, Future, any_of


@dataclass(frozen=True)
class Record:
    """One immutable log entry."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    timestamp: float


@dataclass
class BrokerStats:
    published: int = 0
    polled: int = 0
    committed_offsets: int = 0
    redelivered: int = 0
    #: publishes that had to wait for a producer credit (bounded partitions)
    blocked_publishes: int = 0


class _Partition:
    def __init__(self, topic: str, index: int) -> None:
        self.topic = topic
        self.index = index
        self.log: list[Record] = []
        # One shared wakeup future per partition: every poller chains onto
        # it, instead of appending a fresh future per poll (which grew
        # without bound on idle topics).  Callback order on the shared
        # future is registration order, exactly as the waiter list was.
        self._wakeup: Optional[Future] = None
        # Producers waiting for a credit (bounded partitions only), FIFO.
        self._credit_waiters: Deque[Future] = deque()

    @property
    def end_offset(self) -> int:
        return len(self.log)

    def append(self, key: Any, value: Any, timestamp: float) -> Record:
        record = Record(self.topic, self.index, len(self.log), key, value, timestamp)
        self.log.append(record)
        wakeup = self._wakeup
        if wakeup is not None:
            self._wakeup = None
            wakeup.try_succeed(None)
        return record

    def wait_for_data(self, env: Environment) -> Future:
        wakeup = self._wakeup
        if wakeup is None or wakeup.done:
            wakeup = env.future(label=f"{self.topic}/{self.index}.data")
            self._wakeup = wakeup
        return wakeup


class Broker:
    """The broker: topics, partitions, consumer-group offsets."""

    def __init__(
        self,
        env: Environment,
        name: str = "broker",
        publish_latency: float = 0.8,
        poll_latency: float = 0.5,
        max_backlog: Optional[int] = None,
    ) -> None:
        if max_backlog is not None and max_backlog < 1:
            raise ValueError("max_backlog must be >= 1 (or None for unbounded)")
        self.env = env
        self.name = name
        self.publish_latency = publish_latency
        self.poll_latency = poll_latency
        self.max_backlog = max_backlog
        self._topics: dict[str, list[_Partition]] = {}
        # committed offsets: (group, topic, partition) -> next offset to read
        self._offsets: dict[tuple[str, str, int], int] = {}
        # high-water mark of offsets ever handed to each group (dupe counting)
        self._delivered: dict[tuple[str, str, int], int] = {}
        # cooperative group membership: (group, topic) -> members/generation
        self._group_members: dict[tuple[str, str], dict] = {}
        self.stats = BrokerStats()

    # -- topics ------------------------------------------------------------------

    def create_topic(self, topic: str, partitions: int = 1) -> None:
        if partitions <= 0:
            raise ValueError("partitions must be positive")
        if topic in self._topics:
            raise ValueError(f"topic {topic!r} already exists")
        self._topics[topic] = [_Partition(topic, i) for i in range(partitions)]

    def _partitions(self, topic: str) -> list[_Partition]:
        try:
            return self._topics[topic]
        except KeyError:
            raise KeyError(f"unknown topic {topic!r}") from None

    def partition_for(self, topic: str, key: Any) -> int:
        """Key-hash routing: equal keys always land in the same partition."""
        count = len(self._partitions(topic))
        return stable_hash(key) % count

    def end_offsets(self, topic: str) -> list[int]:
        return [p.end_offset for p in self._partitions(topic)]

    # -- producing ----------------------------------------------------------------

    def publish(self, topic: str, key: Any, value: Any) -> Generator:
        """Append durably; resolves once the broker has acked.

        With ``max_backlog`` set, blocks until the partition has a free
        credit — i.e. until its uncommitted backlog (records past the
        slowest group's committed offset) is below the bound.  The ack is
        therefore backpressure: a slow consumer stalls its producers
        instead of growing the log without limit.
        """
        tracer = self.env.tracer
        span = tracer.begin("broker.publish", broker=self.name, topic=topic)
        try:
            partitions = self._partitions(topic)
            yield self.env.timeout(self.publish_latency)
            partition = partitions[self.partition_for(topic, key)]
            if self.max_backlog is not None:
                blocked = False
                while self.backlog(topic, partition.index) >= self.max_backlog:
                    blocked = True
                    credit = self.env.future(
                        label=f"{topic}/{partition.index}.credit"
                    )
                    partition._credit_waiters.append(credit)
                    yield credit
                if blocked:
                    self.stats.blocked_publishes += 1
                    span.annotate(blocked=True)
            record = partition.append(key, value, self.env.now)
            self.stats.published += 1
            span.annotate(partition=partition.index, offset=record.offset)
            return record
        finally:
            tracer.end(span)

    def publish_now(self, topic: str, key: Any, value: Any) -> Record:
        """Zero-latency append (test setup and fire-and-forget relays)."""
        partitions = self._partitions(topic)
        partition = partitions[self.partition_for(topic, key)]
        self.stats.published += 1
        return partition.append(key, value, self.env.now)

    # -- consuming ----------------------------------------------------------------

    def consumer(self, group: str, topic: str) -> "Consumer":
        """A consumer owning *all* partitions of ``topic`` for ``group``.

        A new consumer for the same group resumes from the group's
        committed offsets — what happens when a crashed consumer instance
        is replaced.  Records between the committed offset and the crashed
        instance's position are *redelivered*.
        """
        return Consumer(self, group, topic)

    # -- consumer groups with rebalancing ------------------------------------------

    def join_group(self, group: str, topic: str, member_id: str) -> "GroupMember":
        """Join a cooperative consumer group; partitions are split among
        members (round-robin) and rebalanced on every join/leave.

        Each member polls only its assigned partitions; on a member's
        departure (:meth:`GroupMember.leave`) survivors take over its
        partitions from the committed offsets — the at-least-once
        redelivery window applies across the handoff.
        """
        self._partitions(topic)  # validate topic
        key = (group, topic)
        state = self._group_members.setdefault(key, {"members": [], "generation": 0})
        if member_id in state["members"]:
            raise ValueError(f"member {member_id!r} already in group {group!r}")
        state["members"].append(member_id)
        state["generation"] += 1
        return GroupMember(self, group, topic, member_id)

    def _leave_group(self, group: str, topic: str, member_id: str) -> None:
        state = self._group_members.get((group, topic))
        if state is None:
            return
        if member_id in state["members"]:
            state["members"].remove(member_id)
            state["generation"] += 1

    def _assignment(self, group: str, topic: str, member_id: str) -> list[int]:
        """Round-robin partition assignment for one member."""
        state = self._group_members.get((group, topic))
        if state is None or member_id not in state["members"]:
            return []
        members = state["members"]
        count = len(self._partitions(topic))
        index = members.index(member_id)
        return [p for p in range(count) if p % len(members) == index]

    def group_generation(self, group: str, topic: str) -> int:
        state = self._group_members.get((group, topic))
        return state["generation"] if state else 0

    def committed(self, group: str, topic: str, partition: int) -> int:
        return self._offsets.get((group, topic, partition), 0)

    def _commit(self, group: str, topic: str, partition: int, offset: int) -> None:
        key = (group, topic, partition)
        self._offsets[key] = max(self._offsets.get(key, 0), offset)
        self.stats.committed_offsets += 1
        if self.max_backlog is not None:
            # A commit may have freed producer credits: wake every waiter
            # (in FIFO order); each re-checks the backlog before appending.
            part = self._partitions(topic)[partition]
            waiters, part._credit_waiters = part._credit_waiters, deque()
            for waiter in waiters:
                waiter.try_succeed(None)

    def backlog(self, topic: str, partition: int) -> int:
        """Records past the slowest consumer group's committed offset.

        Partitions no group has ever committed count their whole log — a
        bounded topic therefore *requires* a committing consumer before
        producers can run ahead, which is the honest definition of a
        bounded queue (there is no consumer to drain it yet).
        """
        part = self._partitions(topic)[partition]
        floors = [
            offset
            for (group, t, p), offset in self._offsets.items()
            if t == topic and p == partition
        ]
        return part.end_offset - (min(floors) if floors else 0)

    def _note_delivery(self, group: str, topic: str, partition: int, offsets: range) -> None:
        key = (group, topic, partition)
        seen_up_to = self._delivered.get(key, 0)
        for offset in offsets:
            if offset < seen_up_to:
                self.stats.redelivered += 1
        self._delivered[key] = max(seen_up_to, offsets.stop)

    def lag(self, group: str, topic: str) -> int:
        """Total records not yet committed by the group."""
        return sum(
            p.end_offset - self.committed(group, topic, p.index)
            for p in self._partitions(topic)
        )


class Consumer:
    """A consumer-group member with explicit offset control.

    Positions start at the group's committed offsets.  ``poll`` advances the
    in-memory position; ``commit`` persists it.  Records between the
    committed offset and the position form the at-least-once redelivery
    window.
    """

    def __init__(self, broker: Broker, group: str, topic: str) -> None:
        self.broker = broker
        self.group = group
        self.topic = topic
        self._positions = {
            p.index: broker.committed(group, topic, p.index)
            for p in broker._partitions(topic)
        }

    def poll(self, max_records: int = 32, wait: bool = True) -> Generator:
        """Fetch the next batch; blocks until data arrives if ``wait``."""
        env = self.broker.env
        tracer = env.tracer
        span = tracer.begin("broker.poll", group=self.group, topic=self.topic)
        try:
            yield env.timeout(self.broker.poll_latency)
            while True:
                batch: list[Record] = []
                for partition in self.broker._partitions(self.topic):
                    position = self._positions[partition.index]
                    available = partition.log[position:position + max_records - len(batch)]
                    if available:
                        self.broker._note_delivery(
                            self.group, self.topic, partition.index,
                            range(position, position + len(available)),
                        )
                        batch.extend(available)
                        self._positions[partition.index] = position + len(available)
                    if len(batch) >= max_records:
                        break
                if batch or not wait:
                    self.broker.stats.polled += len(batch)
                    span.annotate(records=len(batch))
                    return batch
                waits = [p.wait_for_data(env) for p in self.broker._partitions(self.topic)]
                yield any_of(env, waits)
        finally:
            tracer.end(span)

    def commit(self) -> Generator:
        """Persist current positions as the group's committed offsets."""
        tracer = self.broker.env.tracer
        span = tracer.begin("broker.commit", group=self.group, topic=self.topic)
        try:
            yield self.broker.env.timeout(self.broker.poll_latency)
            for index, position in self._positions.items():
                self.broker._commit(self.group, self.topic, index, position)
        finally:
            tracer.end(span)

    def commit_now(self) -> None:
        """Synchronous variant of :meth:`commit` (at-most-once fast path)."""
        for index, position in self._positions.items():
            self.broker._commit(self.group, self.topic, index, position)

    def redelivery_window(self) -> int:
        """Records polled but not committed (duplicated if we crash now)."""
        return sum(
            position - self.broker.committed(self.group, self.topic, index)
            for index, position in self._positions.items()
        )


class GroupMember:
    """One member of a cooperative consumer group (see ``join_group``).

    Polls only the partitions currently assigned to it; assignments are
    re-read whenever the group generation changes (a rebalance), resuming
    each newly acquired partition at the group's committed offset.
    """

    def __init__(self, broker: Broker, group: str, topic: str, member_id: str) -> None:
        self.broker = broker
        self.group = group
        self.topic = topic
        self.member_id = member_id
        self._generation = -1
        self._positions: dict[int, int] = {}
        self._refresh()

    def _refresh(self) -> None:
        generation = self.broker.group_generation(self.group, self.topic)
        if generation == self._generation:
            return
        self._generation = generation
        assigned = self.broker._assignment(self.group, self.topic, self.member_id)
        self._positions = {
            index: self.broker.committed(self.group, self.topic, index)
            for index in assigned
        }

    @property
    def assigned_partitions(self) -> list[int]:
        self._refresh()
        return sorted(self._positions)

    def poll(self, max_records: int = 32, wait: bool = True) -> Generator:
        """Fetch the next batch from the member's assigned partitions."""
        env = self.broker.env
        tracer = env.tracer
        span = tracer.begin(
            "broker.poll", group=self.group, topic=self.topic, member=self.member_id
        )
        try:
            batch = yield from self._poll(env, max_records, wait)
            span.annotate(records=len(batch))
            return batch
        finally:
            tracer.end(span)

    def _poll(self, env: Environment, max_records: int, wait: bool) -> Generator:
        yield env.timeout(self.broker.poll_latency)
        while True:
            self._refresh()
            batch: list[Record] = []
            partitions = self.broker._partitions(self.topic)
            for index, position in list(self._positions.items()):
                partition = partitions[index]
                available = partition.log[position:position + max_records - len(batch)]
                if available:
                    self.broker._note_delivery(
                        self.group, self.topic, index,
                        range(position, position + len(available)),
                    )
                    batch.extend(available)
                    self._positions[index] = position + len(available)
                if len(batch) >= max_records:
                    break
            if batch or not wait:
                self.broker.stats.polled += len(batch)
                return batch
            if not self._positions:
                yield env.timeout(self.broker.poll_latency * 4)  # rebalance wait
                continue
            waits = [
                partitions[index].wait_for_data(env) for index in self._positions
            ]
            winner = any_of(env, waits)
            timeout = env.timeout(self.broker.poll_latency * 10)  # rebalance poll
            yield any_of(env, [winner, timeout])

    def commit(self) -> Generator:
        tracer = self.broker.env.tracer
        span = tracer.begin(
            "broker.commit", group=self.group, topic=self.topic, member=self.member_id
        )
        try:
            yield self.broker.env.timeout(self.broker.poll_latency)
            for index, position in self._positions.items():
                self.broker._commit(self.group, self.topic, index, position)
        finally:
            tracer.end(span)

    def leave(self) -> None:
        """Leave the group; a rebalance hands the partitions to survivors."""
        self.broker._leave_group(self.group, self.topic, self.member_id)
        self._positions = {}

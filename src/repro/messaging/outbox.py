"""The transactional outbox pattern: atomic state change + publication.

The dual-write problem: a service that updates its database *and* publishes
an event can crash between the two, leaving them inconsistent.  The outbox
fixes it (paper §3.2/§4.2 territory): the event is inserted into an
``outbox`` table *inside the same database transaction* as the state
change; a relay process then publishes pending outbox rows to the broker
and marks them dispatched.  The relay is at-least-once (crash between
publish and mark → republish), so consumers deduplicate on the event id —
together yielding exactly-once effects.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from repro.db.engine import Database, IsolationLevel, Transaction
from repro.messaging.broker import Broker
from repro.sim import Environment


class TransactionalOutbox:
    """Enqueue events transactionally with your state changes."""

    TABLE = "_outbox"

    _event_ids = itertools.count(1)

    def __init__(self, db: Database) -> None:
        self.db = db
        if self.TABLE not in db.tables:
            db.create_table(self.TABLE, primary_key="event_id")

    def enqueue(
        self, txn: Transaction, topic: str, key: Any, value: Any
    ) -> Generator:
        """Add an event to the outbox inside ``txn``.

        The event becomes publishable if and only if ``txn`` commits.
        """
        event_id = f"evt-{next(TransactionalOutbox._event_ids)}"
        yield from self.db.insert(
            txn,
            self.TABLE,
            {
                "event_id": event_id,
                "topic": topic,
                "key": key,
                "value": value,
                "dispatched": False,
            },
        )
        return event_id

    def pending(self) -> list[dict]:
        """Committed, not-yet-dispatched events (relay's work list)."""
        return sorted(
            (row for row in self.db.all_rows(self.TABLE) if not row["dispatched"]),
            key=lambda row: row["event_id"],
        )


class OutboxRelay:
    """Polls an outbox and publishes pending events to the broker.

    ``crash_after_publish_prob`` injects the pattern's characteristic
    partial failure: the relay publishes but dies before marking the row,
    so the event is republished on the next sweep — the duplicate that
    consumer-side dedup must absorb.
    """

    def __init__(
        self,
        env: Environment,
        outbox: TransactionalOutbox,
        broker: Broker,
        poll_interval: float = 5.0,
        crash_after_publish_prob: float = 0.0,
    ) -> None:
        self.env = env
        self.outbox = outbox
        self.broker = broker
        self.poll_interval = poll_interval
        self.crash_after_publish_prob = crash_after_publish_prob
        self._rng = env.stream("outbox-relay")
        self.published = 0
        self.republished = 0
        self._published_ids: set[str] = set()
        self._running = True

    def stop(self) -> None:
        self._running = False

    def run(self) -> Generator:
        """The relay loop; spawn as a process."""
        while self._running:
            yield self.env.timeout(self.poll_interval)
            yield from self.sweep()

    def sweep(self) -> Generator:
        """One pass: publish every pending event, then mark it dispatched."""
        tracer = self.env.tracer
        pending = self.outbox.pending()
        span = tracer.begin("outbox.sweep", events=len(pending))
        published = 0
        try:
            for row in pending:
                event = {"event_id": row["event_id"], "value": row["value"]}
                yield from self.broker.publish(row["topic"], row["key"], event)
                self.published += 1
                published += 1
                if row["event_id"] in self._published_ids:
                    self.republished += 1
                self._published_ids.add(row["event_id"])
                if (
                    self.crash_after_publish_prob > 0
                    and self._rng.random() < self.crash_after_publish_prob
                ):
                    span.annotate(crashed=True)
                    return  # died before marking: the row stays pending
                yield from self._mark_dispatched(row["event_id"])
        finally:
            tracer.end(span, published=published)

    def _mark_dispatched(self, event_id: str) -> Generator:
        tracer = self.env.tracer
        span = tracer.begin("outbox.mark", event_id=event_id)
        try:
            txn = self.outbox.db.begin(IsolationLevel.READ_COMMITTED)
            yield from self.outbox.db.update(
                txn, TransactionalOutbox.TABLE, event_id, {"dispatched": True}
            )
            yield from self.outbox.db.commit(txn)
        finally:
            tracer.end(span)

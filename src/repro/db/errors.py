"""Exception hierarchy of the database engine."""

from __future__ import annotations


class TransactionError(Exception):
    """Base class for all transactional failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back."""

    def __init__(self, tid: int, reason: str = "") -> None:
        super().__init__(f"transaction {tid} aborted: {reason}")
        self.tid = tid
        self.reason = reason


class DeadlockAbort(TransactionAborted):
    """Aborted as a deadlock victim (waits-for cycle)."""

    def __init__(self, tid: int, cycle: list[int]) -> None:
        super().__init__(tid, f"deadlock, cycle {cycle}")
        self.cycle = cycle


class LockTimeout(TransactionAborted):
    """Aborted after waiting too long for a lock.

    A per-shard lock manager only sees its own waits-for graph, so a
    cycle spanning shards is invisible to local deadlock detection; a
    bounded lock wait converts that silent stall into a definite clean
    abort the caller can retry — the classic distributed-deadlock
    avoidance every sharded DBMS ships.
    """

    def __init__(self, tid: int, resource: object, waited_ms: float) -> None:
        super().__init__(
            tid, f"lock wait on {resource!r} exceeded {waited_ms}ms"
        )
        self.resource = resource
        self.waited_ms = waited_ms


class WriteConflict(TransactionAborted):
    """Snapshot-isolation first-committer-wins validation failed."""

    def __init__(self, tid: int, table: str, key: object) -> None:
        super().__init__(tid, f"write-write conflict on {table}[{key!r}]")
        self.table = table
        self.key = key


class DuplicateKey(TransactionError):
    """Insert with a primary key that already exists."""

    def __init__(self, table: str, key: object) -> None:
        super().__init__(f"duplicate key {key!r} in table {table!r}")
        self.table = table
        self.key = key


class NoSuchTable(TransactionError):
    """Operation on an undefined table."""


class InvalidTransactionState(TransactionError):
    """Operation not allowed in the transaction's current status."""


class FencedOut(TransactionError):
    """A deposed leader's write was refused acknowledgement.

    The engine saw a fencing token (replication term) higher than the one
    the write was proposed under: the entry still installs if the log
    committed it, but the proposing leader must not report success — its
    leadership ended before it could learn the outcome.
    """

    def __init__(self, gid: object, token: int, fence: int) -> None:
        super().__init__(
            f"replicated txn {gid!r} proposed under term {token} but the "
            f"engine has seen term {fence}: ack refused (fenced out)"
        )
        self.gid = gid
        self.token = token
        self.fence = fence

"""The transactional engine: tables, MVCC, isolation levels, WAL, recovery.

Updates are *deferred*: a transaction buffers writes privately and installs
them at commit, so aborts need no undo and recovery is redo-only
("ARIES-lite").  Three isolation levels exhibit their textbook behaviour:

- ``READ_COMMITTED`` — reads see the latest committed version; lost updates
  are possible (the developer-visible anomaly of paper §3.1's microservice
  frameworks, which inherit "the configured isolation level").
- ``SNAPSHOT`` — MVCC reads as of transaction begin plus first-committer-
  wins validation; prevents lost updates, permits write skew.
- ``SERIALIZABLE`` — strict two-phase locking with intention locks and
  table-granularity scan locks (phantom protection) plus deadlock
  detection.

The XA-style ``prepare``/``commit_prepared``/``abort_prepared`` methods make
any database instance a two-phase-commit participant; between prepare and
the decision the transaction's locks remain held — the blocking window the
paper blames for 2PC's performance cost (§4.2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Optional

from repro.db.errors import (
    DuplicateKey,
    InvalidTransactionState,
    NoSuchTable,
    TransactionAborted,
    WriteConflict,
)
from repro.db.locks import LockManager, LockMode
from repro.sim import Environment
from repro.storage.wal import WriteAheadLog

_DELETED = None  # a version with row=None is a deletion marker


class IsolationLevel(enum.Enum):
    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """Handle for an in-flight transaction."""

    tid: int
    isolation: IsolationLevel
    begin_seq: int
    status: TxnStatus = TxnStatus.ACTIVE
    writes: dict[tuple[str, Hashable], Optional[dict]] = field(default_factory=dict)
    reads: set[tuple[str, Hashable]] = field(default_factory=set)

    def require(self, *statuses: TxnStatus) -> None:
        if self.status not in statuses:
            raise InvalidTransactionState(
                f"txn {self.tid} is {self.status.value}, "
                f"needs {[s.value for s in statuses]}"
            )


class _Table:
    """Versioned heap with primary key and secondary indexes.

    Secondary indexes come in two flavours: hash (equality lookups) and
    ordered (range lookups over a sorted column directory).
    """

    def __init__(self, name: str, primary_key: str) -> None:
        self.name = name
        self.primary_key = primary_key
        self.versions: dict[Hashable, list[tuple[int, Optional[dict]]]] = {}
        self.indexes: dict[str, dict[Any, set[Hashable]]] = {}
        self.ordered_indexes: set[str] = set()  # columns with sorted access
        self._sorted_values: dict[str, list[Any]] = {}

    def latest(self, key: Hashable) -> Optional[dict]:
        chain = self.versions.get(key)
        return chain[-1][1] if chain else None

    def latest_seq(self, key: Hashable) -> int:
        chain = self.versions.get(key)
        return chain[-1][0] if chain else 0

    def read_at(self, key: Hashable, seq: int) -> Optional[dict]:
        chain = self.versions.get(key)
        if not chain:
            return None
        for version_seq, row in reversed(chain):
            if version_seq <= seq:
                return row
        return None

    def install(self, key: Hashable, row: Optional[dict], seq: int) -> None:
        old = self.latest(key)
        self.versions.setdefault(key, []).append((seq, row))
        for column, index in self.indexes.items():
            if old is not None and column in old:
                old_value = old[column]
                bucket = index.get(old_value, set())
                bucket.discard(key)
                if not bucket and column in self.ordered_indexes:
                    self._sorted_remove(column, old_value)
                    index.pop(old_value, None)
            if row is not None and column in row:
                value = row[column]
                if value not in index and column in self.ordered_indexes:
                    self._sorted_insert(column, value)
                index.setdefault(value, set()).add(key)

    def _sorted_insert(self, column: str, value: Any) -> None:
        import bisect

        directory = self._sorted_values.setdefault(column, [])
        bisect.insort(directory, value)

    def _sorted_remove(self, column: str, value: Any) -> None:
        import bisect

        directory = self._sorted_values.get(column, [])
        position = bisect.bisect_left(directory, value)
        if position < len(directory) and directory[position] == value:
            del directory[position]

    def range_values(self, column: str, low: Any, high: Any) -> list[Any]:
        """Index values in ``[low, high)`` (ordered index required)."""
        import bisect

        directory = self._sorted_values.get(column, [])
        start = bisect.bisect_left(directory, low)
        stop = bisect.bisect_left(directory, high)
        return directory[start:stop]

    def keys(self) -> list[Hashable]:
        return list(self.versions.keys())

    def create_index(self, column: str, ordered: bool = False) -> None:
        index: dict[Any, set[Hashable]] = {}
        for key in self.versions:
            row = self.latest(key)
            if row is not None and column in row:
                index.setdefault(row[column], set()).add(key)
        self.indexes[column] = index
        if ordered:
            self.ordered_indexes.add(column)
            self._sorted_values[column] = sorted(index)


@dataclass
class DbStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    reads: int = 0
    writes: int = 0


class Database:
    """A single-node transactional database instance.

    All data-access methods are generators (they may block on locks) and are
    meant to be driven with ``yield from`` inside simulation processes::

        txn = db.begin(IsolationLevel.SERIALIZABLE)
        row = yield from db.get(txn, "accounts", "alice")
        yield from db.put(txn, "accounts", "alice", {**row, "balance": 0})
        yield from db.commit(txn)
    """

    def __init__(self, env: Environment, name: str = "db") -> None:
        self.env = env
        self.name = name
        self.locks = LockManager(env)
        self.wal = WriteAheadLog(name=f"{name}.wal")
        self._tables: dict[str, _Table] = {}
        self._txn_ids = itertools.count(1)
        self._commit_seq = 0
        self._active: dict[int, Transaction] = {}
        self._in_doubt: dict[int, dict[tuple[str, Hashable], Optional[dict]]] = {}
        self.stats = DbStats()

    # -- schema ---------------------------------------------------------------

    def create_table(self, name: str, primary_key: str = "id") -> None:
        """Define a table (idempotent re-creation is an error)."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        self._tables[name] = _Table(name, primary_key)
        self.wal.append("create_table", (name, primary_key))
        self.wal.flush()

    def create_index(self, table: str, column: str, ordered: bool = False) -> None:
        """Build a secondary index on ``column``.

        ``ordered=True`` additionally maintains a sorted value directory,
        enabling :meth:`range_lookup`.
        """
        self._table(table).create_index(column, ordered=ordered)
        self.wal.append("create_index", (table, column, ordered))
        self.wal.flush()

    def _table(self, name: str) -> _Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTable(name) from None

    @property
    def tables(self) -> list[str]:
        return list(self._tables)

    # -- transaction lifecycle ---------------------------------------------------

    def begin(self, isolation: IsolationLevel = IsolationLevel.SERIALIZABLE) -> Transaction:
        """Start a transaction at the current snapshot."""
        txn = Transaction(
            tid=next(self._txn_ids),
            isolation=isolation,
            begin_seq=self._commit_seq,
        )
        self._active[txn.tid] = txn
        self.stats.begun += 1
        return txn

    def _lock(self, txn: Transaction, resource: Hashable, mode: LockMode) -> Generator:
        try:
            grant = self.locks.acquire(txn.tid, resource, mode)
            if grant.done:
                yield grant
            else:
                # Blocked: the 2PL wait the paper blames for 2PC's cost
                # (§4.2), surfaced as a span only when it actually happens.
                tracer = self.env.tracer
                span = tracer.begin(
                    "db.lock_wait",
                    resource=repr(resource),
                    mode=mode.value,
                    tid=txn.tid,
                )
                try:
                    yield grant
                except TransactionAborted:
                    span.annotate(outcome="deadlock")
                    raise
                finally:
                    tracer.end(span)
        except TransactionAborted:
            self.abort(txn)
            raise

    # -- reads --------------------------------------------------------------------

    def get(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        """Read one row (or ``None``); blocks only under SERIALIZABLE."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        self.stats.reads += 1
        if (table, key) in txn.writes:
            row = txn.writes[(table, key)]
            return dict(row) if row is not None else None
        txn.reads.add((table, key))
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.IS)
            yield from self._lock(txn, ("row", table, key), LockMode.S)
            row = tbl.latest(key)
        elif txn.isolation is IsolationLevel.SNAPSHOT:
            row = tbl.read_at(key, txn.begin_seq)
        else:  # READ_COMMITTED
            row = tbl.latest(key)
        return dict(row) if row is not None else None

    def scan(
        self,
        txn: Transaction,
        table: str,
        predicate: Optional[Callable[[dict], bool]] = None,
    ) -> Generator:
        """Return all visible rows (optionally filtered); table-locked
        under SERIALIZABLE for phantom protection."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        self.stats.reads += 1
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.S)
        rows: dict[Hashable, Optional[dict]] = {}
        for key in tbl.keys():
            if txn.isolation is IsolationLevel.SNAPSHOT:
                rows[key] = tbl.read_at(key, txn.begin_seq)
            else:
                rows[key] = tbl.latest(key)
        for (wtable, wkey), wrow in txn.writes.items():
            if wtable == table:
                rows[wkey] = wrow
        result = [dict(r) for r in rows.values() if r is not None]
        if predicate is not None:
            result = [r for r in result if predicate(r)]
        return result

    def lookup(self, txn: Transaction, table: str, column: str, value: Any) -> Generator:
        """Equality lookup through a secondary index.

        The index reflects the *latest committed* state; under SNAPSHOT
        isolation a key whose indexed value changed after this
        transaction's snapshot may be missed (a standard limitation of
        latest-state indexes over MVCC heaps).
        """
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        if column not in tbl.indexes:
            raise ValueError(f"no index on {table}.{column}")
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.S)
        keys = set(tbl.indexes[column].get(value, set()))
        rows = []
        for key in sorted(keys, key=repr):
            row = yield from self.get(txn, table, key)
            if row is not None and row.get(column) == value:
                rows.append(row)
        for (wtable, wkey), wrow in txn.writes.items():
            if wtable == table and wrow is not None and wrow.get(column) == value:
                if wkey not in keys:
                    rows.append(dict(wrow))
        return rows

    def range_lookup(
        self, txn: Transaction, table: str, column: str, low: Any, high: Any
    ) -> Generator:
        """Rows with ``low <= row[column] < high`` via an ordered index.

        Same visibility caveats as :meth:`lookup` (latest-state index over
        the MVCC heap); SERIALIZABLE takes a table lock for phantom
        protection, matching :meth:`scan`.
        """
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        if column not in tbl.ordered_indexes:
            raise ValueError(f"no ordered index on {table}.{column}")
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.S)
        rows: list[dict] = []
        seen_keys: set[Hashable] = set()
        for value in tbl.range_values(column, low, high):
            for key in sorted(tbl.indexes[column].get(value, set()), key=repr):
                row = yield from self.get(txn, table, key)
                if row is not None and low <= row.get(column) < high:
                    rows.append(row)
                    seen_keys.add(key)
        for (wtable, wkey), wrow in txn.writes.items():
            if (wtable == table and wkey not in seen_keys and wrow is not None
                    and column in wrow and low <= wrow[column] < high):
                rows.append(dict(wrow))
        return rows

    # -- writes -------------------------------------------------------------------

    def _write_locks(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        yield from self._lock(txn, ("table", table), LockMode.IX)
        yield from self._lock(txn, ("row", table, key), LockMode.X)

    def insert(self, txn: Transaction, table: str, row: dict) -> Generator:
        """Insert a new row; raises :class:`DuplicateKey` if visible."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        key = row[tbl.primary_key]
        yield from self._write_locks(txn, table, key)
        if (table, key) in txn.writes:
            existing = txn.writes[(table, key)]
        else:
            existing = tbl.latest(key)
        if existing is not None:
            self.abort(txn)
            raise DuplicateKey(table, key)
        txn.writes[(table, key)] = dict(row)
        self.stats.writes += 1

    def put(self, txn: Transaction, table: str, key: Hashable, row: dict) -> Generator:
        """Insert-or-overwrite a full row."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        row = dict(row)
        row.setdefault(tbl.primary_key, key)
        yield from self._write_locks(txn, table, key)
        txn.writes[(table, key)] = row
        self.stats.writes += 1

    def update(self, txn: Transaction, table: str, key: Hashable, changes: dict) -> Generator:
        """Merge ``changes`` into an existing row; returns the new row.

        Raises ``KeyError`` if the row is not visible to this transaction.
        """
        current = yield from self.get(txn, table, key)
        yield from self._write_locks(txn, table, key)
        if current is None:
            self.abort(txn)
            raise KeyError(f"{table}[{key!r}] does not exist")
        current.update(changes)
        txn.writes[(table, key)] = current
        self.stats.writes += 1
        return dict(current)

    def delete(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        """Delete a row (no-op if absent)."""
        txn.require(TxnStatus.ACTIVE)
        self._table(table)
        yield from self._write_locks(txn, table, key)
        txn.writes[(table, key)] = _DELETED
        self.stats.writes += 1

    # -- commit / abort ---------------------------------------------------------

    def _validate(self, txn: Transaction) -> None:
        """Snapshot isolation: first committer wins on each written key."""
        if txn.isolation is not IsolationLevel.SNAPSHOT:
            return
        for (table, key) in txn.writes:
            if self._table(table).latest_seq(key) > txn.begin_seq:
                self.stats.conflicts += 1
                error = WriteConflict(txn.tid, table, key)
                self.abort(txn)
                raise error

    def _log_writes(self, txn: Transaction, decision: str) -> None:
        for (table, key), row in txn.writes.items():
            self.wal.append("write", (txn.tid, table, key, row))
        self.wal.append(decision, (txn.tid,))
        self.wal.flush()

    def _install(self, writes: dict[tuple[str, Hashable], Optional[dict]]) -> int:
        self._commit_seq += 1
        seq = self._commit_seq
        for (table, key), row in writes.items():
            self._table(table).install(key, row, seq)
        return seq

    def commit(self, txn: Transaction) -> Generator:
        """Validate, log durably, install, and release locks."""
        txn.require(TxnStatus.ACTIVE)
        self._validate(txn)
        self._log_writes(txn, "commit")
        self._install(txn.writes)
        txn.status = TxnStatus.COMMITTED
        self._finish(txn)
        self.stats.committed += 1
        return
        yield  # pragma: no cover - generator protocol only

    def abort(self, txn: Transaction) -> None:
        """Roll back: buffered writes are simply discarded."""
        if txn.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            return
        self.wal.append("abort", (txn.tid,))
        txn.status = TxnStatus.ABORTED
        self._finish(txn)
        self.stats.aborted += 1

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.tid)
        self._active.pop(txn.tid, None)

    # -- XA participant interface (used by 2PC coordinators) ----------------------

    def prepare(self, txn: Transaction) -> Generator:
        """Phase one: validate and make the writes durable; keep locks."""
        txn.require(TxnStatus.ACTIVE)
        self._validate(txn)
        self._log_writes(txn, "prepare")
        txn.status = TxnStatus.PREPARED
        self._in_doubt[txn.tid] = dict(txn.writes)
        return
        yield  # pragma: no cover

    def commit_prepared(self, txn: Transaction) -> None:
        """Phase two, commit decision."""
        txn.require(TxnStatus.PREPARED)
        self.wal.append("commit", (txn.tid,))
        self.wal.flush()
        self._install(self._in_doubt.pop(txn.tid))
        txn.status = TxnStatus.COMMITTED
        self._finish(txn)
        self.stats.committed += 1

    def abort_prepared(self, txn: Transaction) -> None:
        """Phase two, abort decision."""
        txn.require(TxnStatus.PREPARED)
        self.wal.append("abort", (txn.tid,))
        self.wal.flush()
        self._in_doubt.pop(txn.tid, None)
        txn.status = TxnStatus.ABORTED
        self._finish(txn)
        self.stats.aborted += 1

    def in_doubt(self) -> list[int]:
        """Transaction ids prepared but not yet decided (blocking!)."""
        return list(self._in_doubt)

    # -- crash / recovery ----------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state; the WAL keeps its flushed prefix."""
        self.wal.crash()
        self._tables.clear()
        self._active.clear()
        self._in_doubt.clear()
        self.locks = LockManager(self.env)

    def recover(self) -> None:
        """Redo recovery: replay the durable WAL into fresh tables.

        Committed transactions are re-installed in log order; prepared-but-
        undecided transactions become in-doubt again, awaiting their
        coordinator (:meth:`resolve_in_doubt`).
        """
        self._tables.clear()
        self._commit_seq = 0
        pending: dict[int, dict[tuple[str, Hashable], Optional[dict]]] = {}
        self._in_doubt.clear()
        for record in self.wal.durable_records():
            if record.kind == "create_table":
                name, primary_key = record.payload
                self._tables[name] = _Table(name, primary_key)
            elif record.kind == "create_index":
                table, column, *rest = record.payload
                ordered = rest[0] if rest else False
                self._table(table).create_index(column, ordered=ordered)
            elif record.kind == "write":
                tid, table, key, row = record.payload
                pending.setdefault(tid, {})[(table, key)] = row
            elif record.kind == "commit":
                (tid,) = record.payload
                writes = pending.pop(tid, None)
                if writes is None:
                    writes = self._in_doubt.pop(tid, {})
                self._install(writes)
            elif record.kind == "abort":
                (tid,) = record.payload
                pending.pop(tid, None)
                self._in_doubt.pop(tid, None)
            elif record.kind == "prepare":
                (tid,) = record.payload
                self._in_doubt[tid] = pending.pop(tid, {})
        # A prepared transaction voted yes: its writes stay latent and its
        # locks stay held until the coordinator's decision.  The lock table
        # died with the crash, so re-acquire here — otherwise a conflicting
        # writer could commit over rows the in-doubt transaction will
        # install at resolve time (a lost update).  Prepared transactions
        # held compatible locks before the crash, so every grant is
        # immediate against the fresh lock manager.
        for tid, writes in self._in_doubt.items():
            for table, key in writes:
                self.locks.acquire(tid, ("table", table), LockMode.IX)
                self.locks.acquire(tid, ("row", table, key), LockMode.X)

    def resolve_in_doubt(self, tid: int, commit: bool) -> None:
        """Coordinator's decision for a recovered in-doubt transaction."""
        writes = self._in_doubt.pop(tid, None)
        if writes is None:
            return
        self.wal.append("commit" if commit else "abort", (tid,))
        self.wal.flush()
        if commit:
            self._install(writes)
        self.locks.release_all(tid)

    # -- non-transactional helpers (test/bench setup) -------------------------------

    def load(self, table: str, rows: list[dict]) -> None:
        """Bulk-load committed rows outside any transaction (setup only)."""
        tbl = self._table(table)
        self._commit_seq += 1
        for row in rows:
            self.wal.append("write", (0, table, row[tbl.primary_key], dict(row)))
            tbl.install(row[tbl.primary_key], dict(row), self._commit_seq)
        self.wal.append("commit", (0,))
        self.wal.flush()

    def read_latest(self, table: str, key: Hashable) -> Optional[dict]:
        """Dirty read of the latest committed version (metrics/invariants)."""
        row = self._table(table).latest(key)
        return dict(row) if row is not None else None

    def all_rows(self, table: str) -> list[dict]:
        """All live committed rows (invariant checking)."""
        tbl = self._table(table)
        rows = (tbl.latest(key) for key in tbl.keys())
        return [dict(r) for r in rows if r is not None]

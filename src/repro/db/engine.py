"""The transactional engine: tables, MVCC, isolation levels, WAL, recovery.

Updates are *deferred*: a transaction buffers writes privately and installs
them at commit, so aborts need no undo and recovery is redo-only
("ARIES-lite").  Three isolation levels exhibit their textbook behaviour:

- ``READ_COMMITTED`` — reads see the latest committed version; lost updates
  are possible (the developer-visible anomaly of paper §3.1's microservice
  frameworks, which inherit "the configured isolation level").
- ``SNAPSHOT`` — MVCC reads as of transaction begin plus first-committer-
  wins validation; prevents lost updates, permits write skew.
- ``SERIALIZABLE`` — strict two-phase locking with intention locks and
  table-granularity scan locks (phantom protection) plus deadlock
  detection.

The XA-style ``prepare``/``commit_prepared``/``abort_prepared`` methods make
any database instance a two-phase-commit participant; between prepare and
the decision the transaction's locks remain held — the blocking window the
paper blames for 2PC's performance cost (§4.2).

Three storage fast paths ride under the engine's semantics (see
``docs/PERFORMANCE.md`` § "Storage engine"); each has a reference mode and
all are proven behaviour-preserving by the golden-equivalence suite:

- **version-chain GC** (``gc=True``): versions superseded at-or-below the
  oldest active snapshot's ``begin_seq`` are pruned, bounding chain length
  on hot keys.  The newest version at-or-below the horizon is always kept,
  and keys are never dropped, so heap iteration order is identical with GC
  on or off.
- **group commit** (``group_commit=True``): commits landing in the same
  virtual instant share one WAL ``flush()`` — the physical fsync is
  deferred to an end-of-instant callback and the whole group rides on one
  shared flush future (:meth:`Database.flush_barrier`).  A crash before
  the group fsync loses the *whole* group (prefix-consistent), never an
  interior subset.
- **copy elision** (``copy_reads=False``): reads return the committed row
  object itself instead of a defensive ``dict()`` copy.  Committed rows
  are frozen as :class:`Row` at install time; callers must not mutate
  returned rows (mutation raises ``TypeError``).

A fourth, **off by default**: load-adaptive windows (``adaptive=True``).
A :class:`repro.flow.LoadSignal` (the same EWMA fold the cluster
rebalancer uses) tracks commit rate; past a knee, the group-commit fsync
callback is scheduled ``flush_window_ms`` into the future instead of at
end-of-instant — commits from *several* instants share one fsync — and
the inline GC chain threshold stretches up to 4x so version pruning is
deferred off the hot path.  Commit acknowledgements stay synchronous
either way, so results and result tables are identical with the flag on
or off; only fsync count and barrier timing change.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Iterable, KeysView, Optional

from repro.db.errors import (
    DuplicateKey,
    FencedOut,
    InvalidTransactionState,
    LockTimeout,
    NoSuchTable,
    TransactionAborted,
    WriteConflict,
)
from repro.db.locks import LockManager, LockMode
from repro.flow import LoadSignal
from repro.sim import Environment
from repro.sim.events import any_of
from repro.storage.wal import WriteAheadLog

_DELETED = None  # a version with row=None is a deletion marker


class Row(dict):
    """A committed row: logically immutable once installed in the heap.

    Installing frozen rows is what makes read-path copy elision safe — the
    same object can be handed to every reader (and shared with the WAL
    record that logged it) because nobody can change it in place.  Writers
    are unaffected: ``put``/``update``/``insert`` already buffer fresh
    dicts, and any caller who wants a mutable view takes ``dict(row)``.
    """

    __slots__ = ()

    def _immutable(self, *args: Any, **kwargs: Any) -> Any:
        raise TypeError(
            "committed rows are immutable; copy with dict(row) before mutating"
        )

    __setitem__ = _immutable  # type: ignore[assignment]
    __delitem__ = _immutable  # type: ignore[assignment]
    __ior__ = _immutable  # type: ignore[assignment]
    clear = _immutable  # type: ignore[assignment]
    pop = _immutable  # type: ignore[assignment]
    popitem = _immutable  # type: ignore[assignment]
    setdefault = _immutable  # type: ignore[assignment]
    update = _immutable  # type: ignore[assignment]

    def __reduce__(self) -> tuple:
        # Pickle/deepcopy as a plain dict: copies are for mutating.
        return (dict, (dict(self),))


class IsolationLevel(enum.Enum):
    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """Handle for an in-flight transaction."""

    tid: int
    isolation: IsolationLevel
    begin_seq: int
    status: TxnStatus = TxnStatus.ACTIVE
    writes: dict[tuple[str, Hashable], Optional[dict]] = field(default_factory=dict)
    reads: set[tuple[str, Hashable]] = field(default_factory=set)

    def require(self, *statuses: TxnStatus) -> None:
        if self.status not in statuses:
            raise InvalidTransactionState(
                f"txn {self.tid} is {self.status.value}, "
                f"needs {[s.value for s in statuses]}"
            )


class _Table:
    """Versioned heap with primary key and secondary indexes.

    Secondary indexes come in two flavours: hash (equality lookups) and
    ordered (range lookups over a sorted column directory).
    """

    def __init__(self, name: str, primary_key: str) -> None:
        self.name = name
        self.primary_key = primary_key
        self.versions: dict[Hashable, list[tuple[int, Optional[dict]]]] = {}
        self.indexes: dict[str, dict[Any, set[Hashable]]] = {}
        self.ordered_indexes: set[str] = set()  # columns with sorted access
        self._sorted_values: dict[str, list[Any]] = {}

    def latest(self, key: Hashable) -> Optional[dict]:
        chain = self.versions.get(key)
        return chain[-1][1] if chain else None

    def latest_seq(self, key: Hashable) -> int:
        chain = self.versions.get(key)
        return chain[-1][0] if chain else 0

    def read_at(self, key: Hashable, seq: int) -> Optional[dict]:
        chain = self.versions.get(key)
        if not chain:
            return None
        for version_seq, row in reversed(chain):
            if version_seq <= seq:
                return row
        return None

    def install(self, key: Hashable, row: Optional[dict], seq: int) -> None:
        if row is not None and row.__class__ is not Row:
            row = Row(row)
        old = self.latest(key)
        self.versions.setdefault(key, []).append((seq, row))
        for column, index in self.indexes.items():
            if old is not None and column in old:
                old_value = old[column]
                bucket = index.get(old_value, set())
                bucket.discard(key)
                if not bucket and column in self.ordered_indexes:
                    self._sorted_remove(column, old_value)
                    index.pop(old_value, None)
            if row is not None and column in row:
                value = row[column]
                if value not in index and column in self.ordered_indexes:
                    self._sorted_insert(column, value)
                index.setdefault(value, set()).add(key)

    def prune(self, key: Hashable, horizon: int) -> int:
        """Drop versions superseded at-or-below ``horizon`` (MVCC GC).

        Keeps the newest version at-or-below the horizon — exactly what the
        oldest live snapshot reads — plus everything newer.  The key itself
        is never dropped (even when only a tombstone remains), so heap
        iteration order is identical with GC on or off.  Returns the number
        of versions dropped.
        """
        chain = self.versions.get(key)
        if not chain or len(chain) == 1:
            return 0
        cut = 0
        for index, (version_seq, _row) in enumerate(chain):
            if version_seq <= horizon:
                cut = index
            else:
                break
        if not cut:
            return 0
        del chain[:cut]
        return cut

    def _sorted_insert(self, column: str, value: Any) -> None:
        import bisect

        directory = self._sorted_values.setdefault(column, [])
        bisect.insort(directory, value)

    def _sorted_remove(self, column: str, value: Any) -> None:
        import bisect

        directory = self._sorted_values.get(column, [])
        position = bisect.bisect_left(directory, value)
        if position < len(directory) and directory[position] == value:
            del directory[position]

    def range_values(self, column: str, low: Any, high: Any) -> list[Any]:
        """Index values in ``[low, high)`` (ordered index required)."""
        import bisect

        directory = self._sorted_values.get(column, [])
        start = bisect.bisect_left(directory, low)
        stop = bisect.bisect_left(directory, high)
        return directory[start:stop]

    def keys(self) -> KeysView[Hashable]:
        """Live key view (don't mutate the table while iterating)."""
        return self.versions.keys()

    def version_count(self) -> int:
        """Total retained versions across every chain (GC accounting)."""
        return sum(len(chain) for chain in self.versions.values())

    def create_index(self, column: str, ordered: bool = False) -> None:
        index: dict[Any, set[Hashable]] = {}
        for key in self.versions:
            row = self.latest(key)
            if row is not None and column in row:
                index.setdefault(row[column], set()).add(key)
        self.indexes[column] = index
        if ordered:
            self.ordered_indexes.add(column)
            self._sorted_values[column] = sorted(index)


@dataclass
class DbStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    reads: int = 0
    writes: int = 0
    #: mirror of ``wal.flush_count`` — physical fsyncs issued by this engine
    flush_count: int = 0
    #: group-commit batches fsynced (each saved ``size - 1`` flushes)
    group_flushes: int = 0
    #: commits that rode a shared group fsync
    grouped_commits: int = 0
    #: versions dropped by the MVCC chain GC (inline + explicit passes)
    gc_pruned_versions: int = 0
    #: explicit :meth:`Database.gc` sweeps
    gc_passes: int = 0
    #: retained version tuples across all tables (gauge)
    live_versions: int = 0
    #: group fsyncs deferred past end-of-instant by the adaptive window
    adaptive_deferrals: int = 0
    #: replicated-apply acks refused because the proposal term was fenced
    fenced_acks: int = 0
    #: replicated commands (commit/prepare/decide entries) applied
    replicated_applies: int = 0


class _CommitGroup:
    """Commits from one virtual instant sharing a single WAL fsync."""

    __slots__ = ("future", "size", "last_lsn", "crashed")

    def __init__(self, future: Any) -> None:
        self.future = future
        self.size = 0
        self.last_lsn = 0
        self.crashed = False


class Database:
    """A single-node transactional database instance.

    All data-access methods are generators (they may block on locks) and are
    meant to be driven with ``yield from`` inside simulation processes::

        txn = db.begin(IsolationLevel.SERIALIZABLE)
        row = yield from db.get(txn, "accounts", "alice")
        yield from db.put(txn, "accounts", "alice", {**row, "balance": 0})
        yield from db.commit(txn)

    The keyword-only flags select the storage fast paths (see the module
    docstring); each default is the optimized mode and each ``False``/
    ``True`` flip is the reference mode the golden-equivalence suite
    compares against.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "db",
        *,
        gc: bool = True,
        gc_chain_threshold: int = 8,
        group_commit: bool = True,
        copy_reads: bool = False,
        adaptive: bool = False,
        flush_window_ms: float = 2.0,
        load_knee: float = 8.0,
        lock_wait_timeout_ms: Optional[float] = None,
        fast_grants: bool = True,
    ) -> None:
        self.env = env
        self.name = name
        self.locks = LockManager(env)
        self.wal = WriteAheadLog(name=f"{name}.wal")
        self._tables: dict[str, _Table] = {}
        self._txn_ids = itertools.count(1)
        self._commit_seq = 0
        self._active: dict[int, Transaction] = {}
        self._in_doubt: dict[int, dict[tuple[str, Hashable], Optional[dict]]] = {}
        self._gc = gc
        self._gc_chain_threshold = max(1, gc_chain_threshold)
        #: uncontended lock-acquire fast path: an already-granted lock is
        #: consumed without suspending the process (no ready-queue round
        #: trip).  ``False`` is the reference mode that always yields.
        self._fast_grants = fast_grants
        #: read-only commit fast path: a transaction with no writes has no
        #: redo to log, so its commit record, group-flush membership, and
        #: fsync are elided.  Shares the ``fast_grants`` reference switch
        #: so ``fast_grants=False`` restores the full reference engine.
        self._elide_readonly_commits = fast_grants
        self._group_commit = group_commit
        self._copy_reads = copy_reads
        self._adaptive = adaptive
        if lock_wait_timeout_ms is not None and lock_wait_timeout_ms <= 0:
            raise ValueError("lock_wait_timeout_ms must be positive")
        #: bounded lock waits (None = wait forever, rely on local deadlock
        #: detection).  Sharded deployments set this: a waits-for cycle
        #: spanning shards is invisible to any one shard's lock manager.
        self._lock_wait_timeout_ms = lock_wait_timeout_ms
        if flush_window_ms < 0:
            raise ValueError("flush_window_ms must be non-negative")
        if load_knee <= 0:
            raise ValueError("load_knee must be positive")
        self._flush_window_ms = flush_window_ms
        self._load_knee = load_knee
        #: commit-rate signal; only fed (and only read) in adaptive mode, so
        #: the default engine keeps an untouched event schedule.
        self.load_signal: Optional[LoadSignal] = (
            LoadSignal(env, window_ms=10.0, alpha=0.5) if adaptive else None
        )
        self._group: Optional[_CommitGroup] = None
        #: highest replication term observed (fencing token watermark)
        self._fence = 0
        #: replicated proposals staged on this engine, awaiting their log
        #: entry's fate; keyed by the globally unique gid
        self._repl_pending: dict[Hashable, Transaction] = {}
        self.stats = DbStats()

    # -- schema ---------------------------------------------------------------

    def create_table(self, name: str, primary_key: str = "id") -> None:
        """Define a table (idempotent re-creation is an error)."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        self._tables[name] = _Table(name, primary_key)
        self.wal.append("create_table", (name, primary_key))
        self._flush_wal()

    def create_index(self, table: str, column: str, ordered: bool = False) -> None:
        """Build a secondary index on ``column``.

        ``ordered=True`` additionally maintains a sorted value directory,
        enabling :meth:`range_lookup`.
        """
        self._table(table).create_index(column, ordered=ordered)
        self.wal.append("create_index", (table, column, ordered))
        self._flush_wal()

    def _table(self, name: str) -> _Table:
        try:
            return self._tables[name]
        except KeyError:
            raise NoSuchTable(name) from None

    @property
    def tables(self) -> list[str]:
        return list(self._tables)

    # -- transaction lifecycle ---------------------------------------------------

    def begin(self, isolation: IsolationLevel = IsolationLevel.SERIALIZABLE) -> Transaction:
        """Start a transaction at the current snapshot."""
        txn = Transaction(
            tid=next(self._txn_ids),
            isolation=isolation,
            begin_seq=self._commit_seq,
        )
        self._active[txn.tid] = txn
        self.stats.begun += 1
        return txn

    def _lock(self, txn: Transaction, resource: Hashable, mode: LockMode) -> Generator:
        try:
            grant = self.locks.acquire(txn.tid, resource, mode)
            if grant.done:
                # Uncontended: the grant resolved synchronously, so there is
                # nothing to wait for.  Yielding it anyway (reference mode)
                # parks the process for one ready-queue round trip per
                # acquire — the single largest event source in B1.
                if not self._fast_grants:
                    yield grant
                elif grant._exc is not None:
                    yield grant  # deliver the failure via the kernel
            else:
                # Blocked: the 2PL wait the paper blames for 2PC's cost
                # (§4.2), surfaced as a span only when it actually happens.
                tracer = self.env.tracer
                span = tracer.begin(
                    "db.lock_wait",
                    resource=repr(resource),
                    mode=mode.value,
                    tid=txn.tid,
                )
                try:
                    if self._lock_wait_timeout_ms is None:
                        yield grant
                    else:
                        winner = yield any_of(self.env, [
                            grant,
                            self.env.timeout(
                                self._lock_wait_timeout_ms, "lock-timeout"
                            ),
                        ])
                        if winner[0] == 1:
                            raise LockTimeout(
                                txn.tid, resource, self._lock_wait_timeout_ms
                            )
                except LockTimeout:
                    span.annotate(outcome="timeout")
                    raise
                except TransactionAborted:
                    span.annotate(outcome="deadlock")
                    raise
                finally:
                    tracer.end(span)
        except TransactionAborted:
            self.abort(txn)
            raise

    # -- reads --------------------------------------------------------------------

    def _out(self, row: Optional[dict]) -> Optional[dict]:
        """Hand a row to the caller: a defensive copy only in reference mode."""
        if row is None:
            return None
        return dict(row) if self._copy_reads else row

    def get(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        """Read one row (or ``None``); blocks only under SERIALIZABLE."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        self.stats.reads += 1
        if (table, key) in txn.writes:
            return self._out(txn.writes[(table, key)])
        txn.reads.add((table, key))
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.IS)
            yield from self._lock(txn, ("row", table, key), LockMode.S)
            row = tbl.latest(key)
        elif txn.isolation is IsolationLevel.SNAPSHOT:
            row = tbl.read_at(key, txn.begin_seq)
        else:  # READ_COMMITTED
            row = tbl.latest(key)
        return self._out(row)

    def scan(
        self,
        txn: Transaction,
        table: str,
        predicate: Optional[Callable[[dict], bool]] = None,
    ) -> Generator:
        """Return all visible rows (optionally filtered); table-locked
        under SERIALIZABLE for phantom protection."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        self.stats.reads += 1
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.S)
        snapshot = txn.isolation is IsolationLevel.SNAPSHOT
        begin_seq = txn.begin_seq
        out = self._out
        result: list[dict] = []
        overrides: Optional[dict[Hashable, Optional[dict]]] = None
        if txn.writes:
            overrides = {
                wkey: wrow
                for (wtable, wkey), wrow in txn.writes.items()
                if wtable == table
            }
        if overrides:
            for key, chain in tbl.versions.items():
                if key in overrides:
                    row = overrides.pop(key)
                elif snapshot:
                    row = tbl.read_at(key, begin_seq)
                else:
                    row = chain[-1][1]
                if row is not None:
                    result.append(out(row))
            for wrow in overrides.values():
                if wrow is not None:
                    result.append(out(wrow))
        else:
            for chain in tbl.versions.values():
                if snapshot:
                    for version_seq, row in reversed(chain):
                        if version_seq <= begin_seq:
                            break
                    else:
                        row = None
                else:
                    row = chain[-1][1]
                if row is not None:
                    result.append(out(row))
        if predicate is not None:
            result = [r for r in result if predicate(r)]
        return result

    def lookup(self, txn: Transaction, table: str, column: str, value: Any) -> Generator:
        """Equality lookup through a secondary index.

        The index reflects the *latest committed* state; under SNAPSHOT
        isolation a key whose indexed value changed after this
        transaction's snapshot may be missed (a standard limitation of
        latest-state indexes over MVCC heaps).
        """
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        if column not in tbl.indexes:
            raise ValueError(f"no index on {table}.{column}")
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.S)
        keys = set(tbl.indexes[column].get(value, set()))
        rows = []
        for key in sorted(keys, key=repr):
            row = yield from self.get(txn, table, key)
            if row is not None and row.get(column) == value:
                rows.append(row)
        for (wtable, wkey), wrow in txn.writes.items():
            if wtable == table and wrow is not None and wrow.get(column) == value:
                if wkey not in keys:
                    rows.append(self._out(wrow))
        return rows

    def range_lookup(
        self, txn: Transaction, table: str, column: str, low: Any, high: Any
    ) -> Generator:
        """Rows with ``low <= row[column] < high`` via an ordered index.

        Same visibility caveats as :meth:`lookup` (latest-state index over
        the MVCC heap); SERIALIZABLE takes a table lock for phantom
        protection, matching :meth:`scan`.
        """
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        if column not in tbl.ordered_indexes:
            raise ValueError(f"no ordered index on {table}.{column}")
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            yield from self._lock(txn, ("table", table), LockMode.S)
        rows: list[dict] = []
        seen_keys: set[Hashable] = set()
        for value in tbl.range_values(column, low, high):
            for key in sorted(tbl.indexes[column].get(value, set()), key=repr):
                row = yield from self.get(txn, table, key)
                if row is not None and low <= row.get(column) < high:
                    rows.append(row)
                    seen_keys.add(key)
        for (wtable, wkey), wrow in txn.writes.items():
            if (wtable == table and wkey not in seen_keys and wrow is not None
                    and column in wrow and low <= wrow[column] < high):
                rows.append(self._out(wrow))
        return rows

    # -- writes -------------------------------------------------------------------

    def _write_locks(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        yield from self._lock(txn, ("table", table), LockMode.IX)
        yield from self._lock(txn, ("row", table, key), LockMode.X)

    def insert(self, txn: Transaction, table: str, row: dict) -> Generator:
        """Insert a new row; raises :class:`DuplicateKey` if visible."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        key = row[tbl.primary_key]
        yield from self._write_locks(txn, table, key)
        if (table, key) in txn.writes:
            existing = txn.writes[(table, key)]
        else:
            existing = tbl.latest(key)
        if existing is not None:
            self.abort(txn)
            raise DuplicateKey(table, key)
        txn.writes[(table, key)] = dict(row)
        self.stats.writes += 1

    def put(self, txn: Transaction, table: str, key: Hashable, row: dict) -> Generator:
        """Insert-or-overwrite a full row."""
        txn.require(TxnStatus.ACTIVE)
        tbl = self._table(table)
        row = dict(row)
        row.setdefault(tbl.primary_key, key)
        yield from self._write_locks(txn, table, key)
        txn.writes[(table, key)] = row
        self.stats.writes += 1

    def update(self, txn: Transaction, table: str, key: Hashable, changes: dict) -> Generator:
        """Merge ``changes`` into an existing row; returns the new row.

        Raises ``KeyError`` if the row is not visible to this transaction.
        """
        current = yield from self.get(txn, table, key)
        yield from self._write_locks(txn, table, key)
        if current is None:
            self.abort(txn)
            raise KeyError(f"{table}[{key!r}] does not exist")
        merged = dict(current)
        merged.update(changes)
        txn.writes[(table, key)] = merged
        self.stats.writes += 1
        return self._out(merged)

    def delete(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        """Delete a row (no-op if absent)."""
        txn.require(TxnStatus.ACTIVE)
        self._table(table)
        yield from self._write_locks(txn, table, key)
        txn.writes[(table, key)] = _DELETED
        self.stats.writes += 1

    # -- commit / abort ---------------------------------------------------------

    def _validate(self, txn: Transaction) -> None:
        """Snapshot isolation: first committer wins on each written key."""
        if txn.isolation is not IsolationLevel.SNAPSHOT:
            return
        for (table, key) in txn.writes:
            if self._table(table).latest_seq(key) > txn.begin_seq:
                self.stats.conflicts += 1
                error = WriteConflict(txn.tid, table, key)
                self.abort(txn)
                raise error

    def _flush_wal(self) -> int:
        """Physical fsync, mirrored into :class:`DbStats`."""
        lsn = self.wal.flush()
        self.stats.flush_count = self.wal.flush_count
        return lsn

    def _log_writes(self, txn: Transaction, decision: str) -> None:
        """Append the redo records; fsync now, or join the instant's group.

        Rows are frozen (:class:`Row`) here so the WAL record and the heap
        version installed moments later share one immutable object.
        """
        writes = txn.writes
        wal = self.wal
        for (table, key), row in writes.items():
            if row is not None and row.__class__ is not Row:
                row = Row(row)
                writes[(table, key)] = row
            wal.append("write", (txn.tid, table, key, row))
        last_lsn = wal.append(decision, (txn.tid,))
        if decision == "commit" and self._group_commit:
            if self.load_signal is not None:
                self.load_signal.record()
            group = self._group
            if group is None:
                group = _CommitGroup(
                    self.env.future(label=f"{self.name}.group-flush")
                )
                self._group = group
                delay = self._flush_delay()
                if delay > 0.0:
                    self.stats.adaptive_deferrals += 1
                self.env.schedule(delay, self._flush_group, group)
            group.size += 1
            group.last_lsn = last_lsn
        else:
            # Prepares (2PC votes) and reference mode fsync synchronously:
            # a vote must be durable before it reaches the coordinator.
            self._flush_wal()

    def _flush_delay(self) -> float:
        """How far past end-of-instant the next group fsync may wait.

        Zero below the load knee (identical scheduling to the non-adaptive
        engine, including in adaptive mode at low load); above it, the
        window opens linearly and saturates at ``flush_window_ms`` by 4x
        the knee — the busier the engine, the more commits each physical
        fsync absorbs.
        """
        if self.load_signal is None:
            return 0.0
        load = self.load_signal.load()
        knee = self._load_knee
        if load <= knee:
            return 0.0
        fraction = min(1.0, (load - knee) / (3.0 * knee))
        return self._flush_window_ms * fraction

    def _effective_gc_threshold(self) -> int:
        """Inline-GC chain threshold, stretched up to 4x under load.

        Pruning on the commit path is pure overhead while a burst is in
        progress; deferring it (longer chains tolerated, caught up by the
        next explicit :meth:`gc` pass or calmer commits) trades transient
        memory for commit latency exactly when latency matters.
        """
        if not self._gc:
            return 0
        base = self._gc_chain_threshold
        if self.load_signal is None:
            return base
        load = self.load_signal.load()
        knee = self._load_knee
        if load <= knee:
            return base
        return int(base * min(4.0, load / knee))

    def _flush_group(self, group: _CommitGroup) -> None:
        """End-of-instant callback: one fsync for every commit that joined."""
        if self._group is group:
            self._group = None
        if group.crashed:
            return  # the crash already resolved the future; records are gone
        if self.wal.flushed_lsn < group.last_lsn:
            self._flush_wal()
        if group.size > 1:
            self.env.tracer.event(
                "db.wal.group_flush",
                db=self.name,
                batch=group.size,
                lsn=group.last_lsn,
            )
        self.stats.group_flushes += 1
        self.stats.grouped_commits += group.size
        group.future.succeed(group.last_lsn)

    def flush_barrier(self):
        """A future resolved once every acknowledged commit is durable.

        With group commit, commits acknowledged in the current virtual
        instant may still be waiting on the shared group fsync; all callers
        in that instant park on the *same* future (the broker's shared-
        wakeup-future pattern).  Resolves with the durable LSN, or ``None``
        if a crash destroyed the pending group first.
        """
        if self._group is not None:
            return self._group.future
        done = self.env.future(label=f"{self.name}.group-flush")
        done.succeed(self.wal.flushed_lsn)
        return done

    def _install(self, writes: dict[tuple[str, Hashable], Optional[dict]]) -> int:
        self._commit_seq += 1
        seq = self._commit_seq
        retained = len(writes)
        threshold = self._effective_gc_threshold()
        horizon = -1
        for (table, key), row in writes.items():
            tbl = self._table(table)
            tbl.install(key, row, seq)
            if threshold:
                chain = tbl.versions[key]
                if len(chain) > threshold:
                    if horizon < 0:
                        horizon = self.gc_horizon()
                    dropped = tbl.prune(key, horizon)
                    if dropped:
                        self.stats.gc_pruned_versions += dropped
                        retained -= dropped
        self.stats.live_versions += retained
        return seq

    def commit(self, txn: Transaction) -> Generator:
        """Validate, log durably, install, and release locks."""
        txn.require(TxnStatus.ACTIVE)
        self._validate(txn)
        if txn.writes or not self._elide_readonly_commits:
            self._log_writes(txn, "commit")
            self._install(txn.writes)
        else:
            # Read-only: nothing to redo, so the commit record and its
            # share of the group fsync are pure overhead.  The commit
            # sequence does not advance either — no version was installed,
            # and every visibility check compares seq *order*, not values.
            if self._group_commit and self.load_signal is not None:
                self.load_signal.record()
        txn.status = TxnStatus.COMMITTED
        self._finish(txn)
        self.stats.committed += 1
        return
        yield  # pragma: no cover - generator protocol only

    def abort(self, txn: Transaction) -> None:
        """Roll back: buffered writes are simply discarded."""
        if txn.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            return
        self.wal.append("abort", (txn.tid,))
        txn.status = TxnStatus.ABORTED
        self._finish(txn)
        self.stats.aborted += 1

    def _finish(self, txn: Transaction) -> None:
        self.locks.release_all(txn.tid)
        self._active.pop(txn.tid, None)

    # -- version-chain GC ---------------------------------------------------------

    def gc_horizon(self) -> int:
        """Oldest ``begin_seq`` any live snapshot can read at.

        Prepared (in-doubt) transactions stay in ``_active`` until decided,
        so their snapshots are covered too.
        """
        active = self._active
        if active:
            return min(txn.begin_seq for txn in active.values())
        return self._commit_seq

    def gc(self) -> int:
        """Prune every version chain against the snapshot horizon.

        Never collects a version visible to the oldest active snapshot:
        the newest version at-or-below the horizon is always kept.  Returns
        the number of versions dropped.  No-op in ``gc=False`` reference
        mode.
        """
        if not self._gc:
            return 0
        horizon = self.gc_horizon()
        dropped = 0
        for tbl in self._tables.values():
            for key in tbl.versions:
                dropped += tbl.prune(key, horizon)
        if dropped:
            self.stats.gc_pruned_versions += dropped
            self.stats.live_versions -= dropped
        self.stats.gc_passes += 1
        self.env.tracer.event(
            "db.gc", db=self.name, horizon=horizon, pruned=dropped
        )
        return dropped

    def version_count(self) -> int:
        """Retained versions across all tables (tests cross-check the gauge)."""
        return sum(tbl.version_count() for tbl in self._tables.values())

    # -- XA participant interface (used by 2PC coordinators) ----------------------

    def prepare(self, txn: Transaction) -> Generator:
        """Phase one: validate and make the writes durable; keep locks."""
        txn.require(TxnStatus.ACTIVE)
        self._validate(txn)
        self._log_writes(txn, "prepare")
        txn.status = TxnStatus.PREPARED
        # The write set is shared by reference: _log_writes froze the rows,
        # and a prepared transaction can never buffer another write.
        self._in_doubt[txn.tid] = txn.writes
        return
        yield  # pragma: no cover

    def commit_prepared(self, txn: Transaction) -> None:
        """Phase two, commit decision."""
        txn.require(TxnStatus.PREPARED)
        self.wal.append("commit", (txn.tid,))
        self._flush_wal()
        self._install(self._in_doubt.pop(txn.tid))
        txn.status = TxnStatus.COMMITTED
        self._finish(txn)
        self.stats.committed += 1

    def abort_prepared(self, txn: Transaction) -> None:
        """Phase two, abort decision."""
        txn.require(TxnStatus.PREPARED)
        self.wal.append("abort", (txn.tid,))
        self._flush_wal()
        self._in_doubt.pop(txn.tid, None)
        txn.status = TxnStatus.ABORTED
        self._finish(txn)
        self.stats.aborted += 1

    def in_doubt(self) -> list[int]:
        """Transaction ids prepared but not yet decided (blocking!)."""
        return list(self._in_doubt)

    # -- checkpoint / crash / recovery ---------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot committed state into the WAL and truncate the prefix.

        The checkpoint record carries the schema, the latest committed row
        per key, and the in-doubt write sets, so recovery needs nothing
        older than the record itself — the WAL prefix is dropped, bounding
        log memory on long runs.  Old MVCC versions are *not* carried over:
        a crash kills every active snapshot reader anyway.
        """
        self.gc()
        tables: dict[str, dict] = {}
        for name, tbl in self._tables.items():
            rows: dict[Hashable, dict] = {}
            for key in tbl.versions:
                row = tbl.latest(key)
                if row is not None:
                    rows[key] = row
            tables[name] = {
                "primary_key": tbl.primary_key,
                "indexes": [
                    (column, column in tbl.ordered_indexes)
                    for column in tbl.indexes
                ],
                "rows": rows,
            }
        payload = {
            "tables": tables,
            "in_doubt": {tid: dict(w) for tid, w in self._in_doubt.items()},
        }
        lsn = self.wal.append("checkpoint", payload)
        self._flush_wal()
        dropped = self.wal.truncate(before_lsn=lsn)
        self.env.tracer.event(
            "db.checkpoint", db=self.name, lsn=lsn, dropped_records=dropped
        )
        return {"lsn": lsn, "wal_records_dropped": dropped}

    def crash(self) -> None:
        """Lose all volatile state; the WAL keeps its flushed prefix.

        A commit group still waiting on its shared fsync dies whole: its
        records sit above the durability horizon, so recovery sees none of
        them — the group is lost atomically, never an interior subset.
        """
        group = self._group
        if group is not None:
            self._group = None
            group.crashed = True
            group.future.succeed(None)  # barrier waiters learn durability failed
        self.wal.crash()
        self._tables.clear()
        self._active.clear()
        self._in_doubt.clear()
        self._repl_pending.clear()
        self.locks = LockManager(self.env)
        self.stats.live_versions = 0

    def recover(self) -> None:
        """Redo recovery: replay the durable WAL into fresh tables.

        Committed transactions are re-installed in log order; prepared-but-
        undecided transactions become in-doubt again, awaiting their
        coordinator (:meth:`resolve_in_doubt`).  A checkpoint record resets
        the slate to its snapshot before the tail replays.
        """
        self._tables.clear()
        self._commit_seq = 0
        self.stats.live_versions = 0
        pending: dict[int, dict[tuple[str, Hashable], Optional[dict]]] = {}
        self._in_doubt.clear()
        for record in self.wal.durable_records():
            if record.kind == "create_table":
                name, primary_key = record.payload
                self._tables[name] = _Table(name, primary_key)
            elif record.kind == "create_index":
                table, column, *rest = record.payload
                ordered = rest[0] if rest else False
                self._table(table).create_index(column, ordered=ordered)
            elif record.kind == "write":
                tid, table, key, row = record.payload
                pending.setdefault(tid, {})[(table, key)] = row
            elif record.kind == "commit":
                (tid,) = record.payload
                writes = pending.pop(tid, None)
                if writes is None:
                    writes = self._in_doubt.pop(tid, {})
                self._install(writes)
            elif record.kind == "abort":
                (tid,) = record.payload
                pending.pop(tid, None)
                self._in_doubt.pop(tid, None)
            elif record.kind == "prepare":
                (tid,) = record.payload
                self._in_doubt[tid] = pending.pop(tid, {})
            elif record.kind == "checkpoint":
                snapshot = record.payload
                self._tables.clear()
                self._commit_seq = 0
                self.stats.live_versions = 0
                pending.clear()
                self._in_doubt.clear()
                restored: dict[tuple[str, Hashable], Optional[dict]] = {}
                for name, meta in snapshot["tables"].items():
                    tbl = _Table(name, meta["primary_key"])
                    self._tables[name] = tbl
                    for column, ordered in meta["indexes"]:
                        tbl.create_index(column, ordered=ordered)
                    for key, row in meta["rows"].items():
                        restored[(name, key)] = row
                if restored:
                    self._install(restored)
                for tid, writes in snapshot["in_doubt"].items():
                    self._in_doubt[tid] = dict(writes)
        # A prepared transaction voted yes: its writes stay latent and its
        # locks stay held until the coordinator's decision.  The lock table
        # died with the crash, so re-acquire here — otherwise a conflicting
        # writer could commit over rows the in-doubt transaction will
        # install at resolve time (a lost update).  Prepared transactions
        # held compatible locks before the crash, so every grant is
        # immediate against the fresh lock manager.
        for tid, writes in self._in_doubt.items():
            for table, key in writes:
                self.locks.acquire(tid, ("table", table), LockMode.IX)
                self.locks.acquire(tid, ("row", table, key), LockMode.X)

    def resolve_in_doubt(self, tid: int, commit: bool) -> None:
        """Coordinator's decision for a recovered in-doubt transaction."""
        writes = self._in_doubt.pop(tid, None)
        if writes is None:
            return
        self.wal.append("commit" if commit else "abort", (tid,))
        self._flush_wal()
        if commit:
            self._install(writes)
        self.locks.release_all(tid)

    # -- replication entry points (repro.replication) -------------------------------

    @property
    def fence_token(self) -> int:
        """Highest replication term this engine has observed."""
        return self._fence

    def raise_fence(self, token: int) -> None:
        """Monotonically raise the fencing watermark (survives crashes:
        the replica re-raises its durable term on recovery)."""
        if token > self._fence:
            self._fence = token

    def stage_replicated(
        self, txn: Transaction, gid: Hashable, *, prepared: bool = False
    ) -> tuple:
        """Freeze a transaction's writes for proposal to a replicated log.

        Validates (snapshot first-committer-wins; aborts and raises on
        conflict), freezes the write set, and parks the transaction in
        ``_repl_pending`` — *keeping its locks held* — until the log entry
        carrying the writes either applies here (:meth:`apply_replicated`
        settles it) or is discarded (:meth:`discard_replicated`).  Holding
        the locks across the quorum round is what keeps a concurrent
        writer from sneaking between validation and install.
        """
        txn.require(TxnStatus.ACTIVE)
        self._validate(txn)
        writes = txn.writes
        for (table, key), row in writes.items():
            if row is not None and row.__class__ is not Row:
                writes[(table, key)] = Row(row)
        self._repl_pending[gid] = txn
        if prepared:
            txn.status = TxnStatus.PREPARED
        return tuple(writes.items())

    def apply_replicated(
        self,
        kind: str,
        gid: Hashable,
        writes: Optional[tuple] = None,
        *,
        token: Optional[int] = None,
        ack: Optional[Any] = None,
        ack_value: Optional[int] = None,
        decision: bool = True,
    ) -> None:
        """Apply one committed log entry; the fencing check lives here.

        A committed entry ALWAYS installs — committedness was decided by
        the quorum, not by this engine — but the *acknowledgement* is
        refused when the entry's proposal term (``token``) is below the
        engine's fence: the proposing leader was deposed before it could
        learn the outcome, so it must not report success
        (:class:`FencedOut`).  ``token=None`` disables the check (the
        broken no-fencing variant the chaos oracles catch).

        Synchronous and WAL-durable per entry, so a replica's
        ``applied_index`` and its engine's recovered state always agree.
        """
        fenced = token is not None and token < self._fence
        if kind == "commit":
            buffered: dict[tuple[str, Hashable], Optional[dict]] = dict(writes)
            for (table, key), row in buffered.items():
                self.wal.append("write", (gid, table, key, row))
            self.wal.append("commit", (gid,))
            self._flush_wal()
            self._install(buffered)
            self.stats.committed += 1
            pending = self._repl_pending.pop(gid, None)
            if pending is not None:
                pending.status = TxnStatus.COMMITTED
                self._finish(pending)
        elif kind == "prepare":
            buffered = dict(writes)
            for (table, key), row in buffered.items():
                self.wal.append("write", (gid, table, key, row))
            self.wal.append("prepare", (gid,))
            self._flush_wal()
            self._in_doubt[gid] = buffered
            if gid not in self._repl_pending:
                # Follower apply: no interactive branch holds these locks,
                # so take them under the gid (recovery-style) to keep
                # post-failover writers off the in-doubt rows.
                for table, key in buffered:
                    self.locks.acquire(gid, ("table", table), LockMode.IX)
                    self.locks.acquire(gid, ("row", table, key), LockMode.X)
        elif kind == "decide":
            buffered = self._in_doubt.pop(gid, None)
            pending = self._repl_pending.pop(gid, None)
            if buffered is not None:
                self.wal.append("commit" if decision else "abort", (gid,))
                self._flush_wal()
                if decision:
                    self._install(buffered)
                    self.stats.committed += 1
                else:
                    self.stats.aborted += 1
                if pending is not None:
                    pending.status = (
                        TxnStatus.COMMITTED if decision else TxnStatus.ABORTED
                    )
                    self._finish(pending)
                else:
                    self.locks.release_all(gid)
            # else: duplicate decide (idempotent retry) — nothing to do
        else:
            raise ValueError(f"unknown replicated command kind {kind!r}")
        self.stats.replicated_applies += 1
        if ack is not None:
            if fenced:
                self.stats.fenced_acks += 1
                ack.try_succeed(("err", FencedOut(gid, token, self._fence)))
            else:
                ack.try_succeed(("ok", ack_value))

    def discard_replicated(self, gid: Hashable) -> None:
        """A staged proposal's entry will never commit: roll it back."""
        txn = self._repl_pending.pop(gid, None)
        if txn is not None and txn.status in (
            TxnStatus.ACTIVE, TxnStatus.PREPARED
        ):
            self.wal.append("abort", (txn.tid,))
            txn.status = TxnStatus.ABORTED
            self._finish(txn)
            self.stats.aborted += 1
        if self._in_doubt.pop(gid, None) is not None:
            self.locks.release_all(gid)

    def snapshot_payload(self) -> dict:
        """Committed state in checkpoint format, for InstallSnapshot.

        Same structure :meth:`checkpoint` logs, but without touching this
        engine's WAL — the *receiver* makes it durable on install.
        """
        tables: dict[str, dict] = {}
        for name, tbl in self._tables.items():
            rows: dict[Hashable, dict] = {}
            for key in tbl.versions:
                row = tbl.latest(key)
                if row is not None:
                    rows[key] = row
            tables[name] = {
                "primary_key": tbl.primary_key,
                "indexes": [
                    (column, column in tbl.ordered_indexes)
                    for column in tbl.indexes
                ],
                "rows": rows,
            }
        return {
            "tables": tables,
            "in_doubt": {tid: dict(w) for tid, w in self._in_doubt.items()},
        }

    def install_snapshot(self, payload: dict) -> None:
        """Replace all state with a leader's snapshot, durably.

        Used when the log alone cannot catch a replica up (compaction, or
        broken-mode divergence below the applied prefix).  The snapshot is
        logged as a checkpoint record and the WAL truncated behind it, so
        a later crash recovers to exactly the installed state.  Any state
        the snapshot does not contain — including writes a broken leader
        applied without quorum — is erased.
        """
        group = self._group
        if group is not None:
            self._group = None
            group.crashed = True
            group.future.succeed(None)
        self._tables.clear()
        self._active.clear()
        self._commit_seq = 0
        self.stats.live_versions = 0
        self.locks = LockManager(self.env)
        for gid, txn in list(self._repl_pending.items()):
            # Stale staged proposals cannot survive a resync.
            del self._repl_pending[gid]
            txn.status = TxnStatus.ABORTED
        self._in_doubt.clear()
        lsn = self.wal.append("checkpoint", payload)
        self._flush_wal()
        self.wal.truncate(before_lsn=lsn)
        restored: dict[tuple[str, Hashable], Optional[dict]] = {}
        for name, meta in payload["tables"].items():
            tbl = _Table(name, meta["primary_key"])
            self._tables[name] = tbl
            for column, ordered in meta["indexes"]:
                tbl.create_index(column, ordered=ordered)
            for key, row in meta["rows"].items():
                restored[(name, key)] = row
        if restored:
            self._install(restored)
        for tid, writes in payload["in_doubt"].items():
            self._in_doubt[tid] = dict(writes)
            for table, key in writes:
                self.locks.acquire(tid, ("table", table), LockMode.IX)
                self.locks.acquire(tid, ("row", table, key), LockMode.X)
        self.env.tracer.event(
            "db.install_snapshot", db=self.name, lsn=lsn
        )

    # -- parallel-epoch entry points (repro.parallel) -------------------------------

    def export_snapshot(
        self, tables: Optional[Iterable[str]] = None
    ) -> dict[tuple[str, Hashable], dict]:
        """Latest committed rows as a flat picklable map — the worker-
        shipping format of queue-oriented execution.

        Keys are ``(table, key)`` pairs; values are plain ``dict`` copies
        (never the live :class:`Row` objects), so a worker process can
        mutate its slice freely.  Deleted rows are omitted.
        """
        names = list(tables) if tables is not None else list(self._tables)
        snapshot: dict[tuple[str, Hashable], dict] = {}
        for name in names:
            tbl = self._table(name)
            for key, chain in tbl.versions.items():
                row = chain[-1][1]
                if row is not None:
                    snapshot[(name, key)] = dict(row)
        return snapshot

    def apply_epoch(
        self,
        txn_writes: Iterable[tuple[Any, list]],
        *,
        epoch: int = 0,
    ) -> int:
        """Install externally executed transactions in their given order.

        ``txn_writes`` is ``(tid, [((table, key), row_or_None), ...])``
        per transaction, already sorted into the epoch's total order by
        the caller (:class:`repro.parallel.EpochExecutor` merges in
        sequencer TID order).  Each transaction is WAL-logged and installed
        as its own commit — one commit sequence per transaction, exactly as
        serial execution would produce — under a namespaced WAL tid
        (``("epoch", epoch, tid)``) so recovery replay can never collide
        with the engine's interactive transaction ids.  The whole epoch
        shares one physical fsync (synchronous, group-commit-style).
        Read-only transactions (empty write lists) are skipped entirely.

        Returns the number of transactions installed.
        """
        applied = 0
        for tid, writes in txn_writes:
            if not writes:
                continue
            wal_tid = ("epoch", epoch, tid)
            buffered: dict[tuple[str, Hashable], Optional[dict]] = {}
            for (table, key), row in writes:
                frozen = row if row is None or row.__class__ is Row else Row(row)
                self.wal.append("write", (wal_tid, table, key, frozen))
                buffered[(table, key)] = frozen
            self.wal.append("commit", (wal_tid,))
            self._install(buffered)
            self.stats.committed += 1
            applied += 1
        if applied:
            self._flush_wal()
        return applied

    # -- non-transactional helpers (test/bench setup) -------------------------------

    def load(self, table: str, rows: Iterable[dict]) -> None:
        """Bulk-load committed rows outside any transaction (setup only)."""
        tbl = self._table(table)
        self._commit_seq += 1
        loaded = 0
        for row in rows:
            frozen = row if row.__class__ is Row else Row(row)
            key = frozen[tbl.primary_key]
            self.wal.append("write", (0, table, key, frozen))
            tbl.install(key, frozen, self._commit_seq)
            loaded += 1
        self.wal.append("commit", (0,))
        self._flush_wal()
        self.stats.live_versions += loaded

    def read_latest(self, table: str, key: Hashable) -> Optional[dict]:
        """Dirty read of the latest committed version (metrics/invariants)."""
        return self._out(self._table(table).latest(key))

    def all_rows(self, table: str) -> list[dict]:
        """All live committed rows (invariant checking)."""
        tbl = self._table(table)
        out = self._out
        return [
            out(chain[-1][1])
            for chain in tbl.versions.values()
            if chain[-1][1] is not None
        ]

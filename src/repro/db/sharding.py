"""Hash-sharded database with cross-shard 2PC and live shard rebalancing.

Models the scale-out relational tier: each *logical shard* is a full
:class:`~repro.db.engine.Database`, shards are placed on *nodes* through
the shared cluster layer (:mod:`repro.cluster`), single-shard transactions
commit locally, and cross-shard transactions run 2PC over the shards' XA
interface.  This is the "cross-engine transactions ... at a lower level
than the application" design the paper points to as promising (§5.2).

Placement and elasticity:

- routing is key → shard (``ModHashRing``, the historical crc32 formula)
  → owning node (:class:`~repro.cluster.PlacementDirectory`);
- :meth:`ShardedDatabase.migrate_shard` moves a shard between nodes live,
  through the drain → copy → flip → forward protocol of
  :mod:`repro.cluster.migration`: new transactions touching the shard
  wait out the bar, in-flight ones (including distributed transactions
  holding locks there) drain first, state copies row-by-row through the
  storage layer, and ownership flips atomically in the directory;
- after a flip, the first request per stale route pays one extra
  round-trip (the straggler forward) and repairs its cache;
- with ``service_ms > 0`` every operation also occupies one of the owning
  node's ``node_concurrency`` service slots, which is what makes node
  count a real capacity limit (benchmark C14's elasticity curve).

The default configuration (one node per shard, no service gate, no
migrations) is byte-identical to the pre-cluster implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Hashable, Optional

from repro.cluster import (
    ClusterError,
    MigrationStats,
    ModHashRing,
    PlacementDirectory,
    Router,
    stable_hash,
)
from repro.cluster import ShardStats as ClusterShardStats
from repro.cluster.migration import migrate_shard as _run_migration
from repro.db.engine import Database, IsolationLevel, Transaction
from repro.sim import Environment, Future, Semaphore, any_of


def shard_of(key: Hashable, num_shards: int) -> int:
    """Deterministic, platform-stable shard routing (cluster formula)."""
    return stable_hash(key) % num_shards


@dataclass
class DistributedTransaction:
    """A transaction that may touch several shards."""

    isolation: IsolationLevel
    branches: dict[int, Transaction] = field(default_factory=dict)
    #: the engine each branch was opened against — normally the shard's
    #: current engine, but pinned here so a branch always settles where it
    #: wrote (the drain bar makes the two identical in sound operation).
    engines: dict[int, "Database"] = field(default_factory=dict)
    status: str = "active"

    @property
    def shards_touched(self) -> list[int]:
        return sorted(self.branches)

    @property
    def is_distributed(self) -> bool:
        return len(self.branches) > 1


@dataclass
class ShardStats:
    single_shard_commits: int = 0
    distributed_commits: int = 0
    distributed_aborts: int = 0


class _ShardedMover:
    """The :class:`~repro.cluster.migration.ShardMover` of the sharded DB."""

    def __init__(self, db: "ShardedDatabase") -> None:
        self.db = db

    def quiesce(self, shard: int) -> Generator:
        db = self.db
        db._barriers[shard] = db.env.future(label=f"shard{shard}.barrier")
        if db._active_branches.get(shard, 0) == 0:
            return
        drained = db.env.future(label=f"shard{shard}.drained")
        db._drain_waiters[shard] = drained
        winner = yield any_of(
            db.env, [drained, db.env.timeout(db.drain_timeout_ms, "timeout")]
        )
        db._drain_waiters.pop(shard, None)
        if winner[0] == 1:
            raise ClusterError(
                f"shard {shard} failed to drain within {db.drain_timeout_ms}ms "
                f"({db._active_branches.get(shard, 0)} branch(es) still active)"
            )

    def transfer(self, shard: int, source: str, dest: str) -> Generator:
        db = self.db
        old_engine = db.shards[shard]
        new_engine = Database(
            db.env, name=f"{db.name}/shard{shard}", **db.engine_options
        )
        rows_moved = 0
        for kind, args in db._schema:
            if kind == "table":
                new_engine.create_table(*args)
            else:
                new_engine.create_index(*args)
        for kind, args in db._schema:
            if kind != "table":
                continue
            table = args[0]
            rows = old_engine.all_rows(table)
            # One round trip to open the stream, then a per-row copy cost:
            # the state moves through the storage layer, not by reference.
            yield db.env.timeout(db.rtt_ms)
            if rows:
                yield db.env.timeout(db.copy_ms_per_row * len(rows))
                new_engine.load(table, rows)
                rows_moved += len(rows)
        db.shards[shard] = new_engine
        return rows_moved

    def resume(self, shard: int) -> None:
        barrier = self.db._barriers.pop(shard, None)
        if barrier is not None:
            barrier.try_succeed(None)


class ShardedDatabase:
    """N logical shards placed on nodes behind a routing layer with 2PC.

    The API mirrors :class:`~repro.db.engine.Database`; rows are routed by
    primary key.  ``commit`` runs one-phase for single-shard transactions
    and prepare/commit over every touched shard otherwise, charging
    ``rtt_ms`` per coordinator-to-shard message so the cost of the extra
    round trips is visible.
    """

    def __init__(
        self,
        env: Environment,
        num_shards: int = 4,
        name: str = "sharded-db",
        rtt_ms: float = 1.0,
        num_nodes: Optional[int] = None,
        service_ms: float = 0.0,
        node_concurrency: int = 8,
        copy_ms_per_row: float = 0.05,
        drain_timeout_ms: float = 500.0,
        *,
        gc: bool = True,
        group_commit: bool = True,
        copy_reads: bool = False,
        adaptive: bool = False,
        flush_window_ms: float = 2.0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if num_nodes is not None and not (0 < num_nodes <= num_shards):
            raise ValueError("num_nodes must be in [1, num_shards]")
        self.env = env
        self.name = name
        self.rtt_ms = rtt_ms
        self.service_ms = service_ms
        self.node_concurrency = node_concurrency
        self.copy_ms_per_row = copy_ms_per_row
        self.drain_timeout_ms = drain_timeout_ms
        #: storage fast-path flags, applied to every shard engine (including
        #: replacement engines built during live migration)
        self.engine_options = {
            "gc": gc, "group_commit": group_commit, "copy_reads": copy_reads,
            "adaptive": adaptive, "flush_window_ms": flush_window_ms,
        }
        self.shards = [
            Database(env, name=f"{name}/shard{i}", **self.engine_options)
            for i in range(num_shards)
        ]
        self.stats = ShardStats()
        # -- cluster placement ------------------------------------------------
        self.directory = PlacementDirectory(env)
        self.router = Router(ModHashRing(num_shards), self.directory)
        self.shard_stats = ClusterShardStats(num_shards)
        self.migration_stats = MigrationStats()
        self.nodes: list[str] = []
        self._gates: dict[str, Semaphore] = {}
        count = num_nodes if num_nodes is not None else num_shards
        for i in range(count):
            self.add_node()
        for shard in range(num_shards):
            self.directory.assign(shard, self.nodes[shard % len(self.nodes)])
        self._schema: list[tuple[str, tuple]] = []
        self._active_branches: dict[int, int] = {}
        self._drain_waiters: dict[int, Future] = {}
        self._barriers: dict[int, Future] = {}
        self._mover = _ShardedMover(self)

    # -- topology -----------------------------------------------------------------

    def add_node(self, name: Optional[str] = None) -> str:
        """Provision a new (initially empty) node; returns its name."""
        node = name or f"{self.name}/node{len(self.nodes)}"
        if node in self.nodes:
            raise ValueError(f"node {node!r} already exists")
        self.nodes.append(node)
        if self.service_ms > 0:
            self._gates[node] = Semaphore(
                self.env, self.node_concurrency, label=f"{node}.service"
            )
        return node

    def cluster_nodes(self) -> list[str]:
        """Nodes eligible to own shards (the RebalanceTarget view)."""
        return list(self.nodes)

    def migrate_shard(self, shard: int, dest: str) -> Generator:
        """Live-migrate one shard to ``dest`` (drain → copy → flip)."""
        if not (0 <= shard < len(self.shards)):
            raise ClusterError(f"unknown shard {shard}")
        if dest not in self.nodes:
            raise ClusterError(f"unknown node {dest!r}")
        rows = yield from _run_migration(
            self.env, self.directory, self._mover, shard, dest, self.migration_stats
        )
        return rows

    # -- schema -----------------------------------------------------------------

    def create_table(self, name: str, primary_key: str = "id") -> None:
        self._schema.append(("table", (name, primary_key)))
        for shard in self.shards:
            shard.create_table(name, primary_key)

    def create_index(self, table: str, column: str, ordered: bool = False) -> None:
        self._schema.append(("index", (table, column, ordered)))
        for shard in self.shards:
            shard.create_index(table, column, ordered=ordered)

    def load(self, table: str, rows: list[dict]) -> None:
        buckets: dict[int, list[dict]] = {}
        for row in rows:
            primary_key = self.shards[0]._table(table).primary_key
            buckets.setdefault(self.router.shard_of(row[primary_key]), []).append(row)
        for index, shard_rows in buckets.items():
            self.shards[index].load(table, shard_rows)

    # -- transactions --------------------------------------------------------------

    def begin(self, isolation: IsolationLevel = IsolationLevel.SERIALIZABLE) -> DistributedTransaction:
        return DistributedTransaction(isolation=isolation)

    def _branch(self, txn: DistributedTransaction, key: Hashable) -> Generator:
        """Resolve the shard for ``key`` and open its branch if needed.

        Opening a branch on a migrating shard waits out the migration bar
        (drain + copy); operations on branches opened *before* the bar
        proceed, which is what lets in-flight transactions drain.
        """
        shard = self.router.shard_of(key)
        if shard not in txn.branches:
            while shard in self._barriers:
                yield self._barriers[shard]
            txn.branches[shard] = self.shards[shard].begin(txn.isolation)
            txn.engines[shard] = self.shards[shard]
            self._active_branches[shard] = self._active_branches.get(shard, 0) + 1
        return shard

    def _close_branches(self, txn: DistributedTransaction) -> None:
        """Release drain accounting once a transaction fully settles."""
        for shard in txn.branches:
            remaining = self._active_branches.get(shard, 1) - 1
            self._active_branches[shard] = remaining
            if remaining == 0:
                waiter = self._drain_waiters.get(shard)
                if waiter is not None:
                    waiter.try_succeed(None)

    def _hop(self, shard: int) -> Generator:
        """Charge the route to the shard's owner: one round trip, plus a
        forward hop when a cached route went stale, plus the owner's
        service slot when node capacity is modeled."""
        route = self.router.resolve_shard(shard)
        yield self.env.timeout(self.rtt_ms)
        if route.forwarded:
            yield self.env.timeout(self.rtt_ms)
        if self.service_ms > 0:
            gate = self._gates[route.node]
            yield gate.acquire()
            try:
                yield self.env.timeout(self.service_ms)
            finally:
                gate.release()
        self.shard_stats.record(shard)

    def get(self, txn: DistributedTransaction, table: str, key: Hashable) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        return (yield from txn.engines[shard].get(txn.branches[shard], table, key))

    def put(self, txn: DistributedTransaction, table: str, key: Hashable, row: dict) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        yield from txn.engines[shard].put(txn.branches[shard], table, key, row)

    def insert(self, txn: DistributedTransaction, table: str, row: dict) -> Generator:
        primary_key = self.shards[0]._table(table).primary_key
        shard = yield from self._branch(txn, row[primary_key])
        yield from self._hop(shard)
        yield from txn.engines[shard].insert(txn.branches[shard], table, row)

    def update(self, txn: DistributedTransaction, table: str, key: Hashable, changes: dict) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        return (yield from txn.engines[shard].update(txn.branches[shard], table, key, changes))

    def delete(self, txn: DistributedTransaction, table: str, key: Hashable) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        yield from txn.engines[shard].delete(txn.branches[shard], table, key)

    def commit(self, txn: DistributedTransaction) -> Generator:
        """One-phase commit if local, else 2PC across touched shards."""
        if not txn.branches:
            txn.status = "committed"
            return
        try:
            if not txn.is_distributed:
                (index,) = txn.branches
                yield self.env.timeout(self.rtt_ms)
                yield from txn.engines[index].commit(txn.branches[index])
                txn.status = "committed"
                self.stats.single_shard_commits += 1
                return
            # Phase 1: prepare every branch (each is a round trip + log flush).
            prepared: list[int] = []
            try:
                for index in txn.shards_touched:
                    yield self.env.timeout(self.rtt_ms)
                    yield from txn.engines[index].prepare(txn.branches[index])
                    prepared.append(index)
            except Exception:
                for index in txn.shards_touched:
                    yield self.env.timeout(self.rtt_ms)
                    branch = txn.branches[index]
                    if index in prepared:
                        txn.engines[index].abort_prepared(branch)
                    else:
                        txn.engines[index].abort(branch)
                txn.status = "aborted"
                self.stats.distributed_aborts += 1
                raise
            # Phase 2: commit decision to every branch.
            for index in txn.shards_touched:
                yield self.env.timeout(self.rtt_ms)
                txn.engines[index].commit_prepared(txn.branches[index])
            txn.status = "committed"
            self.stats.distributed_commits += 1
        finally:
            if txn.status != "active":
                self._close_branches(txn)

    def abort(self, txn: DistributedTransaction) -> None:
        if txn.status != "active":
            return
        for index, branch in txn.branches.items():
            txn.engines[index].abort(branch)
        txn.status = "aborted"
        self._close_branches(txn)

    # -- parallel-epoch entry points (repro.parallel) --------------------------------

    def export_shard_snapshot(
        self, shard: int, tables: Optional[list[str]] = None
    ) -> dict[tuple[str, Hashable], dict]:
        """One shard engine's committed rows in worker-shipping format."""
        if not (0 <= shard < len(self.shards)):
            raise ClusterError(f"unknown shard {shard}")
        return self.shards[shard].export_snapshot(tables)

    def apply_shard_epoch(
        self, shard: int, txn_writes: list, *, epoch: int = 0
    ) -> int:
        """Merge one shard's epoch results into its authoritative engine.

        ``txn_writes`` must already be restricted to keys this shard owns
        and sorted in TID order (the executor splits cross-shard
        transactions' write sets per owning shard before calling this).
        """
        if not (0 <= shard < len(self.shards)):
            raise ClusterError(f"unknown shard {shard}")
        return self.shards[shard].apply_epoch(txn_writes, epoch=epoch)

    # -- helpers --------------------------------------------------------------------

    def owner_of(self, key: Hashable) -> str:
        """The node currently owning ``key``'s shard (tests, scenarios)."""
        return self.directory.owner_of(self.router.shard_of(key))

    def read_latest(self, table: str, key: Hashable) -> Optional[dict]:
        return self.shards[self.router.shard_of(key)].read_latest(table, key)

    def all_rows(self, table: str) -> list[dict]:
        rows: list[dict] = []
        for shard in self.shards:
            rows.extend(shard.all_rows(table))
        return rows

"""Hash-sharded database with cross-shard 2PC and live shard rebalancing.

Models the scale-out relational tier: each *logical shard* is a full
:class:`~repro.db.engine.Database`, shards are placed on *nodes* through
the shared cluster layer (:mod:`repro.cluster`), single-shard transactions
commit locally, and cross-shard transactions run 2PC over the shards' XA
interface.  This is the "cross-engine transactions ... at a lower level
than the application" design the paper points to as promising (§5.2).

Placement and elasticity:

- routing is key → shard (``ModHashRing``, the historical crc32 formula)
  → owning node (:class:`~repro.cluster.PlacementDirectory`);
- :meth:`ShardedDatabase.migrate_shard` moves a shard between nodes live,
  through the drain → copy → flip → forward protocol of
  :mod:`repro.cluster.migration`: new transactions touching the shard
  wait out the bar, in-flight ones (including distributed transactions
  holding locks there) drain first, state copies row-by-row through the
  storage layer, and ownership flips atomically in the directory;
- after a flip, the first request per stale route pays one extra
  round-trip (the straggler forward) and repairs its cache;
- with ``service_ms > 0`` every operation also occupies one of the owning
  node's ``node_concurrency`` service slots, which is what makes node
  count a real capacity limit (benchmark C14's elasticity curve).

The default configuration (one node per shard, no service gate, no
migrations) is byte-identical to the pre-cluster implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Hashable, Optional

from repro.cluster import (
    ClusterError,
    MigrationStats,
    ModHashRing,
    PlacementDirectory,
    Router,
    stable_hash,
)
from repro.cluster import ShardStats as ClusterShardStats
from repro.cluster.migration import migrate_shard as _run_migration
from repro.db.engine import Database, IsolationLevel, Transaction
from repro.db.errors import FencedOut
from repro.replication.config import ReplicationConfig
from repro.replication.errors import (
    NoLeader,
    NotLeader,
    ReplicationError,
    ReplicaUnavailable,
)
from repro.sim import Environment, Future, Semaphore, any_of

#: Effectively-unbounded deadline for 2PC decision entries: a decided
#: transaction's outcome must reach every participant group no matter how
#: many elections happen in between, or atomicity tears (conservation
#: violation).  The decide keeps retrying through whichever leader emerges.
_DECIDE_TIMEOUT_MS = 1e9


def shard_of(key: Hashable, num_shards: int) -> int:
    """Deterministic, platform-stable shard routing (cluster formula)."""
    return stable_hash(key) % num_shards


@dataclass
class DistributedTransaction:
    """A transaction that may touch several shards."""

    isolation: IsolationLevel
    branches: dict[int, Transaction] = field(default_factory=dict)
    #: the engine each branch was opened against — normally the shard's
    #: current engine, but pinned here so a branch always settles where it
    #: wrote (the drain bar makes the two identical in sound operation).
    engines: dict[int, "Database"] = field(default_factory=dict)
    #: under replication, the leader replica each branch executed on —
    #: proposals pin to it so a deposed leader yields a definite NotLeader
    #: instead of silently re-routing half-executed state.
    replicas: dict[int, Any] = field(default_factory=dict)
    #: log index each shard's commit/decide entry applied at (read-your-writes
    #: session tokens for follower reads).
    applied: dict[int, int] = field(default_factory=dict)
    status: str = "active"

    @property
    def shards_touched(self) -> list[int]:
        return sorted(self.branches)

    @property
    def is_distributed(self) -> bool:
        return len(self.branches) > 1


@dataclass
class ShardStats:
    single_shard_commits: int = 0
    distributed_commits: int = 0
    distributed_aborts: int = 0


class _ShardedMover:
    """The :class:`~repro.cluster.migration.ShardMover` of the sharded DB."""

    def __init__(self, db: "ShardedDatabase") -> None:
        self.db = db

    def quiesce(self, shard: int) -> Generator:
        db = self.db
        db._barriers[shard] = db.env.future(label=f"shard{shard}.barrier")
        if db._active_branches.get(shard, 0) == 0:
            return
        drained = db.env.future(label=f"shard{shard}.drained")
        db._drain_waiters[shard] = drained
        winner = yield any_of(
            db.env, [drained, db.env.timeout(db.drain_timeout_ms, "timeout")]
        )
        db._drain_waiters.pop(shard, None)
        if winner[0] == 1:
            raise ClusterError(
                f"shard {shard} failed to drain within {db.drain_timeout_ms}ms "
                f"({db._active_branches.get(shard, 0)} branch(es) still active)"
            )

    def transfer(self, shard: int, source: str, dest: str) -> Generator:
        db = self.db
        old_engine = db.shards[shard]
        new_engine = Database(
            db.env, name=f"{db.name}/shard{shard}", **db.engine_options
        )
        rows_moved = 0
        for kind, args in db._schema:
            if kind == "table":
                new_engine.create_table(*args)
            else:
                new_engine.create_index(*args)
        for kind, args in db._schema:
            if kind != "table":
                continue
            table = args[0]
            rows = old_engine.all_rows(table)
            # One round trip to open the stream, then a per-row copy cost:
            # the state moves through the storage layer, not by reference.
            yield db.env.timeout(db.rtt_ms)
            if rows:
                yield db.env.timeout(db.copy_ms_per_row * len(rows))
                new_engine.load(table, rows)
                rows_moved += len(rows)
        db.shards[shard] = new_engine
        return rows_moved

    def resume(self, shard: int) -> None:
        barrier = self.db._barriers.pop(shard, None)
        if barrier is not None:
            barrier.try_succeed(None)


class _LeaderView:
    """Sequence façade: ``db.shards[i]`` is shard *i*'s current leader engine.

    Keeps the unreplicated code paths (schema helpers, ``read_latest``,
    parallel-epoch hooks) working unchanged when a shard is a replica
    group rather than a single engine.  Mid-election, falls back to the
    most advanced live replica so final-state reads stay serviceable.
    """

    def __init__(self, db: "ShardedDatabase") -> None:
        self.db = db

    def __len__(self) -> int:
        return self.db.num_shards

    def _engine(self, shard: int) -> Database:
        group = self.db._groups[shard]
        leader = group.leader_replica()
        if leader is not None:
            return leader.engine
        live = [
            r for r in group.replicas
            if r.node.alive and r.role != "stopped"
        ]
        if live:
            return max(live, key=lambda r: (r.term, r.applied_index)).engine
        return group.replicas[0].engine

    def __getitem__(self, shard: int) -> Database:
        return self._engine(shard)

    def __iter__(self):
        for shard in range(len(self)):
            yield self._engine(shard)


class _ReplicatedMover(_ShardedMover):
    """Shard mover that migrates a whole replica group atomically.

    Quiescence additionally waits for the group's log to be fully applied
    with no outstanding acknowledgements or in-doubt transactions; the
    copy re-checks leadership after every yield so a migration racing a
    leader election (or a leader crash) aborts cleanly with
    :class:`ClusterError` instead of flipping ownership to a group built
    from a deposed leader's state.
    """

    def __init__(self, db: "ShardedDatabase", members: list[str]) -> None:
        super().__init__(db)
        self.members = members

    def quiesce(self, shard: int) -> Generator:
        yield from super().quiesce(shard)
        db = self.db
        group = db._groups[shard]
        deadline = db.env.now + db.drain_timeout_ms
        while not group.quiescent():
            if db.env.now >= deadline:
                raise ClusterError(
                    f"shard {shard} replica group failed to quiesce within "
                    f"{db.drain_timeout_ms}ms"
                )
            yield db.env.timeout(db.replication.heartbeat_ms)

    def transfer(self, shard: int, source: str, dest: str) -> Generator:
        db = self.db
        group = db._groups[shard]
        leader = group.leader_replica()
        if leader is None or not leader.node.alive:
            raise ClusterError(f"shard {shard} has no leader to copy from")
        start_index = leader.applied_index
        copied: dict[str, list] = {}
        rows_moved = 0
        for kind, args in db._schema:
            if kind != "table":
                continue
            table = args[0]
            rows = leader.engine.all_rows(table)
            yield db.env.timeout(db.rtt_ms)
            if rows:
                yield db.env.timeout(db.copy_ms_per_row * len(rows))
            if (
                not leader.node.alive
                or leader.role != "leader"
                or group.leader_replica() is not leader
            ):
                raise ClusterError(
                    f"shard {shard} leadership changed mid-copy; "
                    "migration aborted"
                )
            copied[table] = rows
            rows_moved += len(rows)
        for member in self.members:
            node = db.repl_net.nodes.get(member)
            if node is not None and not node.alive:
                raise ClusterError(
                    f"shard {shard} migration member {member!r} is down; "
                    "migration aborted"
                )
        generation = db._group_generation[shard] + 1
        new_group = db._build_group(
            shard, self.members, generation,
            start_index=start_index, preload=copied,
        )
        db._group_generation[shard] = generation
        old_group = db._groups[shard]
        db._groups[shard] = new_group
        db.directory.assign_group(shard, tuple(self.members))
        old_group.stop()
        return rows_moved


class ShardedDatabase:
    """N logical shards placed on nodes behind a routing layer with 2PC.

    The API mirrors :class:`~repro.db.engine.Database`; rows are routed by
    primary key.  ``commit`` runs one-phase for single-shard transactions
    and prepare/commit over every touched shard otherwise, charging
    ``rtt_ms`` per coordinator-to-shard message so the cost of the extra
    round trips is visible.
    """

    def __init__(
        self,
        env: Environment,
        num_shards: int = 4,
        name: str = "sharded-db",
        rtt_ms: float = 1.0,
        num_nodes: Optional[int] = None,
        service_ms: float = 0.0,
        node_concurrency: int = 8,
        copy_ms_per_row: float = 0.05,
        drain_timeout_ms: float = 500.0,
        *,
        gc: bool = True,
        group_commit: bool = True,
        copy_reads: bool = False,
        adaptive: bool = False,
        flush_window_ms: float = 2.0,
        lock_wait_timeout_ms: Optional[float] = None,
        fast_grants: bool = True,
        replication: Optional[ReplicationConfig] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if replication is None:
            if num_nodes is not None and not (0 < num_nodes <= num_shards):
                raise ValueError("num_nodes must be in [1, num_shards]")
        elif num_nodes is not None and num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.env = env
        self.name = name
        self.num_shards = num_shards
        self.rtt_ms = rtt_ms
        self.service_ms = service_ms
        self.node_concurrency = node_concurrency
        self.copy_ms_per_row = copy_ms_per_row
        self.drain_timeout_ms = drain_timeout_ms
        self.replication = replication
        #: storage fast-path flags, applied to every shard engine (including
        #: replacement engines built during live migration)
        self.engine_options = {
            "gc": gc, "group_commit": group_commit, "copy_reads": copy_reads,
            "adaptive": adaptive, "flush_window_ms": flush_window_ms,
            "lock_wait_timeout_ms": lock_wait_timeout_ms,
            "fast_grants": fast_grants,
        }
        if replication is None:
            self.shards = [
                Database(env, name=f"{name}/shard{i}", **self.engine_options)
                for i in range(num_shards)
            ]
        self.stats = ShardStats()
        # -- cluster placement ------------------------------------------------
        self.directory = PlacementDirectory(env)
        self.router = Router(ModHashRing(num_shards), self.directory)
        self.shard_stats = ClusterShardStats(num_shards)
        self.migration_stats = MigrationStats()
        self.nodes: list[str] = []
        self._gates: dict[str, Semaphore] = {}
        count = num_nodes if num_nodes is not None else num_shards
        for i in range(count):
            self.add_node()
        self._schema: list[tuple[str, tuple]] = []
        if replication is None:
            for shard in range(num_shards):
                self.directory.assign(shard, self.nodes[shard % len(self.nodes)])
        else:
            if len(self.nodes) < replication.factor:
                raise ValueError(
                    f"replication factor {replication.factor} needs at "
                    f"least {replication.factor} nodes, have {len(self.nodes)}"
                )
            from repro.net import Network

            #: replica traffic runs over its own network so the replication
            #: RPCs share fault injection (partitions, crashes) with the
            #: chaos layer without disturbing the unreplicated model
            self.repl_net = Network(env)
            self._groups: dict[int, Any] = {}
            self._group_generation: dict[int, int] = {}
            for shard in range(num_shards):
                members = [
                    self.nodes[(shard + j) % len(self.nodes)]
                    for j in range(replication.factor)
                ]
                group = self._build_group(shard, members, 0)
                self._groups[shard] = group
                self._group_generation[shard] = 0
                self.directory.assign_group(shard, tuple(members))
                self.directory.assign(shard, members[0])
            self.shards = _LeaderView(self)
        self._active_branches: dict[int, int] = {}
        self._drain_waiters: dict[int, Future] = {}
        self._barriers: dict[int, Future] = {}
        self._mover = _ShardedMover(self)

    # -- topology -----------------------------------------------------------------

    def add_node(self, name: Optional[str] = None) -> str:
        """Provision a new (initially empty) node; returns its name."""
        node = name or f"{self.name}/node{len(self.nodes)}"
        if node in self.nodes:
            raise ValueError(f"node {node!r} already exists")
        self.nodes.append(node)
        if self.service_ms > 0:
            self._gates[node] = Semaphore(
                self.env, self.node_concurrency, label=f"{node}.service"
            )
        return node

    def cluster_nodes(self) -> list[str]:
        """Nodes eligible to own shards (the RebalanceTarget view)."""
        return list(self.nodes)

    def _build_group(
        self,
        shard: int,
        members: list[str],
        generation: int,
        start_index: int = 0,
        preload: Optional[dict[str, list]] = None,
    ) -> Any:
        """One shard's replica group: fresh engines on ``members``, schema
        replayed, optionally preloaded with migrated rows.  The service
        name carries a generation counter so a rebuilt group never
        collides with its retired predecessor's RPC ports."""
        from repro.replication.group import ReplicaGroup

        def factory(node_name: str) -> Database:
            engine = Database(
                self.env,
                name=f"{self.name}/shard{shard}@{node_name}",
                **self.engine_options,
            )
            for kind, args in self._schema:
                if kind == "table":
                    engine.create_table(*args)
                else:
                    engine.create_index(*args)
            if preload:
                for table, rows in preload.items():
                    if rows:
                        engine.load(table, rows)
            return engine

        group = ReplicaGroup(
            self.env,
            self.repl_net,
            name=f"{self.name}/s{shard}",
            config=self.replication,
            engine_factory=factory,
            node_names=list(members),
            service=f"{self.name}-s{shard}g{generation}",
            start_index=start_index,
        )
        group._on_leader_ext = (
            lambda node, s=shard, g=group: self._on_group_leader(s, g, node)
        )
        return group

    def _on_group_leader(self, shard: int, group: Any, node: str) -> None:
        """A replica group elected a new leader: flip the shard's owner.

        Callbacks from retired (pre-migration) groups are ignored — only
        the group currently backing the shard routes traffic."""
        if self._groups.get(shard) is not group:
            return
        self.directory.set_group_leader(shard, node)

    def replica_group(self, shard: int) -> Any:
        """The replica group currently backing ``shard`` (replicated mode)."""
        if self.replication is None:
            raise ClusterError(f"{self.name} is not replicated")
        return self._groups[shard]

    def _plan_group_members(
        self, dest: str, dest_nodes: Optional[list[str]]
    ) -> list[str]:
        factor = self.replication.factor
        if dest_nodes is not None:
            members = list(dest_nodes)
            if not members or members[0] != dest:
                raise ClusterError(
                    "dest_nodes must start with the migration destination "
                    "(the new group's bootstrap leader)"
                )
        else:
            members = [dest]
            for node in self.nodes:
                if len(members) == factor:
                    break
                if node != dest:
                    members.append(node)
        if len(members) != factor or len(set(members)) != len(members):
            raise ClusterError(
                f"replica group needs {factor} distinct nodes, got {members}"
            )
        for node in members:
            if node not in self.nodes:
                raise ClusterError(f"unknown node {node!r}")
        return members

    def migrate_shard(
        self,
        shard: int,
        dest: str,
        dest_nodes: Optional[list[str]] = None,
    ) -> Generator:
        """Live-migrate one shard to ``dest`` (drain → copy → flip).

        Under replication the whole replica group moves atomically:
        ``dest`` becomes the new group's bootstrap leader and
        ``dest_nodes`` (default: ``dest`` plus enough existing nodes)
        names the full new membership.  The old group is retired at the
        flip; the new log starts at the old leader's applied index so
        session read-your-writes tokens stay monotone across the move.
        """
        if not (0 <= shard < len(self.shards)):
            raise ClusterError(f"unknown shard {shard}")
        if dest not in self.nodes:
            raise ClusterError(f"unknown node {dest!r}")
        if self.replication is None:
            if dest_nodes is not None:
                raise ClusterError("dest_nodes requires replication")
            rows = yield from _run_migration(
                self.env, self.directory, self._mover, shard, dest,
                self.migration_stats,
            )
            return rows
        members = self._plan_group_members(dest, dest_nodes)
        mover = _ReplicatedMover(self, members)
        rows = yield from _run_migration(
            self.env, self.directory, mover, shard, dest, self.migration_stats
        )
        return rows

    # -- schema -----------------------------------------------------------------

    def _schema_engines(self) -> Generator:
        """Every engine a DDL statement must reach (all replicas, if any)."""
        if self.replication is not None:
            for shard in range(self.num_shards):
                yield from self._groups[shard].engines()
        else:
            yield from self.shards

    def create_table(self, name: str, primary_key: str = "id") -> None:
        self._schema.append(("table", (name, primary_key)))
        for engine in self._schema_engines():
            engine.create_table(name, primary_key)

    def create_index(self, table: str, column: str, ordered: bool = False) -> None:
        self._schema.append(("index", (table, column, ordered)))
        for engine in self._schema_engines():
            engine.create_index(table, column, ordered=ordered)

    def load(self, table: str, rows: list[dict]) -> None:
        buckets: dict[int, list[dict]] = {}
        for row in rows:
            primary_key = self.shards[0]._table(table).primary_key
            buckets.setdefault(self.router.shard_of(row[primary_key]), []).append(row)
        for index, shard_rows in buckets.items():
            if self.replication is not None:
                # Setup-time load sits below the log: every replica gets
                # the same rows directly, like a restored base snapshot.
                for engine in self._groups[index].engines():
                    engine.load(table, shard_rows)
            else:
                self.shards[index].load(table, shard_rows)

    # -- transactions --------------------------------------------------------------

    def begin(self, isolation: IsolationLevel = IsolationLevel.SERIALIZABLE) -> DistributedTransaction:
        return DistributedTransaction(isolation=isolation)

    def _branch(self, txn: DistributedTransaction, key: Hashable) -> Generator:
        """Resolve the shard for ``key`` and open its branch if needed.

        Opening a branch on a migrating shard waits out the migration bar
        (drain + copy); operations on branches opened *before* the bar
        proceed, which is what lets in-flight transactions drain.
        """
        shard = self.router.shard_of(key)
        if shard not in txn.branches:
            while True:
                while shard in self._barriers:
                    yield self._barriers[shard]
                if self.replication is None:
                    txn.branches[shard] = self.shards[shard].begin(txn.isolation)
                    txn.engines[shard] = self.shards[shard]
                    break
                leader = yield from self._groups[shard].wait_leader()
                if shard in self._barriers:
                    # a migration raised its bar while we waited for a
                    # leader — wait it out rather than dodging the drain
                    continue
                txn.branches[shard] = leader.engine.begin(txn.isolation)
                txn.engines[shard] = leader.engine
                txn.replicas[shard] = leader
                break
            self._active_branches[shard] = self._active_branches.get(shard, 0) + 1
        elif self.replication is not None:
            self._check_replica(txn, shard)
        return shard

    def _check_replica(self, txn: DistributedTransaction, shard: int) -> None:
        """Refuse further work on a branch whose leader was deposed.

        The branch's buffered state lives on one specific replica's
        engine; once that replica stops leading (crash, election) the
        transaction cannot commit there, so fail fast and definitely."""
        replica = txn.replicas.get(shard)
        if replica is None:
            return
        if (
            not replica.node.alive
            or replica.role != "leader"
            or replica.engine is not txn.engines[shard]
        ):
            raise ReplicaUnavailable(self._groups[shard].name, replica.node.name)

    def _close_branches(self, txn: DistributedTransaction) -> None:
        """Release drain accounting once a transaction fully settles."""
        for shard in txn.branches:
            remaining = self._active_branches.get(shard, 1) - 1
            self._active_branches[shard] = remaining
            if remaining == 0:
                waiter = self._drain_waiters.get(shard)
                if waiter is not None:
                    waiter.try_succeed(None)

    def _hop(self, shard: int) -> Generator:
        """Charge the route to the shard's owner: one round trip, plus a
        forward hop when a cached route went stale, plus the owner's
        service slot when node capacity is modeled."""
        route = self.router.resolve_shard(shard)
        yield self.env.timeout(self.rtt_ms)
        if route.forwarded:
            yield self.env.timeout(self.rtt_ms)
        if self.service_ms > 0:
            gate = self._gates[route.node]
            yield gate.acquire()
            try:
                yield self.env.timeout(self.service_ms)
            finally:
                gate.release()
        self.shard_stats.record(shard)

    def get(self, txn: DistributedTransaction, table: str, key: Hashable) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        return (yield from txn.engines[shard].get(txn.branches[shard], table, key))

    def put(self, txn: DistributedTransaction, table: str, key: Hashable, row: dict) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        yield from txn.engines[shard].put(txn.branches[shard], table, key, row)

    def insert(self, txn: DistributedTransaction, table: str, row: dict) -> Generator:
        primary_key = self.shards[0]._table(table).primary_key
        shard = yield from self._branch(txn, row[primary_key])
        yield from self._hop(shard)
        yield from txn.engines[shard].insert(txn.branches[shard], table, row)

    def update(self, txn: DistributedTransaction, table: str, key: Hashable, changes: dict) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        return (yield from txn.engines[shard].update(txn.branches[shard], table, key, changes))

    def delete(self, txn: DistributedTransaction, table: str, key: Hashable) -> Generator:
        shard = yield from self._branch(txn, key)
        yield from self._hop(shard)
        yield from txn.engines[shard].delete(txn.branches[shard], table, key)

    def commit(self, txn: DistributedTransaction) -> Generator:
        """One-phase commit if local, else 2PC across touched shards."""
        if self.replication is not None:
            yield from self._commit_replicated(txn)
            return
        if not txn.branches:
            txn.status = "committed"
            return
        try:
            if not txn.is_distributed:
                (index,) = txn.branches
                yield self.env.timeout(self.rtt_ms)
                yield from txn.engines[index].commit(txn.branches[index])
                txn.status = "committed"
                self.stats.single_shard_commits += 1
                return
            # Phase 1: prepare every branch (each is a round trip + log flush).
            prepared: list[int] = []
            try:
                for index in txn.shards_touched:
                    yield self.env.timeout(self.rtt_ms)
                    yield from txn.engines[index].prepare(txn.branches[index])
                    prepared.append(index)
            except Exception:
                for index in txn.shards_touched:
                    yield self.env.timeout(self.rtt_ms)
                    branch = txn.branches[index]
                    if index in prepared:
                        txn.engines[index].abort_prepared(branch)
                    else:
                        txn.engines[index].abort(branch)
                txn.status = "aborted"
                self.stats.distributed_aborts += 1
                raise
            # Phase 2: commit decision to every branch.
            for index in txn.shards_touched:
                yield self.env.timeout(self.rtt_ms)
                txn.engines[index].commit_prepared(txn.branches[index])
            txn.status = "committed"
            self.stats.distributed_commits += 1
        finally:
            if txn.status != "active":
                self._close_branches(txn)

    def _commit_replicated(self, txn: DistributedTransaction) -> Generator:
        """Commit through the replica groups' logs.

        Single-shard writes replicate one ``commit`` entry and wait for
        its quorum acknowledgement — pinned to the leader the transaction
        executed on, so a deposed leader yields a definite
        :class:`NotLeader` (clean abort) before proposing and an
        *uncertain* outcome after (the log settles the branch: apply,
        truncate-discard, or crash).  Cross-shard transactions run 2PC
        where both phases are log entries: ``prepare`` per touched shard,
        then an idempotent ``decide`` retried through whichever leader
        emerges until it lands, because a torn decision is an atomicity
        violation the conservation oracle would catch.
        """
        if not txn.branches:
            txn.status = "committed"
            return
        try:
            if not txn.is_distributed:
                (index,) = txn.branches
                engine = txn.engines[index]
                branch = txn.branches[index]
                yield self.env.timeout(self.rtt_ms)
                if not branch.writes:
                    # read-only: nothing to replicate, settle locally
                    yield from engine.commit(branch)
                    txn.status = "committed"
                    self.stats.single_shard_commits += 1
                    return
                self._check_replica(txn, index)
                gid = ("repl", self.env.next_id("repl-gid"))
                writes = engine.stage_replicated(branch, gid)
                try:
                    applied = yield from self._groups[index].replicate(
                        ("commit", gid, writes), replica=txn.replicas[index]
                    )
                except (NotLeader, NoLeader):
                    # definitely never proposed: unstage and report a
                    # clean abort (caller's abort() finishes the rollback)
                    engine.discard_replicated(gid)
                    raise
                except (ReplicationError, FencedOut):
                    # proposed: the log settles the branch (a FencedOut
                    # entry in fact installed — but the deposed leader
                    # must not report success it could not verify)
                    txn.status = "uncertain"
                    raise
                txn.applied[index] = applied
                txn.status = "committed"
                self.stats.single_shard_commits += 1
                return
            # -- replicated 2PC ------------------------------------------
            gid = ("repl", self.env.next_id("repl-gid"))
            write_shards = [
                index for index in txn.shards_touched
                if txn.branches[index].writes
            ]
            proposed: list[int] = []
            try:
                for index in write_shards:
                    engine = txn.engines[index]
                    yield self.env.timeout(self.rtt_ms)
                    self._check_replica(txn, index)
                    writes = engine.stage_replicated(
                        txn.branches[index], gid, prepared=True
                    )
                    try:
                        yield from self._groups[index].replicate(
                            ("prepare", gid, writes),
                            replica=txn.replicas[index],
                        )
                    except (NotLeader, NoLeader):
                        engine.discard_replicated(gid)
                        raise
                    except (ReplicationError, FencedOut):
                        proposed.append(index)
                        raise
                    proposed.append(index)
            except Exception:
                # An abort decision is always safe while no commit
                # decision replicated: shards whose prepare did (or will)
                # land see the abort next; shards where it never landed
                # settle by truncation-discard or crash.  Mark the
                # outcome first so a concurrent abort() won't touch
                # staged branches while the decides are in flight.
                txn.status = "aborted"
                self.stats.distributed_aborts += 1
                for index in proposed:
                    yield self.env.timeout(self.rtt_ms)
                    yield from self._groups[index].replicate(
                        ("decide", gid, False),
                        retry=True, timeout=_DECIDE_TIMEOUT_MS,
                    )
                for index, branch in txn.branches.items():
                    if index not in proposed:
                        txn.engines[index].abort(branch)
                raise
            # Phase 2: the decision is now determined — drive it to every
            # participant group no matter how leadership churns.
            txn.status = "uncertain"
            for index in write_shards:
                yield self.env.timeout(self.rtt_ms)
                applied = yield from self._groups[index].replicate(
                    ("decide", gid, True),
                    retry=True, timeout=_DECIDE_TIMEOUT_MS,
                )
                txn.applied[index] = applied
            for index in txn.shards_touched:
                branch = txn.branches[index]
                if not branch.writes:
                    yield self.env.timeout(self.rtt_ms)
                    try:
                        yield from txn.engines[index].commit(branch)
                    except Exception:
                        pass  # read-only branch on a dead replica
            txn.status = "committed"
            self.stats.distributed_commits += 1
        finally:
            if txn.status != "active":
                self._close_branches(txn)

    def abort(self, txn: DistributedTransaction) -> None:
        if txn.status != "active":
            return
        for index, branch in txn.branches.items():
            txn.engines[index].abort(branch)
        txn.status = "aborted"
        self._close_branches(txn)

    # -- parallel-epoch entry points (repro.parallel) --------------------------------

    def export_shard_snapshot(
        self, shard: int, tables: Optional[list[str]] = None
    ) -> dict[tuple[str, Hashable], dict]:
        """One shard engine's committed rows in worker-shipping format."""
        if not (0 <= shard < len(self.shards)):
            raise ClusterError(f"unknown shard {shard}")
        return self.shards[shard].export_snapshot(tables)

    def apply_shard_epoch(
        self, shard: int, txn_writes: list, *, epoch: int = 0
    ) -> int:
        """Merge one shard's epoch results into its authoritative engine.

        ``txn_writes`` must already be restricted to keys this shard owns
        and sorted in TID order (the executor splits cross-shard
        transactions' write sets per owning shard before calling this).
        """
        if not (0 <= shard < len(self.shards)):
            raise ClusterError(f"unknown shard {shard}")
        return self.shards[shard].apply_epoch(txn_writes, epoch=epoch)

    # -- helpers --------------------------------------------------------------------

    def owner_of(self, key: Hashable) -> str:
        """The node currently owning ``key``'s shard (tests, scenarios)."""
        return self.directory.owner_of(self.router.shard_of(key))

    def read_latest(self, table: str, key: Hashable) -> Optional[dict]:
        return self.shards[self.router.shard_of(key)].read_latest(table, key)

    def all_rows(self, table: str) -> list[dict]:
        rows: list[dict] = []
        for shard in self.shards:
            rows.extend(shard.all_rows(table))
        return rows

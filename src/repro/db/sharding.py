"""Hash-sharded database with cross-shard two-phase commit.

Models the scale-out relational tier: each shard is a full
:class:`~repro.db.engine.Database`; single-shard transactions commit
locally, cross-shard transactions run 2PC over the shards' XA interface.
This is the "cross-engine transactions ... at a lower level than the
application" design the paper points to as promising (§5.2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Generator, Hashable, Optional

from repro.db.engine import Database, IsolationLevel, Transaction
from repro.sim import Environment


def shard_of(key: Hashable, num_shards: int) -> int:
    """Deterministic, platform-stable shard routing."""
    digest = zlib.crc32(repr(key).encode("utf-8"))
    return digest % num_shards


@dataclass
class DistributedTransaction:
    """A transaction that may touch several shards."""

    isolation: IsolationLevel
    branches: dict[int, Transaction] = field(default_factory=dict)
    status: str = "active"

    @property
    def shards_touched(self) -> list[int]:
        return sorted(self.branches)

    @property
    def is_distributed(self) -> bool:
        return len(self.branches) > 1


@dataclass
class ShardStats:
    single_shard_commits: int = 0
    distributed_commits: int = 0
    distributed_aborts: int = 0


class ShardedDatabase:
    """N engine shards behind a routing layer with 2PC.

    The API mirrors :class:`~repro.db.engine.Database`; rows are routed by
    primary key.  ``commit`` runs one-phase for single-shard transactions
    and prepare/commit over every touched shard otherwise, charging
    ``rtt_ms`` per coordinator-to-shard message so the cost of the extra
    round trips is visible.
    """

    def __init__(
        self,
        env: Environment,
        num_shards: int = 4,
        name: str = "sharded-db",
        rtt_ms: float = 1.0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.env = env
        self.name = name
        self.rtt_ms = rtt_ms
        self.shards = [Database(env, name=f"{name}/shard{i}") for i in range(num_shards)]
        self.stats = ShardStats()

    # -- schema -----------------------------------------------------------------

    def create_table(self, name: str, primary_key: str = "id") -> None:
        for shard in self.shards:
            shard.create_table(name, primary_key)

    def load(self, table: str, rows: list[dict]) -> None:
        buckets: dict[int, list[dict]] = {}
        for row in rows:
            primary_key = self.shards[0]._table(table).primary_key
            buckets.setdefault(shard_of(row[primary_key], len(self.shards)), []).append(row)
        for index, shard_rows in buckets.items():
            self.shards[index].load(table, shard_rows)

    # -- transactions --------------------------------------------------------------

    def begin(self, isolation: IsolationLevel = IsolationLevel.SERIALIZABLE) -> DistributedTransaction:
        return DistributedTransaction(isolation=isolation)

    def _branch(self, txn: DistributedTransaction, key: Hashable) -> tuple[Database, Transaction]:
        index = shard_of(key, len(self.shards))
        if index not in txn.branches:
            txn.branches[index] = self.shards[index].begin(txn.isolation)
        return self.shards[index], txn.branches[index]

    def get(self, txn: DistributedTransaction, table: str, key: Hashable) -> Generator:
        shard, branch = self._branch(txn, key)
        yield self.env.timeout(self.rtt_ms)
        return (yield from shard.get(branch, table, key))

    def put(self, txn: DistributedTransaction, table: str, key: Hashable, row: dict) -> Generator:
        shard, branch = self._branch(txn, key)
        yield self.env.timeout(self.rtt_ms)
        yield from shard.put(branch, table, key, row)

    def insert(self, txn: DistributedTransaction, table: str, row: dict) -> Generator:
        primary_key = self.shards[0]._table(table).primary_key
        shard, branch = self._branch(txn, row[primary_key])
        yield self.env.timeout(self.rtt_ms)
        yield from shard.insert(branch, table, row)

    def update(self, txn: DistributedTransaction, table: str, key: Hashable, changes: dict) -> Generator:
        shard, branch = self._branch(txn, key)
        yield self.env.timeout(self.rtt_ms)
        return (yield from shard.update(branch, table, key, changes))

    def delete(self, txn: DistributedTransaction, table: str, key: Hashable) -> Generator:
        shard, branch = self._branch(txn, key)
        yield self.env.timeout(self.rtt_ms)
        yield from shard.delete(branch, table, key)

    def commit(self, txn: DistributedTransaction) -> Generator:
        """One-phase commit if local, else 2PC across touched shards."""
        if not txn.branches:
            txn.status = "committed"
            return
        if not txn.is_distributed:
            (index,) = txn.branches
            yield self.env.timeout(self.rtt_ms)
            yield from self.shards[index].commit(txn.branches[index])
            txn.status = "committed"
            self.stats.single_shard_commits += 1
            return
        # Phase 1: prepare every branch (each is a round trip + log flush).
        prepared: list[int] = []
        try:
            for index in txn.shards_touched:
                yield self.env.timeout(self.rtt_ms)
                yield from self.shards[index].prepare(txn.branches[index])
                prepared.append(index)
        except Exception:
            for index in txn.shards_touched:
                yield self.env.timeout(self.rtt_ms)
                branch = txn.branches[index]
                if index in prepared:
                    self.shards[index].abort_prepared(branch)
                else:
                    self.shards[index].abort(branch)
            txn.status = "aborted"
            self.stats.distributed_aborts += 1
            raise
        # Phase 2: commit decision to every branch.
        for index in txn.shards_touched:
            yield self.env.timeout(self.rtt_ms)
            self.shards[index].commit_prepared(txn.branches[index])
        txn.status = "committed"
        self.stats.distributed_commits += 1

    def abort(self, txn: DistributedTransaction) -> None:
        for index, branch in txn.branches.items():
            self.shards[index].abort(branch)
        txn.status = "aborted"

    # -- helpers --------------------------------------------------------------------

    def read_latest(self, table: str, key: Hashable) -> Optional[dict]:
        return self.shards[shard_of(key, len(self.shards))].read_latest(table, key)

    def all_rows(self, table: str) -> list[dict]:
        rows: list[dict] = []
        for shard in self.shards:
            rows.extend(shard.all_rows(table))
        return rows

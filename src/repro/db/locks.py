"""Hierarchical lock manager with deadlock detection.

Implements the classic multi-granularity scheme: intention locks (IS/IX) at
table level, shared/exclusive (S/X) at row level, FIFO queuing, lock
upgrades, and waits-for-graph cycle detection.  When a lock request would
close a cycle, the *requester* is chosen as the deadlock victim and its
acquire future fails with :class:`DeadlockAbort` — this is what makes "the
blocking nature of traditional protocol implementations" (paper §4.2)
observable in the benchmarks.

Because a transaction is a sequential simulation process, it waits on at
most one resource at a time; its waits-for edges are therefore recomputed
wholesale whenever the queue it sits in changes, keeping detection exact.

Two indexes keep the hot paths cheap and deterministic:

- ``_held_by_txn`` and ``_waiting_by_txn`` map each transaction to the
  resources it holds / queues on, so :meth:`release_all` (called on every
  commit and abort) is O(locks touched by the txn) instead of a scan over
  every lock in the system.  Both use insertion-ordered dicts as ordered
  sets: release wakes waiters in acquisition order, which — unlike the
  hash-ordered sets they replace — does not depend on ``PYTHONHASHSEED``.
- The waits-for graph is maintained incrementally on the common enqueue
  path (a tail enqueue only adds edges *from* the new waiter, so only the
  new waiter can close a new cycle and only its edges need computing); the
  full per-resource rebuild runs only on queue-reordering events (upgrades
  jumping the queue, grants, victim aborts).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Hashable, Optional

from repro.db.errors import DeadlockAbort
from repro.sim import Environment, Future


class LockMode(enum.Enum):
    """Lock modes; compatibility follows the textbook matrix."""

    IS = "IS"
    IX = "IX"
    S = "S"
    X = "X"


_COMPATIBLE: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.IS, LockMode.IS): True,
    (LockMode.IS, LockMode.IX): True,
    (LockMode.IS, LockMode.S): True,
    (LockMode.IS, LockMode.X): False,
    (LockMode.IX, LockMode.IS): True,
    (LockMode.IX, LockMode.IX): True,
    (LockMode.IX, LockMode.S): False,
    (LockMode.IX, LockMode.X): False,
    (LockMode.S, LockMode.IS): True,
    (LockMode.S, LockMode.IX): False,
    (LockMode.S, LockMode.S): True,
    (LockMode.S, LockMode.X): False,
    (LockMode.X, LockMode.IS): False,
    (LockMode.X, LockMode.IX): False,
    (LockMode.X, LockMode.S): False,
    (LockMode.X, LockMode.X): False,
}

# Upgrade lattice: the mode that covers both (SIX simplified to X).
_COMBINE: dict[tuple[LockMode, LockMode], LockMode] = {
    (LockMode.IS, LockMode.IX): LockMode.IX,
    (LockMode.IS, LockMode.S): LockMode.S,
    (LockMode.IS, LockMode.X): LockMode.X,
    (LockMode.IX, LockMode.S): LockMode.X,
    (LockMode.IX, LockMode.X): LockMode.X,
    (LockMode.S, LockMode.X): LockMode.X,
}


def combine(held: LockMode, wanted: LockMode) -> LockMode:
    """The weakest mode covering both ``held`` and ``wanted``."""
    if held == wanted:
        return held
    return _COMBINE.get((held, wanted)) or _COMBINE.get((wanted, held)) or LockMode.X


def compatible(a: LockMode, b: LockMode) -> bool:
    """Whether two modes may be held simultaneously by different txns."""
    return _COMPATIBLE[(a, b)]


@dataclass
class _Waiter:
    tid: int
    mode: LockMode
    future: Future
    upgrade: bool


@dataclass
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    queue: Deque[_Waiter] = field(default_factory=deque)


@dataclass
class LockStats:
    acquired: int = 0
    waited: int = 0
    deadlocks: int = 0


class LockManager:
    """Per-database lock table plus the waits-for graph."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._locks: dict[Hashable, _LockState] = {}
        self._waits_for: dict[int, set[int]] = {}
        # dict-as-ordered-set: values are always None.  Iteration order is
        # insertion (= acquisition / first-wait) order, never hash order.
        self._held_by_txn: dict[int, dict[Hashable, None]] = {}
        self._waiting_by_txn: dict[int, dict[Hashable, None]] = {}
        self.stats = LockStats()

    # -- acquisition --------------------------------------------------------

    def acquire(self, tid: int, resource: Hashable, mode: LockMode) -> Future:
        """Request a lock; the returned future resolves when granted.

        Fails with :class:`DeadlockAbort` if waiting would close a cycle.
        Callers must release with :meth:`release_all` on commit and abort.
        """
        state = self._locks.setdefault(resource, _LockState())
        fut = self.env.future(label=f"lock:{resource}:{mode.value}")

        held = state.holders.get(tid)
        upgrade = False
        if held is not None:
            wanted = combine(held, mode)
            if wanted == held:
                fut.succeed(None)
                return fut
            mode = wanted
            upgrade = True

        if self._grantable(state, tid, mode, upgrade):
            self._grant(state, tid, resource, mode)
            fut.succeed(None)
            return fut

        waiter = _Waiter(tid, mode, fut, upgrade)
        self.stats.waited += 1
        self._waiting_by_txn.setdefault(tid, {})[resource] = None
        if upgrade:
            # Upgrades jump the queue: every waiter behind gains a blocker,
            # so the whole resource's edges must be rebuilt.
            state.queue.appendleft(waiter)
            self._refresh_edges(resource, state)
            self._abort_new_deadlock_victims(resource, state, prefer=tid)
            return fut
        state.queue.append(waiter)
        # Tail enqueue: only the new waiter gained edges (conflicting
        # holders plus every pending waiter ahead of it), so only it can
        # close a *new* cycle — one edge-set computation and at most one
        # DFS, instead of a rebuild plus a DFS per waiter.
        edges = {
            holder
            for holder, held_mode in state.holders.items()
            if holder != tid and not compatible(held_mode, mode)
        }
        edges.update(w.tid for w in state.queue if w.tid != tid and not w.future.done)
        self._waits_for[tid] = edges
        cycle = self._find_cycle(tid)
        if cycle:
            self._abort_victim(resource, state, waiter, cycle)
        return fut

    def _grantable(self, state: _LockState, tid: int, mode: LockMode, upgrade: bool) -> bool:
        conflict = any(
            holder != tid and not compatible(held_mode, mode)
            for holder, held_mode in state.holders.items()
        )
        if conflict:
            return False
        if state.queue and not upgrade:
            return False  # FIFO fairness: don't jump over waiters
        return True

    def _grant(self, state: _LockState, tid: int, resource: Hashable, mode: LockMode) -> None:
        state.holders[tid] = combine(state.holders.get(tid, mode), mode)
        self._held_by_txn.setdefault(tid, {})[resource] = None
        self._waits_for.pop(tid, None)
        self.stats.acquired += 1

    # -- release ------------------------------------------------------------

    def release_all(self, tid: int) -> None:
        """Release every lock held or awaited by ``tid`` (commit/abort).

        O(resources the txn touched); wakes waiters in the txn's
        acquisition order, which is deterministic for a given seed.
        """
        held = self._held_by_txn.pop(tid, None)
        waited = self._waiting_by_txn.pop(tid, None)
        touched: list[Hashable] = []
        if held:
            for resource in held:
                state = self._locks.get(resource)
                if state is None:
                    continue
                state.holders.pop(tid, None)
                touched.append(resource)
        if waited:
            for resource in waited:
                state = self._locks.get(resource)
                if state is None:
                    continue
                state.queue = deque(w for w in state.queue if w.tid != tid)
                if held is None or resource not in held:
                    touched.append(resource)
        self._waits_for.pop(tid, None)
        for resource in touched:
            state = self._locks.get(resource)
            if state is not None:
                self._wake_waiters(resource, state)

    def _unnote_waiting(self, tid: int, resource: Hashable, state: Optional[_LockState]) -> None:
        """Drop ``resource`` from ``tid``'s waiting index.

        When ``state`` is given, the entry survives if the queue still has
        another pending waiter for the same tid (double direct acquires).
        """
        if state is not None and any(
            w.tid == tid and not w.future.done for w in state.queue
        ):
            return
        waiting = self._waiting_by_txn.get(tid)
        if waiting is not None:
            waiting.pop(resource, None)
            if not waiting:
                self._waiting_by_txn.pop(tid, None)

    def _wake_waiters(self, resource: Hashable, state: _LockState) -> None:
        while state.queue:
            waiter = state.queue[0]
            if waiter.future.done:
                state.queue.popleft()
                self._unnote_waiting(waiter.tid, resource, state)
                continue
            blocked = any(
                holder != waiter.tid and not compatible(held_mode, waiter.mode)
                for holder, held_mode in state.holders.items()
            )
            if blocked:
                break
            state.queue.popleft()
            self._unnote_waiting(waiter.tid, resource, state)
            self._grant(state, waiter.tid, resource, waiter.mode)
            waiter.future.succeed(None)
        if not state.holders and not state.queue:
            self._locks.pop(resource, None)
            return
        self._refresh_edges(resource, state)
        self._abort_new_deadlock_victims(resource, state)

    # -- deadlock detection ---------------------------------------------------

    def _refresh_edges(self, resource: Hashable, state: _LockState) -> None:
        """Recompute waits-for edges for every waiter on ``resource``.

        A waiter depends on all conflicting holders and on every waiter
        ahead of it in the queue (FIFO fairness makes those real blockers).
        """
        ahead: list[_Waiter] = []
        for waiter in state.queue:
            if waiter.future.done:
                continue
            edges = {
                holder
                for holder, held_mode in state.holders.items()
                if holder != waiter.tid and not compatible(held_mode, waiter.mode)
            }
            edges.update(w.tid for w in ahead if w.tid != waiter.tid)
            self._waits_for[waiter.tid] = edges
            ahead.append(waiter)

    def _abort_victim(
        self,
        resource: Hashable,
        state: _LockState,
        waiter: _Waiter,
        cycle: list[int],
    ) -> None:
        """Fail ``waiter`` as a deadlock victim and re-drive the queue."""
        self.stats.deadlocks += 1
        self._waits_for.pop(waiter.tid, None)
        state.queue = deque(w for w in state.queue if w.tid != waiter.tid)
        self._unnote_waiting(waiter.tid, resource, None)
        waiter.future.fail(DeadlockAbort(waiter.tid, cycle))
        self._refresh_edges(resource, state)
        self._wake_waiters(resource, state)

    def _abort_new_deadlock_victims(
        self,
        resource: Hashable,
        state: _LockState,
        prefer: Optional[int] = None,
    ) -> None:
        """Abort waiters on ``resource`` whose wait now closes a cycle.

        ``prefer`` (the newest requester) is checked first so the txn that
        *created* the deadlock is the victim, matching common DBMS policy.
        """
        ordered = sorted(
            (w for w in state.queue if not w.future.done),
            key=lambda w: (w.tid != prefer,),
        )
        for waiter in ordered:
            cycle = self._find_cycle(waiter.tid)
            if cycle:
                self._abort_victim(resource, state, waiter, cycle)
                return

    def _find_cycle(self, start: int) -> Optional[list[int]]:
        """DFS over the waits-for graph; return a cycle through ``start``."""
        path: list[int] = []
        visited: set[int] = set()

        def dfs(tid: int) -> Optional[list[int]]:
            if tid == start and path:
                return list(path)
            if tid in visited:
                return None
            visited.add(tid)
            path.append(tid)
            for nxt in self._waits_for.get(tid, ()):
                found = dfs(nxt)
                if found:
                    return found
            path.pop()
            return None

        return dfs(start)

    # -- introspection ---------------------------------------------------------

    def holders(self, resource: Hashable) -> dict[int, LockMode]:
        state = self._locks.get(resource)
        return dict(state.holders) if state else {}

    def held_by(self, tid: int) -> set[Hashable]:
        return set(self._held_by_txn.get(tid, ()))

    def queue_length(self, resource: Hashable) -> int:
        state = self._locks.get(resource)
        return sum(1 for w in state.queue if not w.future.done) if state else 0

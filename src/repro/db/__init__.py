"""A from-scratch transactional database engine.

This is the *external DBMS* substrate of the paper (§1, §3.3): the system
that monoliths delegated state management, recovery, and consistency to, and
that each microservice re-adopts as a private or shared database.  It
provides:

- heap tables with primary keys and secondary indexes,
- three isolation levels — read committed, snapshot isolation (MVCC with
  first-committer-wins), and serializable (strict two-phase locking with
  intention locks and deadlock detection),
- a write-ahead log with redo recovery (deferred updates, so undo is not
  needed — an "ARIES-lite"),
- an XA-style participant interface (prepare / commit / rollback) used by
  the 2PC coordinator in :mod:`repro.transactions`,
- hash-sharding with cross-shard two-phase commit.
"""

from repro.db.errors import (
    DeadlockAbort,
    DuplicateKey,
    FencedOut,
    LockTimeout,
    TransactionAborted,
    TransactionError,
    WriteConflict,
)
from repro.db.engine import Database, IsolationLevel, Row, Transaction, TxnStatus
from repro.db.locks import LockManager, LockMode
from repro.db.server import DatabaseServer
from repro.db.sharding import ShardedDatabase

__all__ = [
    "Database",
    "DatabaseServer",
    "DeadlockAbort",
    "DuplicateKey",
    "FencedOut",
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "LockTimeout",
    "Row",
    "ShardedDatabase",
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TxnStatus",
    "WriteConflict",
]

"""A database deployed as a network service with realistic costs.

Wraps a :class:`~repro.db.engine.Database` behind per-operation service time
and a connection-pool semaphore, so that *shared database* deployments show
the resource contention the paper warns about (§3.3: "sharing database
resources ... jeopardizing performance isolation") and every remote access
costs a round trip.
"""

from __future__ import annotations

from typing import Any, Generator, Hashable, Optional

from repro.db.engine import Database, IsolationLevel, Transaction
from repro.db.errors import InvalidTransactionState
from repro.net.latency import Latency, Sampler
from repro.sim import Environment, Semaphore


class DatabaseServer:
    """Latency- and concurrency-charging facade over an engine.

    Parameters
    ----------
    connections:
        Size of the connection pool.  Every transaction holds a connection
        from ``begin`` to ``commit``/``abort`` — the contention point that
        a noisy tenant saturates in a shared-database deployment.
    op_service_time:
        Sampler for per-operation processing time (CPU + disk of the
        database node).
    network_rtt:
        Sampler for the client's round trip to the database; charged once
        per operation, as for a remote (external-state) database.

    The keyword-only ``gc``/``group_commit``/``copy_reads`` flags pass
    through to the underlying :class:`~repro.db.engine.Database` (storage
    fast paths and their reference modes), as do ``adaptive`` and
    ``flush_window_ms`` (the load-adaptive group-commit/GC windows) and
    ``fast_grants`` (consume already-granted pool connections and locks
    without a suspension round trip; ``False`` is the reference mode).
    """

    def __init__(
        self,
        env: Environment,
        name: str = "db",
        connections: int = 32,
        op_service_time: Optional[Sampler] = None,
        network_rtt: Optional[Sampler] = None,
        *,
        gc: bool = True,
        group_commit: bool = True,
        copy_reads: bool = False,
        adaptive: bool = False,
        flush_window_ms: float = 2.0,
        fast_grants: bool = True,
        follower: bool = False,
    ) -> None:
        self.env = env
        self.engine = Database(
            env,
            name=name,
            gc=gc,
            group_commit=group_commit,
            copy_reads=copy_reads,
            adaptive=adaptive,
            flush_window_ms=flush_window_ms,
            fast_grants=fast_grants,
        )
        self.name = name
        #: follower mode: the server is a read replica — interactive
        #: transactions are refused, state advances only through
        #: :meth:`apply_log_suffix` (committed entries from its leader).
        self.follower = follower
        self.applied_index = 0
        self._pool = Semaphore(env, connections, label=f"{name}.pool")
        self._service = op_service_time or Latency.local_disk()
        self._rtt = network_rtt or Latency.intra_zone()
        self._rng = env.stream(f"dbserver:{name}")
        self._fast_grants = fast_grants

    # -- schema (instant, setup-time) -----------------------------------------

    def create_table(self, name: str, primary_key: str = "id") -> None:
        self.engine.create_table(name, primary_key)

    def create_index(self, table: str, column: str, ordered: bool = False) -> None:
        self.engine.create_index(table, column, ordered=ordered)

    def load(self, table: str, rows: list[dict]) -> None:
        self.engine.load(table, rows)

    # -- transactional API ------------------------------------------------------

    # The public operations below are plain functions returning the inner
    # generator (callers drive them with ``yield from`` either way), so an
    # untraced run pays neither the span bookkeeping nor the extra
    # delegating generator frame per operation — the per-op overhead this
    # facade adds is exactly one timeout yield plus two RNG draws.

    def _charge(self) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))

    def _traced(self, name: str, gen: Generator, **tags: Any) -> Generator:
        """Run ``gen`` under a causal span (one span per client-visible op)."""
        tracer = self.env.tracer
        span = tracer.begin(name, db=self.name, **tags)
        try:
            return (yield from gen)
        finally:
            tracer.end(span)

    def begin(self, isolation: IsolationLevel = IsolationLevel.SERIALIZABLE) -> Generator:
        """Open a transaction, waiting for a pooled connection."""
        gen = self._begin(isolation)
        if self.env.tracer.enabled:
            return self._traced("db.begin", gen, isolation=isolation.value)
        return gen

    def _begin(self, isolation: IsolationLevel) -> Generator:
        if self.follower:
            raise InvalidTransactionState(
                f"{self.name} is a follower replica: interactive "
                "transactions must go to the leader"
            )
        grant = self._pool.acquire()
        if grant.done:
            if not self._fast_grants:
                yield grant
        else:
            # Pool exhausted: surface the queueing delay as its own span —
            # the §3.3 performance-isolation contention made visible.
            tracer = self.env.tracer
            wait = tracer.begin("db.pool_wait", db=self.name)
            try:
                yield grant
            finally:
                tracer.end(wait)
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        return self.engine.begin(isolation)

    def get(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        gen = self._get(txn, table, key)
        if self.env.tracer.enabled:
            return self._traced("db.get", gen, table=table)
        return gen

    def _get(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        return (yield from self.engine.get(txn, table, key))

    def scan(self, txn: Transaction, table: str, predicate=None) -> Generator:
        gen = self._scan(txn, table, predicate)
        if self.env.tracer.enabled:
            return self._traced("db.scan", gen, table=table)
        return gen

    def _scan(self, txn: Transaction, table: str, predicate) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        rows = yield from self.engine.scan(txn, table, predicate)
        # Result-set transfer cost: scans are not free the way gets are.
        yield self.env.timeout(0.002 * len(rows))
        return rows

    def lookup(self, txn: Transaction, table: str, column: str, value: Any) -> Generator:
        gen = self._lookup(txn, table, column, value)
        if self.env.tracer.enabled:
            return self._traced("db.lookup", gen, table=table)
        return gen

    def _lookup(self, txn: Transaction, table: str, column: str, value: Any) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        return (yield from self.engine.lookup(txn, table, column, value))

    def range_lookup(
        self, txn: Transaction, table: str, column: str, low: Any, high: Any
    ) -> Generator:
        gen = self._range_lookup(txn, table, column, low, high)
        if self.env.tracer.enabled:
            return self._traced("db.range_lookup", gen, table=table)
        return gen

    def _range_lookup(
        self, txn: Transaction, table: str, column: str, low: Any, high: Any
    ) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        rows = yield from self.engine.range_lookup(txn, table, column, low, high)
        yield self.env.timeout(0.002 * len(rows))
        return rows

    def insert(self, txn: Transaction, table: str, row: dict) -> Generator:
        gen = self._insert(txn, table, row)
        if self.env.tracer.enabled:
            return self._traced("db.insert", gen, table=table)
        return gen

    def _insert(self, txn: Transaction, table: str, row: dict) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        yield from self.engine.insert(txn, table, row)

    def put(self, txn: Transaction, table: str, key: Hashable, row: dict) -> Generator:
        gen = self._put(txn, table, key, row)
        if self.env.tracer.enabled:
            return self._traced("db.put", gen, table=table)
        return gen

    def _put(self, txn: Transaction, table: str, key: Hashable, row: dict) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        yield from self.engine.put(txn, table, key, row)

    def update(self, txn: Transaction, table: str, key: Hashable, changes: dict) -> Generator:
        gen = self._update(txn, table, key, changes)
        if self.env.tracer.enabled:
            return self._traced("db.update", gen, table=table)
        return gen

    def _update(self, txn: Transaction, table: str, key: Hashable, changes: dict) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        return (yield from self.engine.update(txn, table, key, changes))

    def delete(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        gen = self._delete(txn, table, key)
        if self.env.tracer.enabled:
            return self._traced("db.delete", gen, table=table)
        return gen

    def _delete(self, txn: Transaction, table: str, key: Hashable) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        yield from self.engine.delete(txn, table, key)

    def commit(self, txn: Transaction) -> Generator:
        gen = self._commit(txn)
        if self.env.tracer.enabled:
            return self._traced("db.commit", gen)
        return gen

    def _commit(self, txn: Transaction) -> Generator:
        try:
            yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
            yield from self.engine.commit(txn)
        finally:
            self._release_connection(txn)

    def abort(self, txn: Transaction) -> Generator:
        gen = self._abort(txn)
        if self.env.tracer.enabled:
            return self._traced("db.abort", gen)
        return gen

    def _abort(self, txn: Transaction) -> Generator:
        try:
            yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
            self.engine.abort(txn)
        finally:
            self._release_connection(txn)

    def _released(self, txn: Transaction) -> bool:
        return getattr(txn, "_conn_released", False)

    def _release_connection(self, txn: Transaction) -> None:
        if not self._released(txn):
            txn._conn_released = True  # type: ignore[attr-defined]
            self._pool.release()

    # -- replication (follower mode) -----------------------------------------------

    def promote(self) -> None:
        """Leave follower mode: the server accepts transactions again."""
        self.follower = False

    def demote(self) -> None:
        """Enter follower mode: refuse transactions, serve replica reads."""
        self.follower = True

    def read_latest(self, table: str, key: Hashable) -> Generator:
        """Latest-committed read outside any transaction (replica reads).

        Charged like any other operation; available in both modes — on a
        follower this is the bounded-stale read surface.
        """
        yield from self._charge()
        return self.engine.read_latest(table, key)

    def apply_log_suffix(
        self, entries: list[tuple[int, int, tuple]], *, fencing: bool = True
    ) -> Generator:
        """Apply a committed log suffix ``[(index, term, command), ...]``.

        Entries at or below :attr:`applied_index` are skipped (idempotent
        catch-up: a leader may re-ship an overlapping suffix after a
        follower restart).  With ``fencing`` the entry's term is passed as
        the fencing token, matching the replica apply path.  Returns the
        number of entries applied.
        """
        applied = 0
        for index, term, command in entries:
            if index <= self.applied_index:
                continue
            yield from self._charge()
            kind = command[0]
            token = term if fencing else None
            if kind == "commit":
                self.engine.apply_replicated(
                    "commit", command[1], command[2], token=token
                )
            elif kind == "prepare":
                self.engine.apply_replicated(
                    "prepare", command[1], command[2], token=token
                )
            elif kind == "decide":
                self.engine.apply_replicated(
                    "decide", command[1], token=token, decision=command[2]
                )
            # "noop" and unknown kinds advance the index without effects
            self.applied_index = index
            applied += 1
        return applied

    # -- XA -----------------------------------------------------------------------

    def prepare(self, txn: Transaction) -> Generator:
        gen = self._prepare(txn)
        if self.env.tracer.enabled:
            return self._traced("db.prepare", gen)
        return gen

    def _prepare(self, txn: Transaction) -> Generator:
        yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
        yield from self.engine.prepare(txn)

    def commit_prepared(self, txn: Transaction) -> Generator:
        gen = self._commit_prepared(txn)
        if self.env.tracer.enabled:
            return self._traced("db.commit_prepared", gen)
        return gen

    def _commit_prepared(self, txn: Transaction) -> Generator:
        try:
            yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
            self.engine.commit_prepared(txn)
        finally:
            self._release_connection(txn)

    def abort_prepared(self, txn: Transaction) -> Generator:
        gen = self._abort_prepared(txn)
        if self.env.tracer.enabled:
            return self._traced("db.abort_prepared", gen)
        return gen

    def _abort_prepared(self, txn: Transaction) -> Generator:
        try:
            yield self.env.timeout(self._rtt(self._rng) + self._service(self._rng))
            self.engine.abort_prepared(txn)
        finally:
            self._release_connection(txn)

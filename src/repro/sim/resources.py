"""Synchronization resources built on the kernel: queues, locks, semaphores.

These are the building blocks used by mailboxes, broker consumers, lock
managers, and connection pools throughout :mod:`repro`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.environment import Environment, SimulationError
from repro.sim.events import Future


class Channel:
    """Unbounded FIFO channel: ``put`` never blocks, ``get`` returns a future.

    Items put while getters are waiting are handed to the oldest getter.
    """

    def __init__(self, env: Environment, label: str = "channel") -> None:
        self.env = env
        self.label = label
        self._items: Deque[Any] = deque()
        self._getters: Deque[Future] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._closed:
            raise SimulationError(f"put() on closed channel {self.label!r}")
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done:  # skip getters cancelled by interrupts
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Future:
        """Return a future resolving with the next item."""
        fut = Future(self.env, label=f"{self.label}.get")
        if self._items:
            fut.succeed(self._items.popleft())
        elif self._closed:
            fut.fail(ChannelClosed(self.label))
        else:
            self._getters.append(fut)
        return fut

    def get_nowait(self) -> Any:
        """Pop the next item immediately; raise ``IndexError`` if empty."""
        return self._items.popleft()

    def close(self) -> None:
        """Close the channel; pending and future getters fail."""
        self._closed = True
        while self._getters:
            getter = self._getters.popleft()
            getter.try_fail(ChannelClosed(self.label))


class ChannelClosed(Exception):
    """Raised to getters when a channel is closed."""


class Store:
    """Bounded buffer: both ``put`` and ``get`` may block.

    Used to model backpressured links (e.g. dataflow channels with credit-
    based flow control).
    """

    def __init__(self, env: Environment, capacity: int, label: str = "store") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.label = label
        self._items: Deque[Any] = deque()
        self._getters: Deque[Future] = deque()
        self._putters: Deque[tuple[Future, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Future:
        """Return a future resolving once ``item`` is accepted."""
        fut = Future(self.env, label=f"{self.label}.put")
        while self._getters:
            getter = self._getters.popleft()
            if not getter.done:
                getter.succeed(item)
                fut.succeed(None)
                return fut
        if len(self._items) < self.capacity:
            self._items.append(item)
            fut.succeed(None)
        else:
            self._putters.append((fut, item))
        return fut

    def get(self) -> Future:
        """Return a future resolving with the next item."""
        fut = Future(self.env, label=f"{self.label}.get")
        if self._items:
            fut.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(fut)
        return fut

    def _admit_putter(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            put_fut, item = self._putters.popleft()
            if put_fut.done:
                continue
            self._items.append(item)
            put_fut.succeed(None)


class Lock:
    """A non-reentrant mutex with FIFO granting.

    ``acquire`` returns a future that resolves when the lock is held.  The
    typical use inside a process is::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, env: Environment, label: str = "lock") -> None:
        self.env = env
        self.label = label
        self._locked = False
        self._waiters: Deque[Future] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Future:
        fut = Future(self.env, label=f"{self.label}.acquire")
        if not self._locked:
            self._locked = True
            fut.succeed(None)
        else:
            self._waiters.append(fut)
        return fut

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release() of unheld lock {self.label!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done:
                waiter.succeed(None)
                return
        self._locked = False


class Semaphore:
    """Counting semaphore with FIFO granting (connection pools, slots)."""

    def __init__(self, env: Environment, permits: int, label: str = "semaphore") -> None:
        if permits <= 0:
            raise ValueError("permits must be positive")
        self.env = env
        self.label = label
        self._permits = permits
        self._available = permits
        self._waiters: Deque[Future] = deque()

    @property
    def available(self) -> int:
        return self._available

    @property
    def permits(self) -> int:
        return self._permits

    def acquire(self) -> Future:
        fut = Future(self.env, label=f"{self.label}.acquire")
        if self._available > 0:
            self._available -= 1
            fut.succeed(None)
        else:
            self._waiters.append(fut)
        return fut

    def release(self) -> None:
        if self._available >= self._permits and not self._waiters:
            raise SimulationError(f"release() beyond capacity on {self.label!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done:
                waiter.succeed(None)
                return
        self._available += 1

"""Futures and combinators for the simulation kernel.

A :class:`Future` is the single synchronization primitive of the kernel:
timeouts, process completions, RPC replies, lock grants, and queue reads are
all futures.  Processes wait on a future by yielding it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional


class FutureAlreadyResolved(RuntimeError):
    """Raised when ``succeed``/``fail`` is called on a resolved future."""


class Future:
    """A one-shot container for a value or an exception.

    Futures are created against an environment so that completion callbacks
    are dispatched through the event queue (never recursively), keeping the
    simulation deterministic and the Python stack bounded.
    """

    __slots__ = ("env", "_done", "_value", "_exc", "_callbacks", "label")

    def __init__(self, env: "Environment", label: str = "") -> None:  # noqa: F821
        self.env = env
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.label = label

    # -- inspection ---------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the future has been resolved (value or exception)."""
        return self._done

    @property
    def failed(self) -> bool:
        """Whether the future resolved with an exception."""
        return self._done and self._exc is not None

    def result(self) -> Any:
        """Return the value, raising the stored exception if it failed."""
        if not self._done:
            raise RuntimeError(f"future {self.label!r} is not resolved yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self) -> Optional[BaseException]:
        """Return the stored exception, or ``None``."""
        return self._exc

    # -- resolution ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Future":
        """Resolve the future with ``value`` and fire callbacks."""
        if self._done:
            raise FutureAlreadyResolved(self.label or repr(self))
        self._done = True
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            # Inlined _dispatch() — resolution is the kernel's hottest path.
            self._callbacks = []
            env = self.env
            if env.fast_path:
                ready = env._ready
                sequence = env._sequence
                args = (self,)
                for callback in callbacks:
                    sequence += 1
                    ready.append((sequence, callback, args))
                env._sequence = sequence
            else:
                for callback in callbacks:
                    env.call_soon(callback, self)
        return self

    def fail(self, exc: BaseException) -> "Future":
        """Resolve the future with an exception and fire callbacks."""
        if self._done:
            raise FutureAlreadyResolved(self.label or repr(self))
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._done = True
        self._exc = exc
        if self._callbacks:
            self._dispatch()
        return self

    def try_succeed(self, value: Any = None) -> bool:
        """Resolve with ``value`` unless already resolved; report success."""
        if self._done:
            return False
        # Inlined succeed() + _dispatch(): timeouts resolve through here
        # once per event, so the extra frames are measurable at scale.
        self._done = True
        self._value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            env = self.env
            if env.fast_path:
                ready = env._ready
                sequence = env._sequence
                args = (self,)
                for callback in callbacks:
                    sequence += 1
                    ready.append((sequence, callback, args))
                env._sequence = sequence
            else:
                for callback in callbacks:
                    env.call_soon(callback, self)
        return True

    def try_fail(self, exc: BaseException) -> bool:
        """Resolve with ``exc`` unless already resolved; report success."""
        if self._done:
            return False
        self.fail(exc)
        return True

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        env = self.env
        if env.fast_path:
            # Inlined Environment.call_soon: dispatch is the single hottest
            # call site in the kernel, so the per-callback method call and
            # re-packed args tuple are worth eliding.
            ready = env._ready
            sequence = env._sequence
            args = (self,)
            for callback in callbacks:
                sequence += 1
                ready.append((sequence, callback, args))
            env._sequence = sequence
        else:
            for callback in callbacks:
                env.call_soon(callback, self)

    # -- chaining -----------------------------------------------------------

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Invoke ``callback(self)`` once resolved (via the event queue)."""
        if self._done:
            self.env.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def remove_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Remove a previously added callback if still pending."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = f"failed({self._exc!r})" if self._exc else f"done({self._value!r})"
        return f"<Future {self.label!r} {state}>"


def all_of(env: "Environment", futures: Iterable[Future]) -> Future:  # noqa: F821
    """Return a future resolving with the list of all results.

    Fails as soon as any input future fails; on failure the combinator
    unsubscribes from the still-pending inputs and drops its reference to
    the input list, so long-lived losing futures do not accumulate dead
    callbacks (see ``test_sim_events``).
    """
    futures = list(futures)
    combined = Future(env, label="all_of")
    if not futures:
        combined.succeed([])
        return combined
    state = {"count": len(futures), "futures": futures}

    def on_done(fut: Future) -> None:
        if combined._done:
            return
        pending = state["futures"]
        if fut._exc is not None:
            combined.fail(fut._exc)
            for other in pending:
                if not other._done:
                    other.remove_done_callback(on_done)
            state["futures"] = ()
            return
        state["count"] -= 1
        if state["count"] == 0:
            results = [f._value for f in pending]
            state["futures"] = ()
            combined.succeed(results)

    for fut in futures:
        fut.add_done_callback(on_done)
    return combined


def any_of(env: "Environment", futures: Iterable[Future]) -> Future:  # noqa: F821
    """Return a future resolving with ``(index, value)`` of the first winner.

    If the first future to resolve failed, the combined future fails with
    the same exception.  On resolution the combinator removes its callbacks
    from every losing future still pending: pollers that race a timeout
    against long-lived data-arrival futures (e.g. broker consumers) would
    otherwise leak one dead closure per lost race.
    """
    futures = list(futures)
    if not futures:
        raise ValueError("any_of() requires at least one future")
    combined = Future(env, label="any_of")
    entries: list[tuple[Future, Callable[[Future], None]]] = []

    def make_callback(index: int) -> Callable[[Future], None]:
        def on_done(fut: Future) -> None:
            if combined._done:
                return
            if fut._exc is not None:
                combined.fail(fut._exc)
            else:
                combined.succeed((index, fut._value))
            for other, callback in entries:
                if not other._done:
                    other.remove_done_callback(callback)
            entries.clear()

        return on_done

    for i, fut in enumerate(futures):
        callback = make_callback(i)
        entries.append((fut, callback))
        fut.add_done_callback(callback)
    return combined

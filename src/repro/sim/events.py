"""Futures and combinators for the simulation kernel.

A :class:`Future` is the single synchronization primitive of the kernel:
timeouts, process completions, RPC replies, lock grants, and queue reads are
all futures.  Processes wait on a future by yielding it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional


class FutureAlreadyResolved(RuntimeError):
    """Raised when ``succeed``/``fail`` is called on a resolved future."""


class Future:
    """A one-shot container for a value or an exception.

    Futures are created against an environment so that completion callbacks
    are dispatched through the event queue (never recursively), keeping the
    simulation deterministic and the Python stack bounded.
    """

    __slots__ = ("env", "_done", "_value", "_exc", "_callbacks", "label")

    def __init__(self, env: "Environment", label: str = "") -> None:  # noqa: F821
        self.env = env
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.label = label

    # -- inspection ---------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the future has been resolved (value or exception)."""
        return self._done

    @property
    def failed(self) -> bool:
        """Whether the future resolved with an exception."""
        return self._done and self._exc is not None

    def result(self) -> Any:
        """Return the value, raising the stored exception if it failed."""
        if not self._done:
            raise RuntimeError(f"future {self.label!r} is not resolved yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self) -> Optional[BaseException]:
        """Return the stored exception, or ``None``."""
        return self._exc

    # -- resolution ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Future":
        """Resolve the future with ``value`` and fire callbacks."""
        if self._done:
            raise FutureAlreadyResolved(self.label or repr(self))
        self._done = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Future":
        """Resolve the future with an exception and fire callbacks."""
        if self._done:
            raise FutureAlreadyResolved(self.label or repr(self))
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._done = True
        self._exc = exc
        self._dispatch()
        return self

    def try_succeed(self, value: Any = None) -> bool:
        """Resolve with ``value`` unless already resolved; report success."""
        if self._done:
            return False
        self.succeed(value)
        return True

    def try_fail(self, exc: BaseException) -> bool:
        """Resolve with ``exc`` unless already resolved; report success."""
        if self._done:
            return False
        self.fail(exc)
        return True

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.env.schedule(0.0, callback, self)

    # -- chaining -----------------------------------------------------------

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Invoke ``callback(self)`` once resolved (via the event queue)."""
        if self._done:
            self.env.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def remove_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Remove a previously added callback if still pending."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = f"failed({self._exc!r})" if self._exc else f"done({self._value!r})"
        return f"<Future {self.label!r} {state}>"


def all_of(env: "Environment", futures: Iterable[Future]) -> Future:  # noqa: F821
    """Return a future resolving with the list of all results.

    Fails as soon as any input future fails (remaining results discarded).
    """
    futures = list(futures)
    combined = Future(env, label="all_of")
    if not futures:
        combined.succeed([])
        return combined
    remaining = {"count": len(futures)}

    def on_done(fut: Future) -> None:
        if combined.done:
            return
        if fut.failed:
            combined.fail(fut.exception())
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            combined.succeed([f.result() for f in futures])

    for fut in futures:
        fut.add_done_callback(on_done)
    return combined


def any_of(env: "Environment", futures: Iterable[Future]) -> Future:  # noqa: F821
    """Return a future resolving with ``(index, value)`` of the first winner.

    If the first future to resolve failed, the combined future fails with
    the same exception.
    """
    futures = list(futures)
    if not futures:
        raise ValueError("any_of() requires at least one future")
    combined = Future(env, label="any_of")

    def make_callback(index: int) -> Callable[[Future], None]:
        def on_done(fut: Future) -> None:
            if combined.done:
                return
            if fut.failed:
                combined.fail(fut.exception())
            else:
                combined.succeed((index, fut.result()))

        return on_done

    for i, fut in enumerate(futures):
        fut.add_done_callback(make_callback(i))
    return combined

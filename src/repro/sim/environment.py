"""The simulation environment: virtual clock, event queue, and processes.

The environment owns two event containers:

- a **ready queue** (FIFO deque) for zero-delay events — future dispatches,
  process steps, ``timeout(0)`` — which make up the bulk of traffic in
  RPC-heavy workloads and need no priority ordering, and
- a **heap** of ``(time, sequence, callback, args)`` entries for genuinely
  future events.

Every scheduled event still consumes one monotone sequence number, and the
executors drain both containers in exact global ``(time, sequence)`` order,
so the split is invisible to simulated behaviour: two runs with the same
seed produce byte-identical traces with the fast path on or off (see
``fast_path`` below and ``tests/test_golden_equivalence.py``).  Time only
advances when the next entry is popped, so latencies measured inside the
simulation are exact.
"""

from __future__ import annotations

import heapq
import random
import zlib
from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.obs.tracer import default_tracer
from repro.sim.events import Future

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupted(Exception):
    """Thrown into a process that was interrupted (e.g. its node crashed).

    The ``cause`` attribute carries the interrupter's reason object.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Future):
    """A running generator, resumable by the environment.

    A process is itself a future: it resolves with the generator's return
    value, or fails with the exception that escaped the generator.  Yield a
    process to wait for it; call :meth:`interrupt` to throw
    :class:`Interrupted` into it at its current suspension point.
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_callback", "_tracer", "_trace_ctx")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Any, Any, Any],
        label: str = "",
    ) -> None:
        super().__init__(env, label=label or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Future] = None
        # One reusable bound resume callback per process: creating a fresh
        # closure on every suspension shows up in kernel profiles.
        self._resume_callback: Callable[[Future], None] = self._resume
        # Causal tracing: a process inherits the spawner's span context and
        # carries it across suspensions (see repro.obs.tracer).
        tracer = env.tracer
        self._tracer = tracer if tracer.enabled else None
        self._trace_ctx = tracer.current if self._tracer is not None else None
        env.call_soon(self._step, None, None)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not finished yet."""
        return not self.done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its next step.

        Interrupting a finished process is a no-op.  The future the process
        was waiting on is detached: its eventual resolution no longer resumes
        the process.
        """
        if self.done:
            return
        self._detach()
        self.env.call_soon(self._step, None, Interrupted(cause))

    def _detach(self) -> None:
        if self._waiting_on is not None:
            self._waiting_on.remove_done_callback(self._resume_callback)
        self._waiting_on = None

    def _resume(self, fut: Future) -> None:
        # The success branch below is a manual inline of
        # ``self._step(fut._value, None)`` — one stack frame per process
        # resumption is the kernel's hottest cost.  Keep it in sync with
        # :meth:`_step`.
        if self._done:
            return
        if fut is not self._waiting_on:
            return  # detached by an interrupt that raced this callback
        if fut._exc is not None:
            self._step(None, fut._exc)
            return
        self._waiting_on = None
        tracer = self._tracer
        if tracer is not None:
            tracer.current = self._trace_ctx
        try:
            try:
                target = self._generator.send(fut._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
                self.fail(exc)
                return
            if not isinstance(target, Future):
                self.env.call_soon(self._step, None, self._yield_error(target))
                return
            self._waiting_on = target
            # Inlined target.add_done_callback(self._resume_callback):
            if target._done:
                self.env.call_soon(self._resume_callback, target)
            else:
                target._callbacks.append(self._resume_callback)
        finally:
            if tracer is not None:
                self._trace_ctx = tracer.current
                tracer.current = None

    def _yield_error(self, target: Any) -> SimulationError:
        return SimulationError(
            f"process {self.label!r} yielded {target!r}; "
            "only Future/Timeout/Process may be yielded"
        )

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self._done:
            return
        self._waiting_on = None
        tracer = self._tracer
        if tracer is not None:
            tracer.current = self._trace_ctx
        try:
            try:
                if throw_exc is not None:
                    target = self._generator.throw(throw_exc)
                else:
                    target = self._generator.send(send_value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
                self.fail(exc)
                return
            if not isinstance(target, Future):
                self.env.call_soon(self._step, None, self._yield_error(target))
                return
            self._waiting_on = target
            # Inlined target.add_done_callback(self._resume_callback):
            if target._done:
                self.env.call_soon(self._resume_callback, target)
            else:
                target._callbacks.append(self._resume_callback)
        finally:
            if tracer is not None:
                self._trace_ctx = tracer.current
                tracer.current = None


class Environment:
    """Deterministic event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Master seed.  Use :meth:`stream` to derive independent, stable
        random streams for different subsystems so that adding randomness
        in one place does not perturb another.
    tracer:
        A :class:`repro.obs.Tracer` to record causal spans against the
        virtual clock, or ``None`` for the process-wide default (the no-op
        tracer unless :func:`repro.obs.set_default_tracing` turned tracing
        on).  Tracing never consumes virtual time, so traced and untraced
        runs produce identical metrics.
    fast_path:
        When ``True`` (the default), zero-delay events are kept in a FIFO
        ready queue instead of the heap.  ``False`` forces every event
        through the heap — the pre-optimization executor, kept as a
        reference implementation so equivalence stays testable (the golden
        suite asserts both modes produce byte-identical results).
    """

    __slots__ = (
        "_now",
        "_heap",
        "_ready",
        "_sequence",
        "_executed",
        "seed",
        "rng",
        "_streams",
        "_counters",
        "tracer",
        "fast_path",
    )

    def __init__(
        self,
        seed: int = 0,
        tracer: Optional[Any] = None,
        fast_path: bool = True,
    ) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._ready: deque[tuple[int, Callable[..., None], tuple]] = deque()
        self._sequence = 0
        self._executed = 0
        self.seed = seed
        self.rng = random.Random(seed)
        self._streams: dict[str, random.Random] = {}
        self._counters: dict[str, int] = {}
        self.tracer = tracer if tracer is not None else default_tracer()
        self.fast_path = fast_path
        if self.tracer.enabled:
            self.tracer.clock = lambda: self._now

    # -- clock and scheduling -----------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by convention)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay == 0.0 and self.fast_path:
            self._sequence += 1
            self._ready.append((self._sequence, callback, args))
            return
        if not (0.0 <= delay < _INF):  # rejects negatives, NaN, and +inf
            raise SimulationError(
                f"cannot schedule at a non-finite or past offset (delay={delay})"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, callback, args))

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at the current time (zero delay).

        The kernel's internal fast path for future dispatch and process
        steps; equivalent to ``schedule(0.0, ...)`` but skips the delay
        validation.
        """
        self._sequence += 1
        if self.fast_path:
            self._ready.append((self._sequence, callback, args))
        else:
            heapq.heappush(self._heap, (self._now, self._sequence, callback, args))

    def timeout(self, delay: float, value: Any = None) -> Future:
        """Return a future that succeeds with ``value`` after ``delay``."""
        # Field-by-field construction skips the Future.__init__ frame; one
        # constructor call per timeout is measurable at benchmark scale.
        # Keep in sync with Future.__init__.
        fut = Future.__new__(Future)
        fut.env = self
        fut._done = False
        fut._value = None
        fut._exc = None
        fut._callbacks = []
        fut.label = "timeout"
        if delay == 0.0 and self.fast_path:
            self._sequence += 1
            self._ready.append((self._sequence, fut.try_succeed, (value,)))
            return fut
        self.schedule(delay, fut.try_succeed, value)
        return fut

    def future(self, label: str = "") -> Future:
        """Create an unresolved future bound to this environment."""
        return Future(self, label=label)

    def process(self, generator: Generator[Any, Any, Any], label: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, generator, label=label)

    # -- running ------------------------------------------------------------

    # The three executors below intentionally inline the "pop next event in
    # global (time, sequence) order" logic rather than sharing a helper:
    # one extra function call per event costs ~15% wall-clock at benchmark
    # scale.  A ready entry always carries the *current* time (the loop
    # never advances the clock while the ready queue is non-empty), so the
    # only case where the heap must be drained first is a heap entry at the
    # same timestamp with a smaller sequence number — an earlier-scheduled
    # positive delay landing on the current instant.

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue, optionally stopping at virtual time ``until``.

        Returns the virtual time at which the run stopped.
        """
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        executed = 0
        try:
            while ready or heap:
                if ready:
                    if until is not None and self._now > until:
                        self._now = until
                        return self._now
                    entry = ready.popleft()
                    if heap and heap[0][0] <= self._now and heap[0][1] < entry[0]:
                        ready.appendleft(entry)
                        when, _seq, callback, args = pop(heap)
                        self._now = when
                    else:
                        _seq, callback, args = entry
                else:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self._now = until
                        return self._now
                    when, _seq, callback, args = pop(heap)
                    self._now = when
                executed += 1
                callback(*args)
        finally:
            self._executed += executed
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until(self, future: Future, limit: float = 1e12) -> Any:
        """Run until ``future`` resolves; return its result.

        Raises :class:`SimulationError` if the queue drains (or ``limit`` is
        reached) before the future resolves — i.e. the simulation deadlocked.
        """
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        executed = 0
        try:
            while not future._done:
                if ready:
                    entry = ready.popleft()
                    if heap and heap[0][0] <= self._now and heap[0][1] < entry[0]:
                        ready.appendleft(entry)
                        when, _seq, callback, args = pop(heap)
                        self._now = when
                    else:
                        _seq, callback, args = entry
                elif heap:
                    when = heap[0][0]
                    if when > limit:
                        raise SimulationError(
                            f"simulation ran dry at t={self._now} before "
                            f"{future.label!r} resolved"
                        )
                    when, _seq, callback, args = pop(heap)
                    self._now = when
                else:
                    raise SimulationError(
                        f"simulation ran dry at t={self._now} before "
                        f"{future.label!r} resolved"
                    )
                executed += 1
                callback(*args)
        finally:
            self._executed += executed
        return future.result()

    def step(self) -> bool:
        """Execute a single event; return ``False`` when the queue is empty."""
        ready = self._ready
        heap = self._heap
        if ready:
            entry = ready.popleft()
            if heap and heap[0][0] <= self._now and heap[0][1] < entry[0]:
                ready.appendleft(entry)
                when, _seq, callback, args = heapq.heappop(heap)
                self._now = when
            else:
                _seq, callback, args = entry
        elif heap:
            when, _seq, callback, args = heapq.heappop(heap)
            self._now = when
        else:
            return False
        self._executed += 1
        callback(*args)
        return True

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap) + len(self._ready)

    @property
    def events_executed(self) -> int:
        """Total events this environment has executed (perf accounting)."""
        return self._executed

    # -- randomness ---------------------------------------------------------

    def stream(self, name: str) -> random.Random:
        """Return a named random stream, stable across runs for a given seed."""
        if name not in self._streams:
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 2654435761 % 2**32)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    # -- id allocation -------------------------------------------------------

    def next_id(self, name: str) -> int:
        """Allocate the next integer (from 1) of a named per-env counter.

        Replaces process-global ``itertools.count`` class attributes: ids
        are now deterministic per simulation run instead of depending on
        how many environments the process created before this one.
        """
        value = self._counters.get(name, 0) + 1
        self._counters[name] = value
        return value

    def reseed_counter(self, name: str, floor: int) -> None:
        """Ensure the named counter's next value exceeds ``floor``.

        Recovery hook: a component restoring a snapshot that embeds
        previously-issued ids (e.g. the dataflow's committed-tid set) calls
        this so fresh ids never collide with recovered ones.
        """
        if self._counters.get(name, 0) < floor:
            self._counters[name] = floor

    def __repr__(self) -> str:
        return (
            f"<Environment t={self._now} "
            f"pending={len(self._heap) + len(self._ready)} seed={self.seed}>"
        )

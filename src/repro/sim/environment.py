"""The simulation environment: virtual clock, event queue, and processes.

The environment owns a priority queue of ``(time, sequence, callback)``
entries.  Time only advances when the queue is drained up to the next entry,
so latencies measured inside the simulation are exact, and two runs with the
same seed produce byte-identical traces.
"""

from __future__ import annotations

import heapq
import random
import zlib
from typing import Any, Callable, Generator, Optional

from repro.obs.tracer import default_tracer
from repro.sim.events import Future


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupted(Exception):
    """Thrown into a process that was interrupted (e.g. its node crashed).

    The ``cause`` attribute carries the interrupter's reason object.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Future):
    """A running generator, resumable by the environment.

    A process is itself a future: it resolves with the generator's return
    value, or fails with the exception that escaped the generator.  Yield a
    process to wait for it; call :meth:`interrupt` to throw
    :class:`Interrupted` into it at its current suspension point.
    """

    __slots__ = ("_generator", "_waiting_on", "_resume_callback", "_tracer", "_trace_ctx")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Any, Any, Any],
        label: str = "",
    ) -> None:
        super().__init__(env, label=label or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Future] = None
        self._resume_callback: Optional[Callable[[Future], None]] = None
        # Causal tracing: a process inherits the spawner's span context and
        # carries it across suspensions (see repro.obs.tracer).
        tracer = env.tracer
        self._tracer = tracer if tracer.enabled else None
        self._trace_ctx = tracer.current if self._tracer is not None else None
        env.schedule(0.0, self._step, None, None)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not finished yet."""
        return not self.done

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its next step.

        Interrupting a finished process is a no-op.  The future the process
        was waiting on is detached: its eventual resolution no longer resumes
        the process.
        """
        if self.done:
            return
        self._detach()
        self.env.schedule(0.0, self._step, None, Interrupted(cause))

    def _detach(self) -> None:
        if self._waiting_on is not None and self._resume_callback is not None:
            self._waiting_on.remove_done_callback(self._resume_callback)
        self._waiting_on = None
        self._resume_callback = None

    def _step(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self.done:
            return
        self._waiting_on = None
        self._resume_callback = None
        tracer = self._tracer
        if tracer is not None:
            tracer.current = self._trace_ctx
        try:
            try:
                if throw_exc is not None:
                    target = self._generator.throw(throw_exc)
                else:
                    target = self._generator.send(send_value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
                self.fail(exc)
                return
            if not isinstance(target, Future):
                self.env.schedule(
                    0.0,
                    self._step,
                    None,
                    SimulationError(
                        f"process {self.label!r} yielded {target!r}; "
                        "only Future/Timeout/Process may be yielded"
                    ),
                )
                return
            self._wait_for(target)
        finally:
            if tracer is not None:
                self._trace_ctx = tracer.current
                tracer.current = None

    def _wait_for(self, target: Future) -> None:
        def resume(fut: Future) -> None:
            if self.done:
                return
            if fut is not self._waiting_on:
                return  # detached by an interrupt that raced this callback
            if fut.failed:
                self._step(None, fut.exception())
            else:
                self._step(fut.result(), None)

        self._waiting_on = target
        self._resume_callback = resume
        target.add_done_callback(resume)


class Environment:
    """Deterministic event loop with a virtual clock.

    Parameters
    ----------
    seed:
        Master seed.  Use :meth:`stream` to derive independent, stable
        random streams for different subsystems so that adding randomness
        in one place does not perturb another.
    tracer:
        A :class:`repro.obs.Tracer` to record causal spans against the
        virtual clock, or ``None`` for the process-wide default (the no-op
        tracer unless :func:`repro.obs.set_default_tracing` turned tracing
        on).  Tracing never consumes virtual time, so traced and untraced
        runs produce identical metrics.
    """

    def __init__(self, seed: int = 0, tracer: Optional[Any] = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self.seed = seed
        self.rng = random.Random(seed)
        self._streams: dict[str, random.Random] = {}
        self.tracer = tracer if tracer is not None else default_tracer()
        if self.tracer.enabled:
            self.tracer.clock = lambda: self._now

    # -- clock and scheduling -----------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by convention)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, callback, args))

    def timeout(self, delay: float, value: Any = None) -> Future:
        """Return a future that succeeds with ``value`` after ``delay``."""
        fut = Future(self, label=f"timeout({delay})")
        self.schedule(delay, fut.try_succeed, value)
        return fut

    def future(self, label: str = "") -> Future:
        """Create an unresolved future bound to this environment."""
        return Future(self, label=label)

    def process(self, generator: Generator[Any, Any, Any], label: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, generator, label=label)

    # -- running ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue, optionally stopping at virtual time ``until``.

        Returns the virtual time at which the run stopped.
        """
        while self._heap:
            when, _seq, callback, args = self._heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = when
            callback(*args)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until(self, future: Future, limit: float = 1e12) -> Any:
        """Run until ``future`` resolves; return its result.

        Raises :class:`SimulationError` if the queue drains (or ``limit`` is
        reached) before the future resolves — i.e. the simulation deadlocked.
        """
        while not future.done:
            if not self._heap or self._heap[0][0] > limit:
                raise SimulationError(
                    f"simulation ran dry at t={self._now} before "
                    f"{future.label!r} resolved"
                )
            when, _seq, callback, args = heapq.heappop(self._heap)
            self._now = when
            callback(*args)
        return future.result()

    def step(self) -> bool:
        """Execute a single event; return ``False`` when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, callback, args = heapq.heappop(self._heap)
        self._now = when
        callback(*args)
        return True

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    # -- randomness ---------------------------------------------------------

    def stream(self, name: str) -> random.Random:
        """Return a named random stream, stable across runs for a given seed."""
        if name not in self._streams:
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 2654435761 % 2**32)
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def __repr__(self) -> str:
        return f"<Environment t={self._now} pending={len(self._heap)} seed={self.seed}>"

"""Deterministic discrete-event simulation kernel.

Every runtime in :mod:`repro` (microservices, actors, FaaS, dataflows) runs
on this kernel.  It provides a virtual clock, generator-based cooperative
processes, futures, timeouts, interrupts, and seeded random streams, so that
every experiment in the benchmark suite is exactly reproducible from a seed.

The programming model is the classic SimPy style: a *process* is a Python
generator that yields awaitables (futures, timeouts, or other processes) and
is resumed by the environment when the awaited event fires::

    env = Environment(seed=42)

    def worker(env):
        yield env.timeout(5)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert proc.result() == "done"
"""

from repro.sim.events import Future, all_of, any_of
from repro.sim.environment import (
    Environment,
    Interrupted,
    Process,
    SimulationError,
)
from repro.sim.resources import Channel, Lock, Semaphore, Store

__all__ = [
    "Channel",
    "Environment",
    "Future",
    "Interrupted",
    "Lock",
    "Process",
    "Semaphore",
    "SimulationError",
    "Store",
    "all_of",
    "any_of",
]

"""Causal observability over the deterministic simulator.

The paper's claims are all about *where time goes* in transactional cloud
runtimes — round trips, 2PC blocking windows, outbox hops, actor-transaction
overhead.  This package makes every benchmark number inspectable: a
:class:`Tracer` records virtual-clock spans threaded through the whole stack
(network messages, broker operations, RPC, database calls, lock waits, 2PC
phases, saga steps), and exporters turn a run into a Chrome
``trace_event`` JSON (load in ``chrome://tracing`` / Perfetto) or a text
critical-path report.

Tracing is **zero-cost when disabled** (the shared :data:`NULL_TRACER` is a
pile of no-ops) and **deterministic when enabled**: spans carry virtual
timestamps and counter-issued ids only, so two same-seed runs export
byte-identical traces — and tracing never adds virtual time, so traced and
untraced runs produce identical metrics.
"""

from repro.obs.export import chrome_trace_events, chrome_trace_json, critical_path_report
from repro.obs.profile import CallCountProfiler, events_per_txn, subsystem_counters
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    default_tracer,
    default_tracing_enabled,
    drain_registered_tracers,
    set_default_tracing,
)

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "CallCountProfiler",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "chrome_trace_json",
    "critical_path_report",
    "default_tracer",
    "default_tracing_enabled",
    "drain_registered_tracers",
    "events_per_txn",
    "set_default_tracing",
    "subsystem_counters",
]

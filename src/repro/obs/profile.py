"""Deterministic profiling over the simulation substrate.

Wall-clock profilers answer "where did the seconds go", but their output
differs run to run and host to host, so it can never be committed or
gated.  This layer profiles what is *deterministic* under a pinned seed
instead:

- **call counts** — :class:`CallCountProfiler` wraps :mod:`cProfile` but
  ranks by *number of calls*, restricted to ``repro`` code.  Under a
  pinned seed every call count is a pure function of the workload, so the
  ranked hot-function table is byte-stable across hosts and can be
  committed (``benchmarks/perf/profile_report.txt``) and drift-checked
  in CI.  A function's call count is also the honest "how hot is this
  path" signal for an interpreter workload: per-call overhead dominates,
  so calls ≈ cost.
- **subsystem counters** — :func:`subsystem_counters` harvests the
  counters the subsystems already keep (kernel events executed, network
  messages, engine commits, RPC calls, tracer spans) into one flat dict.
- **per-transaction event accounting** — :func:`events_per_txn` divides
  kernel events by committed transactions: the "how much machinery does
  one transaction turn" figure the perf gate tracks as
  ``e2e_b1_events_per_txn`` (lower is better; every eliminated event is
  interpreter work every transaction no longer pays).

Nothing here reads the host clock (``tests/test_no_wallclock.py``
enforces that for all of ``src/``); wall-clock timing stays in
``benchmarks/perf``.
"""

from __future__ import annotations

import cProfile
import os
from dataclasses import fields, is_dataclass
from typing import Any, Iterable, Optional

#: absolute path of the ``repro`` package (profiles are restricted to it)
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class CallCountProfiler:
    """Collects per-function call counts for ``repro`` code.

    Use as a context manager around the region of interest::

        with CallCountProfiler() as prof:
            run_workload()
        print(prof.report(top=25))

    Only functions defined under the profiled package root are reported —
    stdlib and builtin callables vary across CPython patch versions, so
    including them would make the committed report churn for reasons that
    have nothing to do with this codebase.  Labels are
    ``<subsystem> <module>.<qualname>`` without line numbers, so moving a
    function within its file does not churn the report either.
    """

    def __init__(self, package_root: Optional[str] = None) -> None:
        self.package_root = package_root or _PACKAGE_ROOT
        self._profile = cProfile.Profile()

    # -- collection ---------------------------------------------------------

    def __enter__(self) -> "CallCountProfiler":
        self._profile.enable()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._profile.disable()

    # -- aggregation --------------------------------------------------------

    def counts(self) -> list[tuple[str, str, int]]:
        """``(subsystem, label, calls)`` rows, hottest first.

        Rows are sorted by descending call count, then label, so the
        order is total (byte-stable) even between functions with equal
        counts.
        """
        root = self.package_root.rstrip(os.sep) + os.sep
        rows: list[tuple[str, str, int]] = []
        for entry in self._profile.getstats():
            code = entry.code
            if isinstance(code, str):  # builtin: host-dependent, skip
                continue
            filename = code.co_filename
            if not filename.startswith(root):
                continue
            rel = filename[len(root):]
            parts = rel.split(os.sep)
            subsystem = parts[0] if len(parts) > 1 else "(package)"
            module = os.path.basename(filename)
            if module.endswith(".py"):
                module = module[:-3]
            qualname = getattr(code, "co_qualname", code.co_name)
            rows.append((subsystem, f"{module}.{qualname}", entry.callcount))
        rows.sort(key=lambda row: (-row[2], row[1], row[0]))
        return rows

    def by_subsystem(self) -> dict[str, int]:
        """Total ``repro`` calls grouped by top-level subpackage."""
        totals: dict[str, int] = {}
        for subsystem, _label, calls in self.counts():
            totals[subsystem] = totals.get(subsystem, 0) + calls
        return totals

    def total_calls(self) -> int:
        """All ``repro``-code calls recorded."""
        return sum(calls for _s, _l, calls in self.counts())

    # -- reporting ----------------------------------------------------------

    def report(self, top: int = 25, scenario: str = "") -> str:
        """The committed hot-function report.

        Deterministic under a pinned seed: no wall-clock figures, no
        absolute paths, no line numbers.  Two runs of the same code on
        the same workload produce byte-identical text; a diff therefore
        means the hot path itself changed.
        """
        rows = self.counts()
        lines = ["# Deterministic hot-function report (ranked by call count)"]
        if scenario:
            lines.append(f"# scenario: {scenario}")
        lines.append(
            "# regenerate: PYTHONPATH=src python scripts/perfcheck.py --profile"
        )
        lines.append("")
        lines.append("calls by subsystem:")
        by_sub = self.by_subsystem()
        width = max((len(name) for name in by_sub), default=0)
        for name in sorted(by_sub, key=lambda n: (-by_sub[n], n)):
            lines.append(f"  {name:<{width}}  {by_sub[name]:>10d}")
        lines.append("")
        lines.append(f"top {min(top, len(rows))} functions by calls:")
        for rank, (subsystem, label, calls) in enumerate(rows[:top], start=1):
            lines.append(f"  {rank:>3d}. {calls:>10d}  {subsystem:<12s} {label}")
        lines.append("")
        return "\n".join(lines)


# -- subsystem counters ------------------------------------------------------


def _stats_dict(stats: Any) -> dict[str, int]:
    """Flatten a stats object (dataclass or ``as_dict``-bearing) to ints."""
    if hasattr(stats, "as_dict"):
        raw = stats.as_dict()
    elif is_dataclass(stats):
        raw = {f.name: getattr(stats, f.name) for f in fields(stats)}
    else:
        raw = {
            name: value
            for name, value in vars(stats).items()
            if not name.startswith("_")
        }
    return {
        name: value for name, value in raw.items() if isinstance(value, int)
    }


def subsystem_counters(
    env: Any = None,
    network: Any = None,
    databases: Iterable[Any] = (),
    rpc_servers: Iterable[Any] = (),
    rpc_clients: Iterable[Any] = (),
    brokers: Iterable[Any] = (),
) -> dict[str, int]:
    """Harvest the counters a run's subsystems already keep.

    Returns a flat ``{"<subsystem>.<counter>": int}`` dict — kernel events
    executed, tracer spans recorded, network message fates, per-database
    engine stats, RPC client/server stats, broker stats.  All counts are
    deterministic under a pinned seed, so the dict is comparable across
    runs and suitable for per-txn accounting.

    Collections with several members are summed (the question answered is
    "how much did the *tier* do", not "which replica did it").
    """
    counters: dict[str, int] = {}

    def _merge(prefix: str, stats: Any) -> None:
        for name, value in _stats_dict(stats).items():
            key = f"{prefix}.{name}"
            counters[key] = counters.get(key, 0) + value

    if env is not None:
        counters["kernel.events_executed"] = env.events_executed
        counters["tracer.spans"] = len(env.tracer)
    if network is not None:
        _merge("net", network.stats)
    for database in databases:
        _merge("db", database.stats)
    for server in rpc_servers:
        _merge("rpc_server", server.stats)
    for client in rpc_clients:
        _merge("rpc_client", client.stats)
    for broker in brokers:
        _merge("broker", broker.stats)
    return counters


# -- per-transaction accounting ----------------------------------------------


def events_per_txn(events: int, transactions: int, ndigits: int = 2) -> float:
    """Kernel events per committed transaction (lower is better).

    The first-class efficiency metric of the hot-path work: wall-clock
    throughput varies with the host, but *events per transaction* is a
    pure function of the workload and the code — a regression here means
    the machinery per transaction grew, on every host equally.  Rounded
    so the figure is stable in committed artifacts.
    """
    if transactions <= 0:
        return 0.0
    return round(events / transactions, ndigits)


__all__ = [
    "CallCountProfiler",
    "subsystem_counters",
    "events_per_txn",
]

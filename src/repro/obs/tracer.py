"""Causal spans over the virtual clock.

A :class:`Span` is a named interval of virtual time with a parent link and
tags; a :class:`Tracer` collects them and tracks the *current* span of the
running process so that instrumentation hooks nest automatically.  Context
follows the simulation's causality:

- a spawned :class:`~repro.sim.Process` inherits the spawner's current span;
- a process suspended on a future resumes with its own saved context (the
  kernel saves/restores :attr:`Tracer.current` around every process step);
- cross-process edges (an RPC request executing on another node) are linked
  by carrying the caller's span id in the message and passing it as an
  explicit ``parent``.

Because start/end times come from the virtual clock and span ids from a
per-tracer counter, two same-seed runs produce *byte-identical* exports.
When tracing is off the shared :data:`NULL_TRACER` makes every hook a
no-op, so instrumentation costs nothing on untraced runs.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

#: Sentinel distinguishing "parent not given: use the current span" from an
#: explicit ``parent=None`` (start a new root).
_CURRENT = object()


class Span:
    """One named interval of virtual time in the causal tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "tags", "_prev",
                 "sampled")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        tags: dict[str, Any],
        sampled: bool = True,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.tags = tags
        self._prev: Optional["Span"] = None  # current span to restore on end
        #: whether the span is retained (span sampling keeps whole root
        #: trees: an unsampled root's descendants are all unsampled too)
        self.sampled = sampled

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Virtual-time duration; 0.0 while unfinished."""
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **tags: Any) -> None:
        """Attach (or overwrite) tags on the span."""
        self.tags.update(tags)

    def __repr__(self) -> str:
        state = f"..{self.end}" if self.end is not None else ".."
        return f"<Span #{self.span_id} {self.name!r} [{self.start}{state}] {self.tags}>"


class Tracer:
    """Collects spans against a virtual clock.

    The tracer is bound to an :class:`~repro.sim.Environment` at
    construction time of the environment (which points :attr:`clock` at the
    virtual clock).  Instrumentation uses three verbs:

    - :meth:`begin` — open a span as a child of the current span and make
      it current (until the matching :meth:`end`);
    - :meth:`start` — open a *detached* span (e.g. a message in flight)
      that never becomes current and is ended elsewhere;
    - :meth:`event` — record an instantaneous marker.

    ``sample_every=N`` keeps only every Nth *root tree*: an unsampled
    root's entire subtree is dropped (context propagation still works, so
    nesting inside a dropped tree stays correct), while span ids and clock
    reads are unaffected for the retained trees.  The default ``1``
    records everything — sampling is opt-in because the golden suite
    asserts byte-identical full exports.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self.spans: list[Span] = []
        self.current: Optional[Span] = None
        self._ids = itertools.count(1)
        self.sample_every = sample_every
        self._roots_seen = 0

    # -- recording ----------------------------------------------------------

    def start(self, name: str, parent: Any = _CURRENT, **tags: Any) -> Span:
        """Open a span without making it current.

        ``parent`` may be omitted (child of the current span), ``None``
        (a new root), an ``int`` span id (cross-process causal link), or a
        :class:`Span`.
        """
        sampled = True
        if parent is _CURRENT:
            current = self.current
            if current is not None:
                parent_id = current.span_id
                sampled = current.sampled
            else:
                parent_id = None
                sampled = self._sample_root()
        elif isinstance(parent, Span):
            parent_id = parent.span_id
            sampled = parent.sampled
        else:
            parent_id = parent
            if parent_id is None:
                sampled = self._sample_root()
            # An int parent is a cross-process link to a span this tracer
            # cannot see; treat it as sampled (never drop a linked child).
        span = Span(next(self._ids), parent_id, name, self.clock(), tags, sampled)
        if sampled:
            self.spans.append(span)
        return span

    def _sample_root(self) -> bool:
        if self.sample_every == 1:
            return True
        index = self._roots_seen
        self._roots_seen = index + 1
        return index % self.sample_every == 0

    def begin(self, name: str, parent: Any = _CURRENT, **tags: Any) -> Span:
        """Open a span and make it the current context."""
        span = self.start(name, parent=parent, **tags)
        span._prev = self.current
        self.current = span
        return span

    def end(self, span: Span, **tags: Any) -> Span:
        """Finish ``span`` at the current virtual time.

        If the span is the current context, the context pops back to
        whatever was current when it began.  Ending a span twice keeps the
        first end time (late duplicate deliveries may race the end).
        """
        if span.end is None:
            span.end = self.clock()
        if tags:
            span.tags.update(tags)
        if self.current is span:
            self.current = span._prev
        return span

    def event(self, name: str, parent: Any = _CURRENT, **tags: Any) -> Span:
        """Record an instantaneous (zero-duration) marker span."""
        span = self.start(name, parent=parent, **tags)
        span.end = span.start
        return span

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        """Context manager for synchronous (non-yielding) sections."""
        span = self.begin(name, **tags)
        try:
            yield span
        finally:
            self.end(span)

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle as a *detached* tracer: spans survive, the clock does not.

        The clock is a bound method of the owning environment — dragging a
        whole simulation across a process boundary is never what a caller
        shipping results home wants.  A restored tracer is read-only
        (export/inspection); its clock is pinned at 0.0.
        """
        state = self.__dict__.copy()
        state["clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.clock is None:
            self.clock = lambda: 0.0

    # -- inspection ---------------------------------------------------------

    def roots(self) -> list[Span]:
        """Top-level spans, in creation order."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in creation order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"<Tracer spans={len(self.spans)}>"


class _NullSpan:
    """The do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    start = 0.0
    end = 0.0
    tags: dict[str, Any] = {}
    finished = True
    duration = 0.0

    def annotate(self, **tags: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer installed when tracing is disabled.

    Every verb returns :data:`NULL_SPAN` without recording anything, so
    instrumented code needs no ``if tracing:`` branches on its hot paths.
    """

    enabled = False
    current = None
    spans: list[Span] = []

    def start(self, name: str, parent: Any = _CURRENT, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def begin(self, name: str, parent: Any = _CURRENT, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def end(self, span: Any, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, parent: Any = _CURRENT, **tags: Any) -> _NullSpan:
        return NULL_SPAN

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def roots(self) -> list[Span]:
        return []

    def children_of(self, span: Any) -> list[Span]:
        return []

    def find(self, name: str) -> list[Span]:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullTracer>"


NULL_TRACER = NullTracer()

# -- process-wide default (how benches opt whole runs in) -------------------

_default_enabled = False
_registry: list[Tracer] = []


def set_default_tracing(enabled: bool) -> None:
    """Make every subsequently created Environment trace (or stop tracing).

    Used by the benchmark harness (``--trace-export``) so existing benches
    emit traces without per-bench code.
    """
    global _default_enabled
    _default_enabled = enabled


def default_tracing_enabled() -> bool:
    return _default_enabled


def default_tracer():
    """The tracer a new Environment gets when none is passed explicitly.

    While default tracing is on, each call creates a fresh :class:`Tracer`
    and registers it for :func:`drain_registered_tracers` to collect.
    """
    if not _default_enabled:
        return NULL_TRACER
    tracer = Tracer()
    _registry.append(tracer)
    return tracer


def drain_registered_tracers() -> list[Tracer]:
    """Return and clear the tracers created under default tracing."""
    drained, _registry[:] = list(_registry), []
    return drained

"""Trace exporters: Chrome ``trace_event`` JSON and critical-path text.

The Chrome export loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Spans whose interval nests inside their parent's
are emitted as complete (``"ph": "X"``) events on the track of their root
operation; spans that outlive their parent (an in-flight message delivered
after the operation finished, a duplicate retransmission) are emitted as
async begin/end pairs so the synchronous tracks always nest correctly.

Both exports are pure functions of the span list: same seed, byte-identical
output.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.tracer import Span, Tracer


def _span_index(spans: list[Span]) -> dict[int, Span]:
    return {span.span_id: span for span in spans}


def _root_ids(spans: list[Span], by_id: dict[int, Span]) -> dict[int, int]:
    """Map each span id to the id of its root ancestor (its track)."""
    roots: dict[int, int] = {}

    def resolve(span: Span) -> int:
        cached = roots.get(span.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        root = span.span_id if parent is None else resolve(parent)
        roots[span.span_id] = root
        return root

    for span in spans:
        resolve(span)
    return roots


def _effective_end(span: Span) -> float:
    """Unfinished spans export as zero-duration (tagged below)."""
    return span.end if span.end is not None else span.start


def _nests_in_parent(span: Span, parent: Optional[Span]) -> bool:
    if parent is None:
        return True
    return (
        parent.end is not None
        and span.start >= parent.start
        and _effective_end(span) <= parent.end
    )


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` list for one tracer, deterministically ordered."""
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.span_id))
    by_id = _span_index(spans)
    tracks = _root_ids(spans, by_id)
    events: list[dict] = []
    for span in spans:
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        end = _effective_end(span)
        args = dict(sorted(span.tags.items()))
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.end is None:
            args["unfinished"] = True
        ts = round(span.start * 1000.0, 3)  # virtual ms -> trace microseconds
        tid = tracks[span.span_id]
        if _nests_in_parent(span, parent):
            events.append(
                {
                    "name": span.name,
                    "cat": "sim",
                    "ph": "X",
                    "ts": ts,
                    # From the rounded endpoints, so ts+dur of a child never
                    # overshoots its parent's interval by rounding alone.
                    "dur": round(round(end * 1000.0, 3) - ts, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            # Outlives its parent: an async pair keeps the sync track nested.
            base = {
                "name": span.name,
                "cat": "sim.async",
                "id": span.span_id,
                "pid": 1,
                "tid": tid,
            }
            events.append({**base, "ph": "b", "ts": ts, "args": args})
            events.append({**base, "ph": "e", "ts": round(end * 1000.0, 3)})
    return events


def chrome_trace_json(tracer: Tracer) -> str:
    """Serialize a tracer as Chrome ``trace_event`` JSON (byte-stable)."""
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- critical path ----------------------------------------------------------


def _render_tree(
    span: Span,
    tracer: Tracer,
    by_parent: dict[Optional[int], list[Span]],
    depth: int,
    lines: list[str],
) -> None:
    children = sorted(by_parent.get(span.span_id, ()), key=lambda s: (s.start, s.span_id))
    overlap = sum(
        max(0.0, min(_effective_end(c), _effective_end(span)) - max(c.start, span.start))
        for c in children
    )
    duration = _effective_end(span) - span.start
    self_time = max(0.0, duration - overlap)
    tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
    lines.append(
        f"{'  ' * depth}{span.name}  "
        f"[{span.start:.3f}..{_effective_end(span):.3f}]  "
        f"dur={duration:.3f}ms self={self_time:.3f}ms"
        + (f"  {tags}" if tags else "")
    )
    for child in children:
        _render_tree(child, tracer, by_parent, depth + 1, lines)


def critical_path_report(tracer: Tracer, top: int = 1) -> str:
    """Decompose the ``top`` slowest root spans into indented span trees.

    Each line shows the span's virtual-time interval, duration, and *self*
    time (duration not covered by child spans) — the direct answer to
    "where did the p99 go?".
    """
    roots = sorted(
        tracer.roots(),
        key=lambda s: (-(_effective_end(s) - s.start), s.span_id),
    )[: max(1, top)]
    if not roots:
        return "critical path: no spans recorded"
    by_parent: dict[Optional[int], list[Span]] = {}
    for span in tracer.spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    lines: list[str] = []
    for rank, root in enumerate(roots, 1):
        duration = _effective_end(root) - root.start
        lines.append(
            f"critical path #{rank}: {root.name}  dur={duration:.3f}ms "
            f"(of {len(tracer.spans)} spans)"
        )
        _render_tree(root, tracer, by_parent, 1, lines)
    return "\n".join(lines)

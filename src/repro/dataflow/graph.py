"""Job graph definition: sources, operators, sinks, keyed edges.

A :class:`JobGraph` is pure description; :class:`~repro.dataflow.runtime.
DataflowRuntime` instantiates it into tasks.  Operator functions are plain
callables ``fn(state, key, value, emit)``:

- ``state`` is the task's keyed state (a mapping-like view over the task's
  embedded LSM store);
- ``emit(key, value)`` sends a record downstream;
- per-record processing cost is configured on the operator (``work_ms``),
  not hidden inside user code, so ablations can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

OperatorFn = Callable[["TaskState", Any, Any, Callable[[Any, Any], None]], None]


class TaskState:
    """Keyed state facade handed to operator functions.

    Backed by the task's embedded LSM store; reads and writes are local
    (embedded state, §3.3) — durability comes from checkpoints, not from
    per-write round trips.
    """

    def __init__(self, store) -> None:
        self._store = store

    def get(self, key: Any, default: Any = None) -> Any:
        return self._store.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self._store.put(key, value)

    def delete(self, key: Any) -> None:
        self._store.delete(key)

    def __contains__(self, key: Any) -> bool:
        return key in self._store


@dataclass
class SourceSpec:
    """An external ingestion point with a durable, replayable log."""

    name: str
    emit_interval: float = 0.0  # pacing between records (0 = as fast as queued)


@dataclass
class OperatorSpec:
    """A (possibly stateful) processing stage."""

    name: str
    fn: OperatorFn
    parallelism: int = 1
    work_ms: float = 0.1  # per-record processing cost


@dataclass
class SinkSpec:
    """A terminal stage collecting outputs.

    ``mode``:
    - ``"at_least_once"`` — outputs surface immediately; replay after a
      failure re-emits them (duplicates);
    - ``"exactly_once"`` — outputs buffer until their checkpoint completes
      (transactional sink): no duplicates, at the cost of output latency.
    """

    name: str
    mode: str = "exactly_once"

    def __post_init__(self) -> None:
        if self.mode not in ("at_least_once", "exactly_once"):
            raise ValueError(f"unknown sink mode {self.mode!r}")


@dataclass(frozen=True)
class EdgeSpec:
    """A keyed connection; records route by ``hash(key) % parallelism``."""

    src: str
    dst: str


class JobGraph:
    """Builder for the dataflow topology."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.sources: dict[str, SourceSpec] = {}
        self.operators: dict[str, OperatorSpec] = {}
        self.sinks: dict[str, SinkSpec] = {}
        self.edges: list[EdgeSpec] = []

    def source(self, name: str, emit_interval: float = 0.0) -> "JobGraph":
        self._check_fresh(name)
        self.sources[name] = SourceSpec(name, emit_interval)
        return self

    def operator(
        self,
        name: str,
        fn: OperatorFn,
        parallelism: int = 1,
        work_ms: float = 0.1,
    ) -> "JobGraph":
        self._check_fresh(name)
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        self.operators[name] = OperatorSpec(name, fn, parallelism, work_ms)
        return self

    def sink(self, name: str, mode: str = "exactly_once") -> "JobGraph":
        self._check_fresh(name)
        self.sinks[name] = SinkSpec(name, mode)
        return self

    def connect(self, src: str, dst: str) -> "JobGraph":
        if src in self.sinks:
            raise ValueError("a sink cannot produce")
        if src not in self.sources and src not in self.operators:
            raise ValueError(f"unknown producer {src!r}")
        if dst not in self.operators and dst not in self.sinks:
            raise ValueError(f"unknown consumer {dst!r}")
        self.edges.append(EdgeSpec(src, dst))
        return self

    def _check_fresh(self, name: str) -> None:
        if name in self.sources or name in self.operators or name in self.sinks:
            raise ValueError(f"stage {name!r} already defined")

    def downstream_of(self, name: str) -> list[str]:
        return [edge.dst for edge in self.edges if edge.src == name]

    def upstream_of(self, name: str) -> list[str]:
        return [edge.src for edge in self.edges if edge.dst == name]

    def validate(self) -> None:
        """Reject graphs with disconnected operators or cycles."""
        for op_name in self.operators:
            if not self.upstream_of(op_name):
                raise ValueError(f"operator {op_name!r} has no input")
        for sink_name in self.sinks:
            if not self.upstream_of(sink_name):
                raise ValueError(f"sink {sink_name!r} has no input")
        # Cycle check via DFS from sources.
        visiting: set[str] = set()
        done: set[str] = set()

        def dfs(stage: str) -> None:
            if stage in done:
                return
            if stage in visiting:
                raise ValueError(f"cycle detected through {stage!r}")
            visiting.add(stage)
            for nxt in self.downstream_of(stage):
                dfs(nxt)
            visiting.discard(stage)
            done.add(stage)

        for source_name in self.sources:
            dfs(source_name)

"""A stateful streaming dataflow engine (Flink/Statefun stand-in).

The §3.1 "stateful dataflows" model: the application is a DAG of operators
over partitioned message streams; operator state is embedded and
decentralized (per-task LSM stores, §3.3); fault tolerance is aligned
Chandy-Lamport checkpointing to durable storage with replay from the last
completed checkpoint (§4.1), which yields exactly-once *state* effects and
— with transactional sinks — exactly-once outputs (§4.2).

What this engine deliberately does **not** give is transactional isolation
across keys/partitions ("exactly-once processing guarantees alone cannot
ensure transactional isolation"); :mod:`repro.dataflow.txn` adds that, the
Styx way.
"""

from repro.dataflow.entities import Entity, EntityHandle, compile_entities
from repro.dataflow.graph import JobGraph
from repro.dataflow.runtime import DataflowRuntime
from repro.dataflow.statefun import StatefunRuntime
from repro.dataflow.txn import TransactionalDataflow, TxnAbort, TxnContext

__all__ = [
    "DataflowRuntime",
    "Entity",
    "EntityHandle",
    "JobGraph",
    "StatefunRuntime",
    "TransactionalDataflow",
    "TxnAbort",
    "TxnContext",
    "compile_entities",
]

"""Deterministic transactional dataflow: a Styx-like SFaaS engine.

The paper's own answer (§3.1, refs [51, 52]) to the open problem that
"exactly-once processing guarantees alone cannot ensure transactional
isolation": put stateful functions *on* a dataflow engine and make
transactions deterministic.

Mechanics reproduced here:

- a **sequencer** assigns every incoming transactional request a global
  TID and groups requests into **epochs**;
- within an epoch, transactions execute in TID order; non-conflicting
  transactions (disjoint declared key sets) run in parallel *waves*
  (Calvin-style deterministic locking — no runtime deadlocks, no 2PC);
- a transaction is a tree of function invocations: functions own per-key
  state and reach other keys only by calling functions on them
  (cross-partition calls are dataflow messages, charged a hop);
- all of a transaction's writes are buffered and installed only if its
  root invocation completes — atomicity with rollback on abort;
- results are released at **epoch commit** (transactional output), and a
  durable result log makes replayed epochs release nothing twice;
- every N epochs the partition states checkpoint to durable storage; on
  failure the engine restores the snapshot and deterministically replays
  the durable input log — exactly-once end to end, *with* serializable
  isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Hashable, Optional

from repro.cluster import stable_hash
from repro.net.latency import Latency
from repro.sim import Environment, Future, all_of
from repro.storage.object_store import ObjectStore, ObjectStoreServer
from repro.transactions.sequencer import SequencedTxn, Sequencer, partition_conflicts

#: Functions: fn(ctx, key, payload) -> Generator returning the result.
TxnFunction = Callable[["TxnContext", Hashable, Any], Generator]

#: Transactions with no declared key set serialize behind everything.
_UNIVERSAL_KEY = object()


class TxnAbort(Exception):
    """Raised by a function to abort its whole transaction."""


@dataclass
class _Request:
    tid: int
    fn_name: str
    key: Hashable
    payload: Any
    keys: frozenset
    future: Optional[Future]  # None after recovery replay


@dataclass
class TxnDataflowStats:
    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    epochs: int = 0
    waves: int = 0
    cross_partition_calls: int = 0
    checkpoints: int = 0
    recoveries: int = 0
    replayed: int = 0


class TxnContext:
    """A transaction's view of state and the call fabric."""

    def __init__(self, engine: "TransactionalDataflow", root_key: Hashable) -> None:
        self._engine = engine
        self._buffer: dict[Hashable, Any] = {}
        self._deleted: set[Hashable] = set()
        self._root_key = root_key
        self.env = engine.env

    # -- state access (current function's key is enforced by convention) --------

    def get(self, key: Hashable, default: Any = None) -> Any:
        if key in self._deleted:
            return default
        if key in self._buffer:
            return self._buffer[key]
        value = self._engine._read_state(key)
        return value if value is not None else default

    def put(self, key: Hashable, value: Any) -> None:
        self._deleted.discard(key)
        self._buffer[key] = value

    def delete(self, key: Hashable) -> None:
        self._buffer.pop(key, None)
        self._deleted.add(key)

    def call(self, fn_name: str, key: Hashable, payload: Any = None) -> Generator:
        """Invoke another function within this transaction.

        A different partition costs a dataflow hop in each direction.
        """
        engine = self._engine
        fn = engine._functions.get(fn_name)
        if fn is None:
            raise KeyError(f"no function named {fn_name!r}")
        if engine._partition(key) != engine._partition(self._root_key):
            engine.stats.cross_partition_calls += 1
            yield engine.env.timeout(engine.hop_latency)
        if engine.work_ms > 0:
            yield engine.env.timeout(engine.work_ms)
        result = yield from fn(self, key, payload)
        if engine._partition(key) != engine._partition(self._root_key):
            yield engine.env.timeout(engine.hop_latency)
        return result


class TransactionalDataflow:
    """The engine: sequencer + epoch executor + checkpointing."""

    def __init__(
        self,
        env: Environment,
        num_partitions: int = 4,
        epoch_interval: float = 10.0,
        hop_latency: float = 0.5,
        work_ms: float = 0.1,
        epoch_commit_ms: float = 1.0,
        checkpoint_every: int = 10,
        checkpoint_store: Optional[ObjectStoreServer] = None,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.env = env
        self.num_partitions = num_partitions
        self.epoch_interval = epoch_interval
        self.hop_latency = hop_latency
        self.work_ms = work_ms
        self.epoch_commit_ms = epoch_commit_ms
        self.checkpoint_every = checkpoint_every
        self.checkpoint_store = checkpoint_store or ObjectStoreServer(
            env, ObjectStore(), latency=Latency.object_store()
        )
        self._functions: dict[str, TxnFunction] = {}
        self._state: list[dict[Hashable, Any]] = [{} for _ in range(num_partitions)]
        self._input_log: list[_Request] = []  # durable (sequencer log)
        self._pending: list[_Request] = []
        self._committed_tids: set[int] = set()  # durable result log
        self._epochs_done = 0
        self._checkpointed_through = 0  # index into the input log
        self._running = False
        self._generation = 0  # bumped on crash/stop so stale loops exit
        self.stats = TxnDataflowStats()

    # -- registration / submission -----------------------------------------------

    def register(self, fn_name: str, fn: TxnFunction) -> None:
        if fn_name in self._functions:
            raise ValueError(f"function {fn_name!r} already registered")
        self._functions[fn_name] = fn

    def function(self, fn_name: str):
        """Decorator form of :meth:`register`."""

        def wrap(fn: TxnFunction) -> TxnFunction:
            self.register(fn_name, fn)
            return fn

        return wrap

    def submit(
        self,
        fn_name: str,
        key: Hashable,
        payload: Any = None,
        keys: Optional[list[Hashable]] = None,
    ) -> Future:
        """Enqueue a transaction; the future resolves at its epoch commit.

        ``keys`` declares the transaction's full key set, enabling
        parallel execution of non-conflicting transactions; undeclared
        transactions conservatively serialize behind everything.
        """
        if fn_name not in self._functions:
            raise KeyError(f"no function named {fn_name!r}")
        declared = frozenset(keys) if keys is not None else frozenset({_UNIVERSAL_KEY})
        request = _Request(
            tid=self.env.next_id("dataflow-tid"),
            fn_name=fn_name,
            key=key,
            payload=payload,
            keys=declared,
            future=self.env.future(label=f"txn:{fn_name}:{key}"),
        )
        self._input_log.append(request)
        self._pending.append(request)
        self.stats.submitted += 1
        return request.future

    # -- state --------------------------------------------------------------------

    def _partition(self, key: Hashable) -> int:
        return stable_hash(key) % self.num_partitions

    def _read_state(self, key: Hashable) -> Any:
        return self._state[self._partition(key)].get(key)

    def _install(self, buffer: dict[Hashable, Any], deleted: set[Hashable]) -> None:
        for key, value in buffer.items():
            self._state[self._partition(key)][key] = value
        for key in deleted:
            self._state[self._partition(key)].pop(key, None)

    def state_of(self, key: Hashable) -> Any:
        """Committed state peek (tests/invariants)."""
        return self._read_state(key)

    def all_state(self) -> dict[Hashable, Any]:
        merged: dict[Hashable, Any] = {}
        for partition in self._state:
            merged.update(partition)
        return dict(merged)

    # -- execution -------------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("engine already running")
        self._running = True
        self._generation += 1
        self.env.process(self._epoch_loop(self._generation), label="txn-dataflow.epochs")

    def stop(self) -> None:
        self._running = False
        self._generation += 1

    def _epoch_loop(self, generation: int) -> Generator:
        while self._running and self._generation == generation:
            yield self.env.timeout(self.epoch_interval)
            if not self._running or self._generation != generation:
                return
            if self._pending:
                batch, self._pending = self._pending, []
                yield from self._run_epoch(batch, replay=False)

    @staticmethod
    def _conflict_groups(batch: list[_Request]) -> list[list[_Request]]:
        """Split at undeclared-key txns: they serialize against everything."""
        groups: list[list[_Request]] = []
        current: list[_Request] = []
        for request in batch:
            if _UNIVERSAL_KEY in request.keys:
                if current:
                    groups.append(current)
                    current = []
                groups.append([request])
            else:
                current.append(request)
        if current:
            groups.append(current)
        return groups

    def _run_epoch(self, batch: list[_Request], replay: bool) -> Generator:
        """Execute one epoch: conflict waves, then atomic commit."""
        outcomes: list[tuple[_Request, bool, Any]] = []
        for group in self._conflict_groups(batch):
            sequencer = Sequencer()
            sequenced = [sequencer.submit(request) for request in group]
            waves = partition_conflicts(sequenced, keys_of=lambda req: set(req.keys))
            for wave in waves:
                self.stats.waves += 1
                running = [
                    self.env.process(
                        self._execute_one(item.payload), label=f"txn-{item.payload.tid}"
                    )
                    for item in wave
                ]
                results = yield all_of(self.env, running)
                outcomes.extend(results)
        # Epoch commit: flush, record results durably, release futures.
        yield self.env.timeout(self.epoch_commit_ms)
        self._epochs_done += 1
        self.stats.epochs += 1
        for request, ok, result in outcomes:
            already_released = request.tid in self._committed_tids
            self._committed_tids.add(request.tid)
            if ok:
                self.stats.committed += 1
            else:
                self.stats.aborted += 1
            if request.future is not None and not already_released:
                if ok:
                    request.future.try_succeed(result)
                else:
                    request.future.try_fail(result)
        if not replay and self._epochs_done % self.checkpoint_every == 0:
            yield from self._checkpoint()

    def _execute_one(self, request: _Request) -> Generator:
        ctx = TxnContext(self, request.key)
        fn = self._functions[request.fn_name]
        try:
            if self.work_ms > 0:
                yield self.env.timeout(self.work_ms)
            result = yield from fn(ctx, request.key, request.payload)
        except TxnAbort as abort:
            return (request, False, abort)
        except Exception as exc:  # noqa: BLE001 - aborts the transaction
            return (request, False, exc)
        self._install(ctx._buffer, ctx._deleted)
        return (request, True, result)

    # -- durability --------------------------------------------------------------------

    def _checkpoint(self) -> Generator:
        snapshot = {
            "state": [dict(partition) for partition in self._state],
            "log_position": len(self._input_log) - len(self._pending),
            "committed_tids": set(self._committed_tids),
            "epochs_done": self._epochs_done,
        }
        size = sum(len(p) for p in snapshot["state"]) + 1
        yield from self.checkpoint_store.put(
            "txn-dataflow", "latest", snapshot, size=size
        )
        self._checkpointed_through = snapshot["log_position"]
        self.stats.checkpoints += 1

    def crash(self) -> None:
        """Lose all volatile state; the input log and checkpoints survive.

        Client futures for unreleased transactions stay pending until
        recovery replays them.
        """
        self._running = False
        self._generation += 1
        self._state = [{} for _ in range(self.num_partitions)]
        self._pending = []
        self._committed_tids = set()
        self._epochs_done = 0

    def recover(self) -> Generator:
        """Restore the snapshot, replay the input log deterministically."""
        self.stats.recoveries += 1
        exists = yield from self.checkpoint_store.exists("txn-dataflow", "latest")
        position = 0
        if exists:
            snapshot = yield from self.checkpoint_store.get("txn-dataflow", "latest")
            self._state = [dict(partition) for partition in snapshot["state"]]
            self._committed_tids = set(snapshot["committed_tids"])
            self._epochs_done = snapshot["epochs_done"]
            position = snapshot["log_position"]
        # Seed the tid allocator past everything the snapshot and input log
        # have seen: a fresh id colliding with a recovered committed tid
        # would trip the exactly-once dedup and silently drop a release.
        seen = set(self._committed_tids)
        seen.update(request.tid for request in self._input_log)
        if seen:
            self.env.reseed_counter("dataflow-tid", max(seen))
        replayable = self._input_log[position:]
        # Submits that arrived during downtime sit in _pending *and* in the
        # replayable log suffix; replay covers them, so drop the pending
        # copies or the epoch loop would apply their effects a second time.
        self._pending = []
        self.stats.replayed += len(replayable)
        if replayable:
            yield from self._run_epoch(replayable, replay=True)
        self._running = True
        self._generation += 1
        self.env.process(self._epoch_loop(self._generation), label="txn-dataflow.epochs")

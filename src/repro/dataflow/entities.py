"""Stateful entities: object-oriented programs compiled onto the dataflow.

Paper §5.1 points to declarative/transparent programming models as the way
out of the paradigm zoo, citing *stateful entities* (ref [53]:
"object-oriented cloud applications as distributed dataflows").  This
module is that idea in miniature: developers write ordinary Python classes
with methods; :func:`compile_entities` registers them on a
:class:`~repro.dataflow.txn.TransactionalDataflow`, so every method call
becomes a serializable, exactly-once transaction — with *no* explicit
transactions, locks, retries, or messaging in the application code.

Cross-entity calls are plain-looking too: a method declared as a generator
may ``yield self.call_entity("Account", "bob", "deposit", 10)`` and the
call executes inside the same transaction (atomic across both entities).
"""

from __future__ import annotations

import inspect
from typing import Any, Generator, Hashable, Optional, Type

from repro.dataflow.txn import TransactionalDataflow, TxnContext
from repro.sim import Future


class EntityError(Exception):
    """Entity compilation or invocation misuse."""


class Entity:
    """Base class for user entities.

    Subclasses declare ``initial_state`` and methods.  Inside a method,
    ``self`` behaves like a normal object: attribute reads/writes go to
    the entity's transactional state.  Methods that need other entities
    are generators and use :meth:`call_entity`.
    """

    initial_state: dict[str, Any] = {}

    # These are populated by the runtime wrapper, not by user code.
    _ctx: Optional[TxnContext] = None
    _key: Optional[Hashable] = None

    def call_entity(self, entity_type: str, key: Hashable, method: str, *args: Any):
        """Invoke a method on another entity within this transaction."""
        if self._ctx is None:
            raise EntityError("call_entity outside a transaction")
        return self._ctx.call(f"{entity_type}.{method}", key, list(args))

    @property
    def key(self) -> Hashable:
        return self._key


def _state_key(entity_type: str, key: Hashable) -> str:
    return f"entity:{entity_type}:{key!r}"


class EntityHandle:
    """Client-side handle for invoking compiled entities."""

    def __init__(self, engine: TransactionalDataflow, types: dict[str, Type[Entity]]) -> None:
        self.engine = engine
        self.types = types

    def invoke(
        self,
        entity_type: str,
        key: Hashable,
        method: str,
        *args: Any,
        touches: Optional[list[tuple[str, Hashable]]] = None,
    ) -> Future:
        """Call ``method`` on the entity; returns a commit-time future.

        ``touches`` declares every ``(entity_type, key)`` the transaction
        may reach through cross-entity calls; the engine uses it for
        conflict-free wave parallelism (undeclared calls still execute
        correctly, just serialized).
        """
        if entity_type not in self.types:
            raise EntityError(f"unknown entity type {entity_type!r}")
        cls = self.types[entity_type]
        if not hasattr(cls, method) or method.startswith("_"):
            raise EntityError(f"{entity_type} has no public method {method!r}")
        if touches is not None:
            keys = [_state_key(t, k) for t, k in touches]
        else:
            keys = None  # conservative: serialize behind everything
        return self.engine.submit(f"{entity_type}.{method}", key, list(args), keys=keys)

    def state_of(self, entity_type: str, key: Hashable) -> dict:
        """Committed state peek for tests and invariants."""
        stored = self.engine.state_of(_state_key(entity_type, key))
        if stored is None:
            return dict(self.types[entity_type].initial_state)
        return dict(stored)


def compile_entities(
    engine: TransactionalDataflow, classes: list[Type[Entity]]
) -> EntityHandle:
    """Register every public method of every class as a dataflow function."""
    types: dict[str, Type[Entity]] = {}
    for cls in classes:
        if not issubclass(cls, Entity):
            raise EntityError(f"{cls.__name__} must subclass Entity")
        types[cls.__name__] = cls
        for method_name, method in inspect.getmembers(cls, predicate=callable):
            if method_name.startswith("_") or method_name in ("call_entity",):
                continue
            if method_name in Entity.__dict__:
                continue
            engine.register(
                f"{cls.__name__}.{method_name}",
                _make_wrapper(cls, method_name),
            )
    return EntityHandle(engine, types)


def _make_wrapper(cls: Type[Entity], method_name: str):
    """Build the dataflow function executing one entity method."""

    def wrapper(ctx: TxnContext, key: Hashable, args: list) -> Generator:
        state_key = _state_key(cls.__name__, key)
        stored = ctx.get(state_key)
        instance = cls.__new__(cls)
        instance.__dict__.update(
            dict(cls.initial_state) if stored is None else dict(stored)
        )
        instance._ctx = ctx
        instance._key = key
        method = getattr(instance, method_name)
        result = method(*(args or []))
        if inspect.isgenerator(result):
            # Trampoline: entity methods write `x = yield self.call_entity(...)`;
            # a yielded generator is a sub-call run inside this transaction,
            # anything else (futures/timeouts) passes through to the kernel.
            generator, send_value = result, None
            while True:
                try:
                    yielded = generator.send(send_value)
                except StopIteration as stop:
                    result = stop.value
                    break
                if inspect.isgenerator(yielded):
                    send_value = yield from yielded
                else:
                    send_value = yield yielded
        # Persist the instance's (possibly mutated) attributes.
        new_state = {
            k: v for k, v in instance.__dict__.items() if not k.startswith("_")
        }
        ctx.put(state_key, new_state)
        return result

    wrapper.__name__ = f"{cls.__name__}.{method_name}"
    return wrapper

"""The dataflow runtime: tasks, channels, checkpoints, recovery.

Execution model: every stage instance (source, operator task, sink) is a
simulation process on a worker node.  Records travel between tasks over
FIFO channels (constant per-hop latency preserves order — a requirement of
barrier alignment).  Checkpointing is the aligned Chandy-Lamport variant
used by Flink:

1. the coordinator asks each source to checkpoint;
2. sources snapshot their replay offset and broadcast a barrier;
3. an operator receiving a barrier on one input blocks that input until
   barriers arrived on all inputs, snapshots its embedded state to the
   durable checkpoint store, forwards the barrier, and acknowledges;
4. when every task acknowledged, the checkpoint is *complete*: exactly-once
   sinks flush the output buffer belonging to it.

Recovery restores every task's state from the last complete checkpoint and
rewinds sources to its offsets; everything after it replays.  State effects
are therefore exactly-once; sink effects are exactly-once only for
transactional ("exactly_once") sinks — at-least-once sinks re-emit replayed
records, which benchmark C5/C4 count as duplicates.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.cluster import stable_hash, stable_hash_text
from repro.dataflow.graph import JobGraph, TaskState
from repro.net.latency import Latency
from repro.net.network import Network
from repro.sim import Environment, Future, Interrupted
from repro.storage.lsm import LsmStore
from repro.storage.object_store import ObjectStore, ObjectStoreServer


@dataclass(frozen=True)
class _Barrier:
    checkpoint_id: int


@dataclass
class DataflowStats:
    records_processed: int = 0
    checkpoints_completed: int = 0
    checkpoints_abandoned: int = 0
    recoveries: int = 0
    replayed_records: int = 0
    sink_emits: int = 0


class _InputGate:
    """Per-task input: one FIFO queue per upstream task, with blocking."""

    def __init__(self, env: Environment, upstreams: list[str], label: str) -> None:
        self.env = env
        self.upstreams = list(upstreams)
        self.queues: dict[str, deque] = {u: deque() for u in upstreams}
        self.blocked: set[str] = set()
        self._waiter: Optional[Future] = None
        self._rr = 0  # round-robin cursor for fairness
        self.label = label

    def push(self, upstream: str, item: Any) -> None:
        queue = self.queues.get(upstream)
        if queue is None:
            return  # stale delivery from before a recovery
        queue.append(item)
        self._wake()

    def _wake(self) -> None:
        if self._waiter is not None and not self._waiter.done:
            self._waiter.succeed(None)
        self._waiter = None

    def poll(self) -> Optional[tuple[str, Any]]:
        """Next (upstream, item) from an unblocked queue, else ``None``."""
        order = self.upstreams[self._rr:] + self.upstreams[:self._rr]
        self._rr = (self._rr + 1) % max(1, len(self.upstreams))
        for upstream in order:
            if upstream in self.blocked:
                continue
            queue = self.queues[upstream]
            if queue:
                return upstream, queue.popleft()
        return None

    def wait(self) -> Future:
        self._waiter = self.env.future(label=f"{self.label}.gate")
        return self._waiter

    def block(self, upstream: str) -> None:
        self.blocked.add(upstream)

    def unblock_all(self) -> None:
        self.blocked.clear()
        self._wake()


class _SourceTask:
    """Reads a durable log (survives crashes) and feeds the graph."""

    def __init__(self, runtime: "DataflowRuntime", name: str) -> None:
        self.runtime = runtime
        self.name = name
        self.task_id = f"{name}#0"
        self.spec = runtime.graph.sources[name]
        self.log: list[tuple[Any, Any]] = []  # durable, broker-like
        self.position = 0
        self._pending_checkpoints: deque[int] = deque()
        self._wake: Optional[Future] = None

    def push(self, key: Any, value: Any) -> None:
        """External ingestion (appended durably)."""
        self.log.append((key, value))
        self._wake_up()

    def request_checkpoint(self, checkpoint_id: int) -> None:
        self._pending_checkpoints.append(checkpoint_id)
        self._wake_up()

    def _wake_up(self) -> None:
        if self._wake is not None and not self._wake.done:
            self._wake.succeed(None)
        self._wake = None

    def run(self) -> Generator:
        env = self.runtime.env
        while True:
            if self._pending_checkpoints:
                checkpoint_id = self._pending_checkpoints.popleft()
                self.runtime._broadcast_barrier(
                    self.task_id, self.name, _Barrier(checkpoint_id)
                )
                self.runtime._coordinator.ack(
                    checkpoint_id, self.task_id, {"offset": self.position}
                )
                continue
            if self.position < len(self.log):
                key, value = self.log[self.position]
                self.position += 1
                if self.spec.emit_interval > 0:
                    yield env.timeout(self.spec.emit_interval)
                else:
                    yield env.timeout(0)
                self.runtime._route(self.task_id, self.name, key, value)
                continue
            self._wake = env.future(label=f"{self.task_id}.idle")
            yield self._wake


class _OperatorTask:
    """One parallel instance of an operator, with embedded keyed state."""

    def __init__(self, runtime: "DataflowRuntime", name: str, index: int) -> None:
        self.runtime = runtime
        self.name = name
        self.index = index
        self.task_id = f"{name}#{index}"
        self.spec = runtime.graph.operators[name]
        self.store = LsmStore(memtable_limit=256)
        upstream_tasks = runtime._upstream_task_ids(name)
        self.gate = _InputGate(runtime.env, upstream_tasks, self.task_id)
        self._barrier_acks: dict[int, set[str]] = {}
        self._emitted: list[tuple[Any, Any]] = []

    def _emit(self, key: Any, value: Any) -> None:
        self._emitted.append((key, value))

    def run(self) -> Generator:
        env = self.runtime.env
        state = TaskState(self.store)
        while True:
            entry = self.gate.poll()
            if entry is None:
                yield self.gate.wait()
                continue
            upstream, item = entry
            if isinstance(item, _Barrier):
                yield from self._on_barrier(upstream, item)
                continue
            key, value = item
            if self.spec.work_ms > 0:
                yield env.timeout(self.spec.work_ms)
            self.spec.fn(state, key, value, self._emit)
            self.runtime.stats.records_processed += 1
            emitted, self._emitted = self._emitted, []
            for out_key, out_value in emitted:
                self.runtime._route(self.task_id, self.name, out_key, out_value)

    def _on_barrier(self, upstream: str, barrier: _Barrier) -> Generator:
        received = self._barrier_acks.setdefault(barrier.checkpoint_id, set())
        received.add(upstream)
        self.gate.block(upstream)
        if received != set(self.gate.upstreams):
            return
        # Aligned: snapshot embedded state to the durable checkpoint store.
        snapshot = self.store.snapshot()
        yield from self.runtime.checkpoint_store.put(
            "checkpoints",
            self.runtime._snapshot_key(barrier.checkpoint_id, self.task_id),
            snapshot,
            size=max(1, len(snapshot)),
        )
        self.runtime._broadcast_barrier(self.task_id, self.name, barrier)
        self.runtime._coordinator.ack(barrier.checkpoint_id, self.task_id, {})
        del self._barrier_acks[barrier.checkpoint_id]
        self.gate.unblock_all()


class _SinkTask:
    """Terminal stage: surfaces outputs per its delivery mode."""

    def __init__(self, runtime: "DataflowRuntime", name: str) -> None:
        self.runtime = runtime
        self.name = name
        self.task_id = f"{name}#0"
        self.spec = runtime.graph.sinks[name]
        upstream_tasks = runtime._upstream_task_ids(name)
        self.gate = _InputGate(runtime.env, upstream_tasks, self.task_id)
        self._barrier_acks: dict[int, set[str]] = {}
        self._current_buffer: list[tuple[Any, Any, float]] = []
        self._pending: dict[int, list[tuple[Any, Any, float]]] = {}

    def run(self) -> Generator:
        env = self.runtime.env
        while True:
            entry = self.gate.poll()
            if entry is None:
                yield self.gate.wait()
                continue
            upstream, item = entry
            if isinstance(item, _Barrier):
                self._on_barrier(upstream, item)
                continue
            key, value = item
            if self.spec.mode == "at_least_once":
                self.runtime._deliver_output(self.name, key, value)
            else:
                self._current_buffer.append((key, value, env.now))

    def _on_barrier(self, upstream: str, barrier: _Barrier) -> None:
        received = self._barrier_acks.setdefault(barrier.checkpoint_id, set())
        received.add(upstream)
        self.gate.block(upstream)
        if received != set(self.gate.upstreams):
            return
        if self.spec.mode == "exactly_once":
            self._pending[barrier.checkpoint_id] = self._current_buffer
            self._current_buffer = []
        self.runtime._coordinator.ack(barrier.checkpoint_id, self.task_id, {})
        del self._barrier_acks[barrier.checkpoint_id]
        self.gate.unblock_all()

    def on_checkpoint_complete(self, checkpoint_id: int) -> None:
        """Transactional flush: the checkpoint's outputs become visible."""
        for key, value, _buffered_at in self._pending.pop(checkpoint_id, []):
            self.runtime._deliver_output(self.name, key, value)


class _Coordinator:
    """Triggers checkpoints, collects acks, tracks completed snapshots."""

    def __init__(self, runtime: "DataflowRuntime", interval: float) -> None:
        self.runtime = runtime
        self.interval = interval
        self._ids = itertools.count(1)
        self._inflight: Optional[int] = None
        self._acks: dict[str, dict] = {}
        self._expected: set[str] = set()
        #: checkpoint_id -> {"offsets": {source_task: offset}}
        self.completed: list[tuple[int, dict]] = []
        self._inflight_meta: dict = {}

    def trigger(self) -> int:
        checkpoint_id = next(self._ids)
        self._inflight = checkpoint_id
        self._acks = {}
        self._inflight_meta = {"offsets": {}}
        self._expected = set(self.runtime._all_task_ids())
        for source in self.runtime._sources.values():
            source.request_checkpoint(checkpoint_id)
        return checkpoint_id

    def ack(self, checkpoint_id: int, task_id: str, meta: dict) -> None:
        if checkpoint_id != self._inflight:
            return  # ack for an abandoned checkpoint
        self._acks[task_id] = meta
        if "offset" in meta:
            self._inflight_meta["offsets"][task_id] = meta["offset"]
        if set(self._acks) == self._expected:
            self.completed.append((checkpoint_id, self._inflight_meta))
            self._inflight = None
            self.runtime.stats.checkpoints_completed += 1
            for sink in self.runtime._sinks.values():
                sink.on_checkpoint_complete(checkpoint_id)

    def abandon_inflight(self) -> None:
        if self._inflight is not None:
            self._inflight = None
            self.runtime.stats.checkpoints_abandoned += 1

    def last_completed(self) -> Optional[tuple[int, dict]]:
        return self.completed[-1] if self.completed else None


class DataflowRuntime:
    """Deploys a :class:`~repro.dataflow.graph.JobGraph` and runs it."""

    def __init__(
        self,
        env: Environment,
        graph: JobGraph,
        checkpoint_interval: float = 200.0,
        num_workers: int = 2,
        hop_latency: float = 0.5,
        checkpoint_store: Optional[ObjectStoreServer] = None,
    ) -> None:
        graph.validate()
        self.env = env
        self.graph = graph
        self.hop_latency = hop_latency
        self.net = Network(env, default_latency=Latency.constant(hop_latency))
        self.checkpoint_store = checkpoint_store or ObjectStoreServer(
            env, ObjectStore(), latency=Latency.object_store(),
        )
        self._workers = [self.net.add_node(f"df-worker-{i}") for i in range(num_workers)]
        self._coordinator = _Coordinator(self, checkpoint_interval)
        self._sources: dict[str, _SourceTask] = {}
        self._operators: dict[str, list[_OperatorTask]] = {}
        self._sinks: dict[str, _SinkTask] = {}
        self._outputs: dict[str, list[tuple[Any, Any, float]]] = {
            name: [] for name in graph.sinks
        }
        self.stats = DataflowStats()
        self.running = False
        self._epoch = 0  # incremented on every (re)start; stale tasks die
        self._build_tasks()

    # -- construction -------------------------------------------------------------

    def _build_tasks(self) -> None:
        self._sources = {name: _SourceTask(self, name) for name in self.graph.sources}
        self._operators = {
            name: [_OperatorTask(self, name, i) for i in range(spec.parallelism)]
            for name, spec in self.graph.operators.items()
        }
        self._sinks = {name: _SinkTask(self, name) for name in self.graph.sinks}

    def _all_task_ids(self) -> list[str]:
        ids = [s.task_id for s in self._sources.values()]
        for tasks in self._operators.values():
            ids.extend(t.task_id for t in tasks)
        ids.extend(s.task_id for s in self._sinks.values())
        return ids

    def _upstream_task_ids(self, stage: str) -> list[str]:
        ids: list[str] = []
        for upstream in self.graph.upstream_of(stage):
            if upstream in self.graph.sources:
                ids.append(f"{upstream}#0")
            else:
                spec = self.graph.operators[upstream]
                ids.extend(f"{upstream}#{i}" for i in range(spec.parallelism))
        return ids

    def _worker_for(self, task_id: str) -> "Node":  # noqa: F821
        index = stable_hash_text(task_id) % len(self._workers)
        return self._workers[index]

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn every task process and the checkpoint coordinator."""
        if self.running:
            raise RuntimeError("job already running")
        self.running = True
        self._epoch += 1
        for source in self._sources.values():
            self._spawn(source.task_id, source.run())
        for tasks in self._operators.values():
            for task in tasks:
                self._spawn(task.task_id, task.run())
        for sink in self._sinks.values():
            self._spawn(sink.task_id, sink.run())
        # The coordinator models a durable job manager: not tied to workers.
        self.env.process(self._coordinator_loop(self._epoch), label=f"{self.graph.name}.coord")

    def _coordinator_loop(self, epoch: int) -> Generator:
        while self._epoch == epoch and self.running:
            yield self.env.timeout(self._coordinator.interval)
            if self._epoch != epoch or not self.running:
                return
            if self._coordinator._inflight is None:
                self._coordinator.trigger()

    def _spawn(self, task_id: str, generator: Generator) -> None:
        node = self._worker_for(task_id)
        if not node.alive:
            return  # will be (re)spawned at recovery
        node.spawn(self._guard(generator), label=task_id)

    @staticmethod
    def _guard(generator: Generator) -> Generator:
        try:
            yield from generator
        except Interrupted:
            pass  # task killed by crash/stop

    def stop(self) -> None:
        """Halt all processing (tasks die; durable logs/snapshots remain)."""
        self.running = False
        self._epoch += 1
        for node in self._workers:
            node.crash("job-stop")
            node.restart()

    # -- ingestion / outputs ------------------------------------------------------------

    def send(self, source: str, key: Any, value: Any) -> None:
        """Append a record to a source's durable log."""
        self._sources[source].push(key, value)

    def _deliver_output(self, sink: str, key: Any, value: Any) -> None:
        self._outputs[sink].append((key, value, self.env.now))
        self.stats.sink_emits += 1

    def sink_outputs(self, sink: str) -> list[tuple[Any, Any, float]]:
        """Externally visible outputs: ``(key, value, emitted_at)``."""
        return list(self._outputs[sink])

    # -- routing --------------------------------------------------------------------------

    def _route(self, producer_task: str, producer_stage: str, key: Any, value: Any) -> None:
        for downstream in self.graph.downstream_of(producer_stage):
            target = self._target_task(downstream, key)
            self.env.schedule(
                self.hop_latency, target.gate.push, producer_task, (key, value)
            )

    def _target_task(self, stage: str, key: Any):
        if stage in self._sinks:
            return self._sinks[stage]
        tasks = self._operators[stage]
        return tasks[self._partition(key, len(tasks))]

    @staticmethod
    def _partition(key: Any, parallelism: int) -> int:
        return stable_hash(key) % parallelism

    def _broadcast_barrier(self, producer_task: str, producer_stage: str, barrier: _Barrier) -> None:
        """Send this task's barrier to every task of every downstream stage."""
        for downstream in self.graph.downstream_of(producer_stage):
            if downstream in self._sinks:
                targets = [self._sinks[downstream]]
            else:
                targets = self._operators[downstream]
            for target in targets:
                self.env.schedule(
                    self.hop_latency, target.gate.push, producer_task, barrier
                )

    def _snapshot_key(self, checkpoint_id: int, task_id: str) -> str:
        return f"{self.graph.name}/{checkpoint_id}/{task_id}"

    # -- failure and recovery ------------------------------------------------------------

    def crash_worker(self, index: int) -> None:
        """Kill one worker node (its tasks die mid-flight)."""
        self._workers[index].crash("injected-fault")

    def recover(self) -> Generator:
        """Global restart from the last completed checkpoint.

        A generator: restoring state charges checkpoint-store reads, so the
        caller can measure recovery time.  Replays everything after the
        restored offsets.
        """
        self.running = False
        self._epoch += 1
        self._coordinator.abandon_inflight()
        # Tear down whatever survives, keep durable artifacts.
        source_logs = {name: task.log for name, task in self._sources.items()}
        for node in self._workers:
            node.crash("recovery")
            node.restart()
        self._build_tasks()
        for name, log in source_logs.items():
            self._sources[name].log = log
        last = self._coordinator.last_completed()
        if last is not None:
            checkpoint_id, meta = last
            for tasks in self._operators.values():
                for task in tasks:
                    snapshot = yield from self.checkpoint_store.get(
                        "checkpoints", self._snapshot_key(checkpoint_id, task.task_id)
                    )
                    task.store.restore(snapshot)
            for task_id, offset in meta["offsets"].items():
                source_name = task_id.split("#")[0]
                replayed = len(self._sources[source_name].log) - offset
                self.stats.replayed_records += max(0, replayed)
                self._sources[source_name].position = offset
        else:
            # No checkpoint ever completed: the whole log replays.
            self.stats.replayed_records += sum(
                len(source.log) for source in self._sources.values()
            )
        self.stats.recoveries += 1
        self.running = True
        for source in self._sources.values():
            self._spawn(source.task_id, source.run())
        for tasks in self._operators.values():
            for task in tasks:
                self._spawn(task.task_id, task.run())
        for sink in self._sinks.values():
            self._spawn(sink.task_id, sink.run())
        self.env.process(self._coordinator_loop(self._epoch), label=f"{self.graph.name}.coord")

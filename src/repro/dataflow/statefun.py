"""A Statefun-like stateful-functions runtime with rewind recovery.

Flink Statefun, as the paper characterizes it (§4.2): it manages "state
updates and messages in an integrated manner, transparently rewinding the
application state to a previously consistent checkpoint in case of a
delivery error.  Therefore, it achieves exactly-once processing and
atomicity as a consequence.  However, there is no transactional isolation
across Statefun entities."

Reproduced semantics:

- functions are addressed by ``(function_type, key)``; each such *entity*
  owns private state and processes one message at a time
  (run-to-completion), §3.1's actor-flavoured SFaaS;
- ``ctx.send`` delivers asynchronous messages to other entities
  (cross-partition hops are charged latency) — cascades interleave, so
  there is **no isolation across entities**;
- checkpoints snapshot all entity state plus the ingress offset at
  *quiescent* instants; recovery rewinds to the snapshot and replays the
  durable ingress log — exactly-once state effects;
- egress records buffer until the covering checkpoint completes
  (transactional egress), so outputs are exactly-once too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Hashable, Optional

from repro.cluster import stable_hash
from repro.net.latency import Latency
from repro.sim import Environment, Lock
from repro.storage.object_store import ObjectStore, ObjectStoreServer

StatefulFunction = Callable[["FunctionContext", Hashable, Any], Generator]


@dataclass
class StatefunStats:
    ingressed: int = 0
    invocations: int = 0
    internal_messages: int = 0
    cross_partition: int = 0
    checkpoints: int = 0
    recoveries: int = 0
    replayed: int = 0
    egressed: int = 0


class FunctionContext:
    """Per-invocation view: entity state + messaging."""

    def __init__(self, runtime: "StatefunRuntime", fn_type: str, key: Hashable) -> None:
        self._runtime = runtime
        self._fn_type = fn_type
        self._key = key
        self.env = runtime.env

    # -- entity state ------------------------------------------------------------

    @property
    def state(self) -> dict:
        """The entity's private, mutable state dict (mutations stick)."""
        return self._runtime._state_of(self._fn_type, self._key)

    # -- messaging ----------------------------------------------------------------

    def send(self, fn_type: str, key: Hashable, message: Any) -> None:
        """Asynchronous message to another entity (fire and forget)."""
        self._runtime._send_internal(self._fn_type, self._key, fn_type, key, message)

    def egress(self, value: Any) -> None:
        """Emit to the transactional egress (visible at checkpoint)."""
        self._runtime._egress_buffer.append(value)


class StatefunRuntime:
    """The runtime: ingress log, entity dispatch, checkpoint/rewind."""

    def __init__(
        self,
        env: Environment,
        num_partitions: int = 4,
        checkpoint_interval: float = 100.0,
        hop_latency: float = 0.5,
        work_ms: float = 0.1,
        checkpoint_store: Optional[ObjectStoreServer] = None,
    ) -> None:
        self.env = env
        self.num_partitions = num_partitions
        self.checkpoint_interval = checkpoint_interval
        self.hop_latency = hop_latency
        self.work_ms = work_ms
        self.checkpoint_store = checkpoint_store or ObjectStoreServer(
            env, ObjectStore(), latency=Latency.object_store()
        )
        self._functions: dict[str, StatefulFunction] = {}
        self._states: dict[tuple[str, Hashable], dict] = {}
        self._entity_locks: dict[tuple[str, Hashable], Lock] = {}
        self._ingress_log: list[tuple[str, Hashable, Any]] = []  # durable
        self._ingress_position = 0
        self._inflight = 0
        self._egress_buffer: list[Any] = []
        self._egress: list[Any] = []  # externally visible (exactly-once)
        self._running = False
        self._generation = 0
        self._wake = None
        self.stats = StatefunStats()

    # -- registration / ingress --------------------------------------------------

    def register(self, fn_type: str, fn: StatefulFunction) -> None:
        if fn_type in self._functions:
            raise ValueError(f"function {fn_type!r} already registered")
        self._functions[fn_type] = fn

    def function(self, fn_type: str):
        """Decorator form of :meth:`register`."""

        def wrap(fn: StatefulFunction) -> StatefulFunction:
            self.register(fn_type, fn)
            return fn

        return wrap

    def ingress(self, fn_type: str, key: Hashable, message: Any) -> None:
        """Append an external event to the durable ingress log."""
        if fn_type not in self._functions:
            raise KeyError(f"no function {fn_type!r}")
        self._ingress_log.append((fn_type, key, message))
        self.stats.ingressed += 1
        self._wake_dispatcher()

    # -- state --------------------------------------------------------------------

    def _partition(self, key: Hashable) -> int:
        return stable_hash(key) % self.num_partitions

    def _state_of(self, fn_type: str, key: Hashable) -> dict:
        return self._states.setdefault((fn_type, key), {})

    def state_of(self, fn_type: str, key: Hashable) -> dict:
        """Committed-state peek for tests and invariants."""
        return dict(self._states.get((fn_type, key), {}))

    def egress_records(self) -> list[Any]:
        """Checkpoint-covered (exactly-once) egress."""
        return list(self._egress)

    # -- execution -------------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("runtime already running")
        self._running = True
        self._generation += 1
        self.env.process(self._dispatcher(self._generation), label="statefun.dispatch")
        self.env.process(self._checkpointer(self._generation), label="statefun.ckpt")

    def stop(self) -> None:
        self._running = False
        self._generation += 1

    def _wake_dispatcher(self) -> None:
        if self._wake is not None and not self._wake.done:
            self._wake.succeed(None)
        self._wake = None

    def _dispatcher(self, generation: int) -> Generator:
        while self._running and self._generation == generation:
            if self._ingress_position < len(self._ingress_log):
                fn_type, key, message = self._ingress_log[self._ingress_position]
                self._ingress_position += 1
                self._spawn_invocation(fn_type, key, message, generation)
                yield self.env.timeout(0)
            else:
                self._wake = self.env.future(label="statefun.idle")
                yield self._wake

    def _spawn_invocation(
        self, fn_type: str, key: Hashable, message: Any, generation: int
    ) -> None:
        self._inflight += 1
        self.env.process(
            self._invoke(fn_type, key, message, generation),
            label=f"sf:{fn_type}:{key}",
        )

    def _invoke(self, fn_type: str, key: Hashable, message: Any, generation: int) -> Generator:
        try:
            if self._generation != generation:
                return  # rewound: this in-flight cascade is abandoned
            ident = (fn_type, key)
            lock = self._entity_locks.get(ident)
            if lock is None:
                lock = Lock(self.env, label=f"sf-entity:{ident}")
                self._entity_locks[ident] = lock
            yield lock.acquire()
            try:
                if self._generation != generation:
                    return
                if self.work_ms > 0:
                    yield self.env.timeout(self.work_ms)
                if self._generation != generation:
                    # A *zombie turn*: this invocation slept across a
                    # crash; its incarnation is dead and its message will
                    # be replayed from the ingress log.  Running it now
                    # would double-apply the effect (caught by randomized
                    # crash-point fuzzing).
                    return
                fn = self._functions[fn_type]
                ctx = FunctionContext(self, fn_type, key)
                self.stats.invocations += 1
                yield from fn(ctx, key, message)
            finally:
                lock.release()
        finally:
            self._inflight -= 1

    def _send_internal(
        self, src_type: str, src_key: Hashable, fn_type: str, key: Hashable, message: Any
    ) -> None:
        if fn_type not in self._functions:
            raise KeyError(f"no function {fn_type!r}")
        self.stats.internal_messages += 1
        delay = 0.0
        if self._partition(key) != self._partition(src_key):
            self.stats.cross_partition += 1
            delay = self.hop_latency
        generation = self._generation
        self._inflight += 1

        def deliver() -> None:
            self._inflight -= 1
            if self._generation == generation:
                self._spawn_invocation(fn_type, key, message, generation)

        self.env.schedule(delay, deliver)

    # -- checkpointing / recovery ----------------------------------------------------

    def _checkpointer(self, generation: int) -> Generator:
        while self._running and self._generation == generation:
            yield self.env.timeout(self.checkpoint_interval)
            if not self._running or self._generation != generation:
                return
            # Wait for quiescence so the snapshot is cascade-consistent.
            while self._inflight > 0 or self._ingress_position < len(self._ingress_log):
                yield self.env.timeout(1.0)
                if self._generation != generation:
                    return
            yield from self._checkpoint()

    def _checkpoint(self) -> Generator:
        generation = self._generation
        # Only egress produced *before* the snapshot is covered by it;
        # records arriving while the store write is in flight belong to
        # cascades that would replay after a crash.  The released egress
        # log travels INSIDE the snapshot (a transactional sink): output
        # release and state/offset commit are atomic, so a crash between
        # them can neither lose nor duplicate outputs.
        covered = list(self._egress_buffer)
        released = list(self._egress) + covered
        snapshot = {
            "states": {k: dict(v) for k, v in self._states.items()},
            "position": self._ingress_position,
            "egress": released,
        }
        yield from self.checkpoint_store.put(
            "statefun", "latest", snapshot,
            size=max(1, len(snapshot["states"])),
        )
        if self._generation != generation:
            return  # crashed during the write: recovery reads the snapshot
        self._egress = released
        self.stats.egressed += len(covered)
        self._egress_buffer = self._egress_buffer[len(covered):]
        self.stats.checkpoints += 1

    def crash(self) -> None:
        """Lose volatile state: entity states, in-flight cascades, buffers."""
        self._running = False
        self._generation += 1
        self._states = {}
        self._entity_locks = {}
        self._egress_buffer = []
        self._inflight = 0
        self._ingress_position = 0

    def recover(self) -> Generator:
        """Rewind to the last checkpoint and replay the ingress tail."""
        self.stats.recoveries += 1
        exists = yield from self.checkpoint_store.exists("statefun", "latest")
        if exists:
            snapshot = yield from self.checkpoint_store.get("statefun", "latest")
            self._states = {k: dict(v) for k, v in snapshot["states"].items()}
            self._ingress_position = snapshot["position"]
            # The transactional sink: released output is exactly what the
            # snapshot committed, no more and no less.
            self._egress = list(snapshot.get("egress", []))
        else:
            self._egress = []
        self.stats.replayed += len(self._ingress_log) - self._ingress_position
        self._running = True
        self._generation += 1
        self.env.process(self._dispatcher(self._generation), label="statefun.dispatch")
        self.env.process(self._checkpointer(self._generation), label="statefun.ckpt")

"""Invariant oracles: did the history + final state stay explainable?

Oracles extend the repository's invariant vocabulary
(:mod:`repro.transactions.anomalies`) from "check a state snapshot" to
"check a state snapshot *given what clients were told*".  The key
subtlety is the Jepsen ``info`` category: an operation whose outcome is
unknown (timeout, 2PC uncertainty window, in flight at trial end) may or
may not have applied — a correct system is allowed either, so the oracle
must search for *some* subset of info operations that explains the final
state, and only report a violation when none exists.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.chaos.history import History
from repro.transactions.anomalies import ConservationInvariant, Invariant, Violation


class Oracle:
    """Base oracle: judge a completed trial."""

    name = "oracle"

    def check(self, history: History, final_state: Any) -> list[Violation]:
        raise NotImplementedError


class ConservationOracle(Oracle):
    """Total of a numeric field over final rows equals a constant.

    History-independent (every transfer is zero-sum whether or not it
    applied), so it holds regardless of info operations — which makes it
    the sharpest detector for *partial* application (one leg landed, the
    other did not).
    """

    def __init__(self, field_name: str, expected_total: float) -> None:
        self.invariant = ConservationInvariant(field_name, expected_total)
        self.name = self.invariant.name

    def check(self, history: History, final_state: Any) -> list[Violation]:
        return self.invariant.check(final_state)


class TransferExactlyOnceOracle(Oracle):
    """Final balances == initial + ok transfers + some subset of info ones.

    ``ok`` transfers must have applied exactly once, ``fail`` transfers
    not at all, and each ``info`` transfer either zero or one time; the
    oracle searches for an info subset whose per-account deltas explain
    the residual.  Duplicated effects, lost acknowledged effects, and
    effects from failed operations all leave an inexplicable residual.
    """

    #: Beyond this many info ops the subset search degrades gracefully.
    MAX_INFO_SEARCH = 16

    def __init__(self, initial: dict[str, int], ops: dict[str, Any],
                 kind: str = "transfer") -> None:
        self.name = "transfer_exactly_once"
        self.initial = dict(initial)
        self.ops = dict(ops)  # op_id -> object with .src/.dst/.amount
        self.kind = kind

    def _delta(self, op_ids: list[str]) -> dict[str, int]:
        delta: dict[str, int] = {}
        for op_id in op_ids:
            op = self.ops[op_id]
            delta[op.src] = delta.get(op.src, 0) - op.amount
            delta[op.dst] = delta.get(op.dst, 0) + op.amount
        return delta

    def check(self, history: History, final_state: Any) -> list[Violation]:
        final = {row["id"]: row["balance"] for row in final_state}
        known = set(self.ops)
        ok_ops = [op for op in history.ok_ops(self.kind) if op in known]
        info_ops = [op for op in history.info_ops(self.kind) if op in known]
        applied = self._delta(ok_ops)
        residual = {
            acct: final.get(acct, 0) - balance - applied.get(acct, 0)
            for acct, balance in self.initial.items()
        }
        if not any(residual.values()):
            return []
        if len(info_ops) > self.MAX_INFO_SEARCH:
            # Too many unknowns for an exact search; fall back to the
            # zero-sum property every subset preserves.
            drift = sum(residual.values())
            if drift:
                return [Violation(
                    self.name,
                    f"balance drift {drift:+} not explainable by any "
                    f"subset of {len(info_ops)} unknown-outcome transfers",
                )]
            return []
        if self._explainable(residual, info_ops):
            return []
        return [Violation(
            self.name,
            "final balances unexplained by acknowledged transfers plus any "
            f"subset of {len(info_ops)} unknown-outcome transfer(s); "
            f"residual {self._residual_repr(residual)}",
        )]

    def _explainable(self, residual: dict[str, int], info_ops: list[str]) -> bool:
        target = {acct: value for acct, value in residual.items() if value}

        def search(index: int, remaining: dict[str, int]) -> bool:
            if not remaining:
                return True
            if index == len(info_ops):
                return False
            op = self.ops[info_ops[index]]
            # Branch: this info op did not apply.
            if search(index + 1, remaining):
                return True
            # Branch: it applied once.
            nxt = dict(remaining)
            for acct, diff in ((op.src, -op.amount), (op.dst, op.amount)):
                value = nxt.get(acct, 0) - diff
                if value:
                    nxt[acct] = value
                else:
                    nxt.pop(acct, None)
            return search(index + 1, nxt)

        return search(0, target)

    @staticmethod
    def _residual_repr(residual: dict[str, int]) -> str:
        nonzero = {a: v for a, v in sorted(residual.items()) if v}
        return repr(nonzero)


class SagaAtomicityOracle(Oracle):
    """Marketplace sagas: all-or-nothing effects, per-workload invariants.

    Delegates state checks (no oversell, charge-exactly-once) to the
    workload's own invariants, then cross-checks the history: every ``ok``
    checkout must have produced its order row, and no ``fail`` checkout
    may have one.
    """

    def __init__(self, workload: Any, kind: str = "checkout") -> None:
        self.name = "saga_atomicity"
        self.workload = workload
        self.kind = kind

    def check(self, history: History, final_state: Any) -> list[Violation]:
        violations: list[Violation] = []
        for invariant in self.workload.invariants():
            violations.extend(invariant.check(final_state))
        order_ids = {row["id"] for row in final_state.get("orders", [])}
        for op_id in history.ok_ops(self.kind):
            if op_id not in order_ids:
                violations.append(Violation(
                    self.name, f"{op_id}: acknowledged checkout has no order row",
                ))
        for op_id in history.fail_ops(self.kind):
            if op_id in order_ids:
                violations.append(Violation(
                    self.name, f"{op_id}: failed checkout left an order row",
                ))
        return violations


class SnapshotAuditOracle(Oracle):
    """Every successful mid-run audit saw the invariant total.

    Only valid for runtimes whose audit is an isolated (serializable)
    read — a transactional-dataflow audit transaction or an OCC audit
    workflow.  Non-isolated audits legitimately observe in-flight
    transfers and must not install this oracle.
    """

    def __init__(self, expected_total: int, kind: str = "audit") -> None:
        self.name = "snapshot_audit"
        self.expected_total = expected_total
        self.kind = kind

    def check(self, history: History, final_state: Any) -> list[Violation]:
        violations = []
        for event in history.completions("ok", self.kind):
            if event.value != self.expected_total:
                violations.append(Violation(
                    self.name,
                    f"{event.op_id} at t={event.ts}: observed total "
                    f"{event.value}, expected {self.expected_total}",
                ))
        return violations

"""Deterministic schedule minimization and standalone repro artifacts.

Given a failing trial, the shrinker looks for the smallest fault schedule
(fewest episodes, shortest downtimes, narrowest partitions, lowest rates)
that still produces *a* violation for the same (runtime, seed).  Every
candidate is judged by actually re-running the trial — the simulator is
deterministic, so each re-run is exact, and the final minimized schedule
is saved as a :class:`ReproArtifact` that replays byte-identically from
just a seed and a plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.chaos.config import ChaosConfig
from repro.chaos.nemesis import Episode
from repro.chaos.runner import TrialResult, run_trial
from repro.core.faults import FaultPlan

ARTIFACT_VERSION = 1


@dataclass
class ShrinkReport:
    """What the shrinker did and what it converged to."""

    episodes: list[Episode]
    result: TrialResult
    trials: int
    initial_events: int

    @property
    def final_events(self) -> int:
        return len(self.result.plan.events)


def shrink(
    runtime: str,
    seed: int,
    episodes: list[Episode],
    config: Optional[ChaosConfig] = None,
    broken: bool = False,
    fast_path: bool = True,
    max_trials: int = 64,
) -> ShrinkReport:
    """Minimize ``episodes`` while the trial still finds a violation.

    Greedy passes, each to fixpoint, in order of payoff: drop whole
    episodes, halve durations, halve rates, narrow partition groups.
    The candidate count is bounded by ``max_trials``.
    """
    budget = {"left": max_trials}

    def fails(candidate: list[Episode]) -> Optional[TrialResult]:
        if budget["left"] <= 0:
            return None
        budget["left"] -= 1
        result = run_trial(
            runtime, seed, config=config, episodes=list(candidate),
            fast_path=fast_path, broken=broken,
        )
        return result if result.violations else None

    current = list(episodes)
    best = fails(current)
    if best is None:
        raise ValueError(
            "shrink() needs a failing schedule: the given episodes produced "
            "no violation (or max_trials was 0)"
        )
    initial_events = len(best.plan.events)

    # Pass 1: drop episodes, one at a time, to fixpoint.
    changed = True
    while changed and budget["left"] > 0:
        changed = False
        for index in range(len(current)):
            candidate = current[:index] + current[index + 1:]
            result = fails(candidate)
            if result is not None:
                current, best, changed = candidate, result, True
                break

    def try_replace(index: int, replacement: Episode) -> bool:
        nonlocal current, best
        candidate = list(current)
        candidate[index] = replacement
        result = fails(candidate)
        if result is not None:
            current, best = candidate, result
            return True
        return False

    # Pass 2: halve durations (a couple of rounds each).
    for index in range(len(current)):
        for _round in range(2):
            episode = current[index]
            if episode.duration < 10.0 or budget["left"] <= 0:
                break
            shorter = Episode(
                kind=episode.kind, start=episode.start,
                duration=round(episode.duration / 2, 3),
                target=episode.target, group_a=episode.group_a,
                group_b=episode.group_b, rate=episode.rate,
            )
            if not try_replace(index, shorter):
                break

    # Pass 3: halve rates on loss/duplication/delay bursts.
    for index in range(len(current)):
        for _round in range(2):
            episode = current[index]
            if episode.rate <= 0.02 or budget["left"] <= 0:
                break
            weaker = Episode(
                kind=episode.kind, start=episode.start,
                duration=episode.duration, target=episode.target,
                group_a=episode.group_a, group_b=episode.group_b,
                rate=round(episode.rate / 2, 4),
            )
            if not try_replace(index, weaker):
                break

    # Pass 4: narrow partition groups to singletons where possible.
    for index in range(len(current)):
        episode = current[index]
        if episode.kind != "partition":
            continue
        for side in ("group_a", "group_b"):
            group = getattr(current[index], side)
            while len(group) > 1 and budget["left"] > 0:
                narrowed_group = group[1:]
                episode = current[index]
                narrowed = Episode(
                    kind=episode.kind, start=episode.start,
                    duration=episode.duration, target=episode.target,
                    group_a=narrowed_group if side == "group_a" else episode.group_a,
                    group_b=narrowed_group if side == "group_b" else episode.group_b,
                    rate=episode.rate,
                )
                if not try_replace(index, narrowed):
                    break
                group = narrowed_group

    return ShrinkReport(
        episodes=current, result=best,
        trials=max_trials - budget["left"], initial_events=initial_events,
    )


@dataclass
class ReproArtifact:
    """A standalone, replayable witness of a chaos violation."""

    runtime: str
    seed: int
    broken: bool
    fast_path: bool
    plan: dict
    episodes: list[dict] = field(default_factory=list)
    violations: list[dict] = field(default_factory=list)
    history_digest: str = ""
    version: int = ARTIFACT_VERSION

    @classmethod
    def from_result(cls, result: TrialResult) -> "ReproArtifact":
        return cls(
            runtime=result.runtime,
            seed=result.seed,
            broken=result.broken,
            fast_path=result.fast_path,
            plan=result.plan.to_dict(),
            episodes=[e.to_dict() for e in result.episodes],
            violations=[
                {"invariant": v.invariant, "detail": v.detail}
                for v in result.violations
            ],
            history_digest=result.history_digest,
        )

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "runtime": self.runtime,
                "seed": self.seed,
                "broken": self.broken,
                "fast_path": self.fast_path,
                "plan": self.plan,
                "episodes": self.episodes,
                "violations": self.violations,
                "history_digest": self.history_digest,
            },
            indent=2, sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReproArtifact":
        data = json.loads(text)
        version = data.get("version", 0)
        if version != ARTIFACT_VERSION:
            raise ValueError(f"unsupported artifact version {version!r}")
        return cls(
            runtime=data["runtime"],
            seed=data["seed"],
            broken=data.get("broken", False),
            fast_path=data.get("fast_path", True),
            plan=data["plan"],
            episodes=data.get("episodes", []),
            violations=data.get("violations", []),
            history_digest=data.get("history_digest", ""),
            version=version,
        )

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "ReproArtifact":
        return cls.from_json(Path(path).read_text())

    def replay(self) -> TrialResult:
        """Re-run the recorded trial; deterministic given the same build."""
        return run_trial(
            self.runtime, self.seed,
            plan=FaultPlan.from_dict(self.plan),
            fast_path=self.fast_path, broken=self.broken,
        )

    def matches(self, result: TrialResult) -> bool:
        """Did a replay reproduce the recorded observation exactly?"""
        replayed = [
            {"invariant": v.invariant, "detail": v.detail}
            for v in result.violations
        ]
        return (
            replayed == self.violations
            and result.history_digest == self.history_digest
        )

"""Jepsen-style chaos fuzzing on the deterministic simulator.

The paper's qualitative claims are all of the form "discipline X preserves
correctness *under failures*" (§3.2); this package falsifies them under
randomized adversaries instead of two scripted scenarios:

- :mod:`repro.chaos.config` — :class:`ChaosConfig`, the declarative fault
  budget (which node classes are fair game, max concurrent faults, min
  heal windows, rate/duration bounds);
- :mod:`repro.chaos.nemesis` — the seeded :class:`Nemesis` sampling fault
  :class:`Episode` schedules within the budget, compiled down to the
  shared :class:`repro.core.FaultPlan` execution path;
- :mod:`repro.chaos.history` — Jepsen-style invoke/ok/fail/info histories
  with virtual-clock timestamps and span ids;
- :mod:`repro.chaos.oracles` — pluggable invariant oracles over histories
  and final state (conservation, exactly-once, saga atomicity, snapshot
  audits);
- :mod:`repro.chaos.scenarios` — the four runtimes under test behind one
  scenario interface (microservice saga, actor transactions,
  transactional dataflow, FaaS workflows);
- :mod:`repro.chaos.runner` — one seeded trial end to end;
- :mod:`repro.chaos.shrinker` — deterministic schedule minimization and
  standalone repro artifacts.
"""

from repro.chaos.config import ChaosConfig
from repro.chaos.history import History, HistoryEvent
from repro.chaos.nemesis import Episode, Nemesis, compile_plan
from repro.chaos.oracles import (
    ConservationOracle,
    Oracle,
    SagaAtomicityOracle,
    SnapshotAuditOracle,
    TransferExactlyOnceOracle,
)
from repro.chaos.runner import RUNTIMES, TrialResult, run_trial
from repro.chaos.scenarios import build_scenario
from repro.chaos.shrinker import ReproArtifact, ShrinkReport, shrink

__all__ = [
    "ChaosConfig",
    "ConservationOracle",
    "Episode",
    "History",
    "HistoryEvent",
    "Nemesis",
    "Oracle",
    "RUNTIMES",
    "ReproArtifact",
    "SagaAtomicityOracle",
    "ShrinkReport",
    "SnapshotAuditOracle",
    "TransferExactlyOnceOracle",
    "TrialResult",
    "build_scenario",
    "compile_plan",
    "run_trial",
    "shrink",
]

"""The declarative fault budget a nemesis samples schedules from."""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Fault classes a nemesis knows how to generate.
FAULT_CLASSES = ("crash", "partition", "loss", "duplication", "delay", "kill_leader")


@dataclass(frozen=True)
class ChaosConfig:
    """Everything the nemesis may do, as data.

    ``horizon`` is the workload window (virtual ms, relative to workload
    start) inside which faults may be active; every fault heals/restarts
    within it.  ``settle`` is the quiet tail after the horizon during
    which the system recovers before oracles read final state.

    ``crashable`` / ``partitionable`` list the node *names* that are fair
    game — node classes the application can afford to lose (never, say,
    the client edge).  ``max_concurrent_faults`` bounds how many episodes
    may overlap in time, and ``min_heal_window`` is the minimum quiet gap
    between same-kind episodes (and same-node crashes), so the system
    always gets a chance to re-converge.
    """

    horizon: float = 400.0
    settle: float = 800.0
    episodes: int = 4
    fault_classes: tuple[str, ...] = FAULT_CLASSES
    crashable: tuple[str, ...] = ()
    partitionable: tuple[str, ...] = ()
    #: replica-group labels whose *current leader* kill_leader episodes
    #: target (resolved at fire time by the scenario's leader resolver)
    leader_groups: tuple[str, ...] = ()
    max_concurrent_faults: int = 1
    min_heal_window: float = 60.0
    downtime: tuple[float, float] = (30.0, 100.0)
    burst: tuple[float, float] = (20.0, 80.0)
    loss_rate: tuple[float, float] = (0.05, 0.3)
    duplication_rate: tuple[float, float] = (0.05, 0.3)
    extra_delay_ms: tuple[float, float] = (5.0, 40.0)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.settle < 0:
            raise ValueError("settle must be >= 0")
        if self.episodes < 0:
            raise ValueError("episodes must be >= 0")
        unknown = set(self.fault_classes) - set(FAULT_CLASSES)
        if unknown:
            raise ValueError(f"unknown fault classes: {sorted(unknown)}")
        if self.max_concurrent_faults < 1:
            raise ValueError("max_concurrent_faults must be >= 1")
        if self.min_heal_window < 0:
            raise ValueError("min_heal_window must be >= 0")
        for name in ("downtime", "burst", "loss_rate", "duplication_rate",
                     "extra_delay_ms"):
            lo, hi = getattr(self, name)
            if not (0 <= lo <= hi):
                raise ValueError(f"{name}: need 0 <= lo <= hi, got ({lo}, {hi})")
        if len(self.partitionable) == 1:
            raise ValueError("partitionable needs at least two nodes (or none)")

    def effective_classes(self) -> tuple[str, ...]:
        """Classes that can actually produce an episode with this budget."""
        out = []
        for kind in self.fault_classes:
            if kind == "crash" and not self.crashable:
                continue
            if kind == "partition" and len(self.partitionable) < 2:
                continue
            if kind == "kill_leader" and not self.leader_groups:
                continue
            out.append(kind)
        return tuple(out)

    def to_dict(self) -> dict:
        data = asdict(self)
        # Tuples serialize as lists; from_dict restores them.
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosConfig":
        coerced = {}
        for key, value in data.items():
            coerced[key] = tuple(value) if isinstance(value, list) else value
        return cls(**coerced)

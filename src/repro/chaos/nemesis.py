"""The seeded nemesis: randomized fault episodes within a declared budget.

An :class:`Episode` is one bounded fault interval (a crash with its
restart, a partition with its heal, a loss/duplication/delay burst with
its restore).  The nemesis samples admissible episodes from a
:class:`~repro.chaos.config.ChaosConfig` using a named random stream, and
:func:`compile_plan` lowers them to the repository-wide
:class:`~repro.core.faults.FaultPlan` — fuzzed and scripted fault
schedules share one execution path, and the shrinker can minimize at the
episode level while replaying at the plan level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.chaos.config import ChaosConfig
from repro.core.faults import FaultPlan

#: Episode kinds that are exclusive per target (node or group label).
_NODE_KINDS = ("crash", "kill_leader")


@dataclass(frozen=True)
class Episode:
    """One bounded fault interval; ``rate`` is probability or delay-ms."""

    kind: str
    start: float
    duration: float
    target: Optional[str] = None
    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()
    rate: float = 0.0

    @property
    def end(self) -> float:
        return self.start + self.duration

    def overlaps(self, other: "Episode", gap: float = 0.0) -> bool:
        return self.start < other.end + gap and other.start < self.end + gap

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "start": self.start, "duration": self.duration}
        if self.target is not None:
            out["target"] = self.target
        if self.group_a:
            out["group_a"] = list(self.group_a)
        if self.group_b:
            out["group_b"] = list(self.group_b)
        if self.rate:
            out["rate"] = self.rate
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Episode":
        return cls(
            kind=data["kind"],
            start=float(data["start"]),
            duration=float(data["duration"]),
            target=data.get("target"),
            group_a=tuple(data.get("group_a", ())),
            group_b=tuple(data.get("group_b", ())),
            rate=float(data.get("rate", 0.0)),
        )


class Nemesis:
    """Samples admissible fault schedules from a :class:`ChaosConfig`."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config

    def generate(self, rng: random.Random) -> list[Episode]:
        """Sample up to ``config.episodes`` admissible episodes.

        Accept-reject: candidates violating the budget (overlap beyond
        ``max_concurrent_faults``, same-kind overlap, crash of a node
        still within its heal window) are discarded; the attempt budget
        bounds the loop so a tight config yields fewer episodes rather
        than spinning.
        """
        config = self.config
        classes = config.effective_classes()
        episodes: list[Episode] = []
        if not classes or config.episodes == 0:
            return episodes
        attempts_left = config.episodes * 25 + 25
        while len(episodes) < config.episodes and attempts_left > 0:
            attempts_left -= 1
            candidate = self._sample(rng, classes)
            if candidate is not None and self._admissible(candidate, episodes):
                episodes.append(candidate)
        episodes.sort(key=lambda e: (e.start, e.kind, e.target or ""))
        return episodes

    def _sample(self, rng: random.Random, classes: tuple[str, ...]) -> Optional[Episode]:
        config = self.config
        kind = classes[rng.randrange(len(classes))]
        lo, hi = (
            config.downtime
            if kind in ("crash", "partition", "kill_leader")
            else config.burst
        )
        if lo >= config.horizon:
            return None
        start = round(rng.uniform(0.0, config.horizon - lo), 3)
        duration = round(rng.uniform(lo, min(hi, config.horizon - start)), 3)
        if kind == "crash":
            target = config.crashable[rng.randrange(len(config.crashable))]
            return Episode(kind=kind, start=start, duration=duration, target=target)
        if kind == "kill_leader":
            target = config.leader_groups[rng.randrange(len(config.leader_groups))]
            return Episode(kind=kind, start=start, duration=duration, target=target)
        if kind == "partition":
            nodes = list(config.partitionable)
            rng.shuffle(nodes)
            cut = rng.randrange(1, len(nodes))
            return Episode(
                kind=kind, start=start, duration=duration,
                group_a=tuple(sorted(nodes[:cut])),
                group_b=tuple(sorted(nodes[cut:])),
            )
        bounds = {
            "loss": config.loss_rate,
            "duplication": config.duplication_rate,
            "delay": config.extra_delay_ms,
        }[kind]
        rate = round(rng.uniform(*bounds), 4)
        return Episode(kind=kind, start=start, duration=duration, rate=rate)

    def _admissible(self, candidate: Episode, accepted: list[Episode]) -> bool:
        config = self.config
        concurrent = 0
        for other in accepted:
            if candidate.kind == other.kind:
                # Same-kind episodes are serialized with a heal window:
                # loss/duplication/delay set a single global knob, and
                # partitions heal globally, so overlap would corrupt the
                # restore; serialized crashes keep schedules readable.
                same_node = (
                    candidate.kind not in _NODE_KINDS
                    or candidate.target == other.target
                )
                if same_node and candidate.overlaps(other, gap=config.min_heal_window):
                    return False
            if candidate.overlaps(other):
                concurrent += 1
        return concurrent < config.max_concurrent_faults


def compile_plan(episodes: list[Episode]) -> FaultPlan:
    """Lower episodes to the shared :class:`FaultPlan` execution path."""
    plan = FaultPlan()
    for episode in sorted(episodes, key=lambda e: (e.start, e.kind, e.target or "")):
        if episode.kind == "crash":
            plan.crash_restart(episode.target, at=episode.start,
                               downtime=episode.duration)
        elif episode.kind == "kill_leader":
            plan.kill_leader(episode.target, at=episode.start,
                             until=episode.end)
        elif episode.kind == "partition":
            plan.partition(list(episode.group_a), list(episode.group_b),
                           at=episode.start, heal_at=episode.end)
        elif episode.kind == "loss":
            plan.loss(episode.rate, at=episode.start, until=episode.end)
        elif episode.kind == "duplication":
            plan.duplication(episode.rate, at=episode.start, until=episode.end)
        elif episode.kind == "delay":
            plan.delay(episode.rate, at=episode.start, until=episode.end)
        else:
            raise ValueError(f"unknown episode kind {episode.kind!r}")
    plan.validate()
    return plan

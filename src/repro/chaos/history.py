"""Jepsen-style operation histories over the virtual clock.

Every client operation is recorded as an ``invoke`` followed by exactly
one completion: ``ok`` (effect definitely happened), ``fail`` (effect
definitely did not happen), or ``info`` (outcome unknown — timeouts,
commit-uncertainty windows, operations still in flight at the end of a
trial).  Oracles reason over the completed history plus final state; the
``info`` category is what keeps them honest about uncertainty instead of
misclassifying an in-doubt transfer as lost money.

Event contents are deliberately limited to client-visible facts (op ids,
kinds, values, virtual timestamps) so :meth:`History.digest` is stable
across runs of the same seed even when runtime internals allocate ids
differently.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

#: Completion actions; ``invoke`` opens an operation.
ACTIONS = ("invoke", "ok", "fail", "info")


@dataclass(frozen=True)
class HistoryEvent:
    """One line of the history."""

    index: int
    ts: float
    client: str
    action: str
    op_id: str
    kind: str
    detail: str = ""
    value: Any = None
    span_id: Optional[int] = None

    def to_dict(self) -> dict:
        out: dict = {
            "index": self.index,
            "ts": self.ts,
            "client": self.client,
            "action": self.action,
            "op_id": self.op_id,
            "kind": self.kind,
        }
        if self.detail:
            out["detail"] = self.detail
        if self.value is not None:
            out["value"] = self.value
        if self.span_id:
            out["span_id"] = self.span_id
        return out


class History:
    """An append-only operation history with invoke/completion pairing."""

    def __init__(self) -> None:
        self.events: list[HistoryEvent] = []
        self._open: dict[str, HistoryEvent] = {}

    # -- recording -----------------------------------------------------------

    def _append(
        self,
        ts: float,
        client: str,
        action: str,
        op_id: str,
        kind: str,
        detail: str = "",
        value: Any = None,
        span_id: Optional[int] = None,
    ) -> HistoryEvent:
        event = HistoryEvent(
            index=len(self.events), ts=ts, client=client, action=action,
            op_id=op_id, kind=kind, detail=detail, value=value,
            span_id=span_id or None,
        )
        self.events.append(event)
        return event

    def invoke(self, ts: float, client: str, op_id: str, kind: str,
               detail: str = "", span_id: Optional[int] = None) -> HistoryEvent:
        if op_id in self._open:
            raise ValueError(f"operation {op_id!r} already open")
        event = self._append(ts, client, "invoke", op_id, kind, detail,
                             span_id=span_id)
        self._open[op_id] = event
        return event

    def _complete(self, ts: float, action: str, op_id: str, detail: str,
                  value: Any) -> HistoryEvent:
        invoked = self._open.pop(op_id, None)
        if invoked is None:
            raise ValueError(f"completion for {op_id!r} without invoke")
        return self._append(ts, invoked.client, action, op_id, invoked.kind,
                            detail, value, span_id=invoked.span_id)

    def ok(self, ts: float, op_id: str, value: Any = None,
           detail: str = "") -> HistoryEvent:
        return self._complete(ts, "ok", op_id, detail, value)

    def fail(self, ts: float, op_id: str, detail: str = "") -> HistoryEvent:
        return self._complete(ts, "fail", op_id, detail, None)

    def info(self, ts: float, op_id: str, detail: str = "") -> HistoryEvent:
        return self._complete(ts, "info", op_id, detail, None)

    def close_pending(self, ts: float) -> int:
        """Mark every still-open invoke as ``info`` (trial ended first)."""
        open_ids = sorted(self._open, key=lambda op: self._open[op].index)
        for op_id in open_ids:
            self._complete(ts, "info", op_id, "still in flight at trial end", None)
        return len(open_ids)

    # -- querying ------------------------------------------------------------

    def completions(self, action: str, kind: Optional[str] = None) -> list[HistoryEvent]:
        return [
            e for e in self.events
            if e.action == action and (kind is None or e.kind == kind)
        ]

    def ok_ops(self, kind: Optional[str] = None) -> list[str]:
        return [e.op_id for e in self.completions("ok", kind)]

    def fail_ops(self, kind: Optional[str] = None) -> list[str]:
        return [e.op_id for e in self.completions("fail", kind)]

    def info_ops(self, kind: Optional[str] = None) -> list[str]:
        return [e.op_id for e in self.completions("info", kind)]

    def counts(self) -> dict[str, int]:
        out = {action: 0 for action in ACTIONS}
        for event in self.events:
            out[event.action] += 1
        return out

    def digest(self) -> str:
        """A stable fingerprint: sha256 over the canonical event list."""
        payload = json.dumps(
            [event.to_dict() for event in self.events],
            sort_keys=True, separators=(",", ":"), default=repr,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<History {len(self.events)} events {self.counts()}>"

"""One chaos trial, end to end, fully determined by (runtime, seed, plan).

A trial builds the scenario, runs its setup quiescently, samples (or is
handed) a fault plan, then drives concurrent clients through the workload
while the plan executes — recording every operation in the history.  After
the horizon plus a settle window, still-open operations close as ``info``,
final state is read, and the scenario's oracles pass judgment.

Everything observable — the compiled plan JSON, the history digest, the
violation list — is a pure function of the inputs, which is what makes
shrinking and repro artifacts possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chaos.config import ChaosConfig
from repro.chaos.history import History
from repro.chaos.nemesis import Episode, Nemesis, compile_plan
from repro.chaos.scenarios import build_scenario
from repro.core.faults import FaultPlan
from repro.sim import Environment, any_of
from repro.transactions.anomalies import Violation

#: The runtimes a trial can target.
RUNTIMES = (
    "microservice", "actor", "dataflow", "faas", "cluster", "overload",
    "replication", "ledger", "invoicing",
)

#: Concurrent client processes per trial.
NUM_CLIENTS = 3


@dataclass
class TrialResult:
    """Everything a trial produced; serializable via :meth:`summary`."""

    runtime: str
    seed: int
    broken: bool
    fast_path: bool
    plan: FaultPlan
    episodes: list[Episode]
    history: History
    violations: list[Violation] = field(default_factory=list)
    final_total: Optional[int] = None
    scenario: Any = None  # the live scenario, for stats introspection

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def plan_json(self) -> str:
        return self.plan.to_json()

    @property
    def history_digest(self) -> str:
        return self.history.digest()

    def summary(self) -> dict:
        return {
            "runtime": self.runtime,
            "seed": self.seed,
            "broken": self.broken,
            "fault_events": len(self.plan.events),
            "history": self.history.counts(),
            "history_digest": self.history_digest,
            "violations": [
                {"invariant": v.invariant, "detail": v.detail}
                for v in self.violations
            ],
        }


def run_trial(
    runtime: str,
    seed: int,
    config: Optional[ChaosConfig] = None,
    plan: Optional[FaultPlan] = None,
    episodes: Optional[list[Episode]] = None,
    fast_path: bool = True,
    broken: bool = False,
) -> TrialResult:
    """Run one seeded chaos trial and judge it.

    Pass ``episodes`` (or a pre-compiled ``plan``) to replay a specific
    schedule — the shrinker and ``--replay`` path; otherwise the nemesis
    samples a schedule from ``config`` (default: the scenario's budget)
    using the environment's ``"nemesis"`` stream.
    """
    if runtime not in RUNTIMES:
        raise ValueError(f"unknown runtime {runtime!r}; choose from {RUNTIMES}")
    env = Environment(seed=seed, fast_path=fast_path)
    scenario = build_scenario(runtime, env, broken=broken)
    config = config or scenario.default_config
    env.run_until(env.process(scenario.setup(), label="chaos.setup"))

    if episodes is not None and plan is None:
        plan = compile_plan(episodes)
    if plan is None:
        episodes = Nemesis(config).generate(env.stream("nemesis"))
        plan = compile_plan(episodes)
    elif episodes is None:
        episodes = []
    # Plan times are relative to workload start == now (post-setup).
    plan.apply(env, scenario.net,
               resolver=getattr(scenario, "resolve_leader", None))

    history = History()
    ops = scenario.ops()
    start = env.now
    spacing = config.horizon / max(1, (len(ops) + NUM_CLIENTS - 1) // NUM_CLIENTS)

    def guarded(gen, outcome) -> Any:
        try:
            value = yield from gen
        except Exception as exc:  # noqa: BLE001 - judged by classify()
            outcome.try_succeed(("error", exc))
            return
        outcome.try_succeed(("value", value))

    def run_op(client: str, op_id: str, kind: str, gen) -> Any:
        span = env.tracer.event("chaos.op", op_id=op_id) if env.tracer.enabled else None
        history.invoke(env.now, client, op_id, kind,
                       span_id=span.span_id if span else None)
        outcome = env.future(label=f"chaos:{op_id}")
        env.process(guarded(gen, outcome), label=f"chaos.op:{op_id}")
        winner = yield any_of(
            env, [outcome, env.timeout(scenario.op_timeout, "timeout")]
        )
        if winner[0] == 1:
            history.info(env.now, op_id, "client timeout")
            return
        status, payload = winner[1]
        if status == "value":
            history.ok(env.now, op_id, value=payload)
        else:
            verdict = scenario.classify(payload)
            detail = type(payload).__name__
            if verdict == "fail":
                history.fail(env.now, op_id, detail)
            else:
                history.info(env.now, op_id, detail)

    def client(name: str, assigned) -> Any:
        for op in assigned:
            yield from run_op(name, op.op_id, scenario.kind,
                              scenario.execute(op))
            remaining = (start + config.horizon) - env.now
            if remaining > 0:
                yield env.timeout(min(spacing, remaining))

    def auditor() -> Any:
        index = 0
        while env.now < start + config.horizon:
            yield env.timeout(scenario.audit_interval)
            index += 1
            yield from run_op("auditor", f"audit-{index:03d}", "audit",
                              scenario.audit())

    for c in range(NUM_CLIENTS):
        env.process(client(f"client-{c}", ops[c::NUM_CLIENTS]),
                    label=f"chaos.client-{c}")
    if scenario.audit is not None:
        env.process(auditor(), label="chaos.auditor")

    env.run(until=start + config.horizon + config.settle)
    history.close_pending(env.now)

    final_state = scenario.final_state()
    violations: list[Violation] = []
    for oracle in scenario.oracles():
        violations.extend(oracle.check(history, final_state))
    total: Optional[int] = None
    if isinstance(final_state, list):
        try:
            total = sum(row["balance"] for row in final_state)
        except (TypeError, KeyError):
            total = None
    return TrialResult(
        runtime=runtime, seed=seed, broken=broken, fast_path=fast_path,
        plan=plan, episodes=list(episodes), history=history,
        violations=violations, final_total=total, scenario=scenario,
    )

"""The four runtimes under test, behind one chaos-scenario interface.

Each scenario wires an application (from :mod:`repro.apps`) to a network
whose nodes the nemesis may crash and partition, declares a default
:class:`~repro.chaos.config.ChaosConfig` budget, classifies the
exceptions its operations raise into Jepsen outcomes (``fail`` = the
effect definitely did not happen, ``info`` = unknown), and names the
oracles entitled to judge it.

``broken=True`` selects the intentionally unsound configuration — the
actor bank in ``plain`` mode, whose two independent actor calls per
transfer are atomic per actor but not across them (§4.2's default).  The
chaos harness must find and shrink that bug; it is the end-to-end test
that the detector detects.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.actors import ActorError, CommitUncertain, TransactionFailed
from repro.apps import ActorBank, FaasBank, MicroserviceShop, TxnDataflowBank
from repro.chaos.config import ChaosConfig
from repro.chaos.oracles import (
    ConservationOracle,
    Oracle,
    SagaAtomicityOracle,
    SnapshotAuditOracle,
    TransferExactlyOnceOracle,
)
from repro.dataflow import TxnAbort
from repro.faas.workflows import WorkflowAborted
from repro.messaging import RpcRemoteError, RpcTimeout
from repro.net import Network, NodeCrashed
from repro.sim import Environment, Interrupted
from repro.workloads import MarketplaceWorkload, TransferWorkload


class Scenario:
    """One runtime under chaos: workload, faults surface, oracles."""

    name = "scenario"
    kind = "transfer"
    op_timeout = 2000.0
    audit_interval: Optional[float] = None
    default_config = ChaosConfig()

    def __init__(self, env: Environment, broken: bool = False) -> None:
        self.env = env
        self.broken = broken
        self.net: Optional[Network] = None

    def setup(self) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def ops(self) -> list:
        raise NotImplementedError

    def execute(self, op) -> Generator:
        raise NotImplementedError

    #: Optional: a generator returning the audit value, or None.
    audit: Optional[Callable[[], Generator]] = None

    def final_state(self) -> Any:
        raise NotImplementedError

    def oracles(self) -> list[Oracle]:
        raise NotImplementedError

    def classify(self, exc: Exception) -> str:
        """Map an operation exception to ``fail`` or ``info``."""
        raise NotImplementedError


class MicroserviceScenario(Scenario):
    """Saga-coordinated checkouts across stock/payment/orders services."""

    name = "microservice"
    kind = "checkout"
    default_config = ChaosConfig(
        crashable=("stock", "payment", "orders"),
        partitionable=("edge-client", "stock", "payment", "orders"),
        loss_rate=(0.03, 0.15),
        duplication_rate=(0.03, 0.15),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = MarketplaceWorkload(
            num_products=6, initial_stock=200, payment_failure_rate=0.1
        )
        mode = "none" if broken else "saga"
        self.shop = MicroserviceShop(
            env, self.workload, mode=mode,
            request_timeout=150.0, compensation_retries=10,
        )
        self.net = self.shop.app.net

    def setup(self) -> Generator:
        return
        yield  # pragma: no cover

    def ops(self) -> list:
        return list(self.workload.operations(self.env.stream("workload"), 18))

    def execute(self, op) -> Generator:
        yield from self.shop.execute(op)
        return True

    def final_state(self) -> Any:
        return self.shop.final_state()

    def oracles(self) -> list[Oracle]:
        return [SagaAtomicityOracle(self.workload, kind=self.kind)]

    def classify(self, exc: Exception) -> str:
        # The saga surface: a compensated (or business-declined) checkout
        # raises RpcRemoteError — the failure is definite.  Anything else
        # (a timeout escaping the uncoordinated mode) is unknown.
        if isinstance(exc, RpcRemoteError):
            return "fail"
        return "info"


class ActorScenario(Scenario):
    """Transfers across virtual actors via Orleans-style 2PC.

    Broken mode drops the coordinator: withdraw and deposit become two
    independent at-most-once actor calls with client retries.
    """

    name = "actor"
    default_config = ChaosConfig(
        crashable=("silo-0", "silo-1", "silo-2"),
        partitionable=(),
        downtime=(30.0, 90.0),
        loss_rate=(0.03, 0.15),
        duplication_rate=(0.03, 0.15),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        mode = "plain" if broken else "transaction"
        self.bank = ActorBank(env, self.workload, mode=mode, num_silos=3)
        self.net = self.bank.runtime.net
        self._ops: dict[str, Any] = {}

    def setup(self) -> Generator:
        yield from self.bank.setup()

    def ops(self) -> list:
        ops = list(self.workload.operations(self.env.stream("workload"), 18))
        self._ops = {op.op_id: op for op in ops}
        return ops

    def execute(self, op) -> Generator:
        yield from self.bank.execute(op)
        return True

    def final_state(self) -> Any:
        return self.bank.balances()

    def oracles(self) -> list[Oracle]:
        initial = {
            row["id"]: row["balance"] for row in self.workload.initial_rows()
        }
        return [
            ConservationOracle("balance", self.workload.expected_total),
            TransferExactlyOnceOracle(initial, self._ops, kind=self.kind),
        ]

    def classify(self, exc: Exception) -> str:
        if isinstance(exc, CommitUncertain):
            return "info"  # the 2PC uncertainty window
        if isinstance(exc, TransactionFailed):
            return "fail"  # aborted before the commit decision
        # Plain-mode surface (ActorError, RpcTimeout): at-most-once calls
        # may have applied without acknowledging.
        return "info"


class DataflowScenario(Scenario):
    """Transfers on the Styx-like transactional dataflow engine.

    The engine is bound to a single simulated node: crashing the node
    loses all volatile engine state, restarting it runs deterministic
    checkpoint-restore + input-log replay.  Only crashes are in budget —
    the engine's internals do not traverse the message network.
    """

    name = "dataflow"
    audit_interval = 70.0
    default_config = ChaosConfig(
        fault_classes=("crash",),
        crashable=("dataflow-engine",),
        episodes=3,
        downtime=(30.0, 90.0),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.bank = TxnDataflowBank(
            env, self.workload, checkpoint_every=3, epoch_interval=5.0
        )
        self.net = Network(env)
        self.node = self.net.add_node("dataflow-engine")
        bind_engine_to_node(env, self.node, self.bank.engine)

    def setup(self) -> Generator:
        self.bank.start()
        yield from self.bank.setup()

    def ops(self) -> list:
        return list(self.workload.operations(self.env.stream("workload"), 18))

    def execute(self, op) -> Generator:
        result = yield from self.bank.execute(op)
        return result

    def audit(self) -> Generator:
        total = yield from self.bank.audit()
        return total

    def final_state(self) -> Any:
        return self.bank.balances()

    def oracles(self) -> list[Oracle]:
        return [
            ConservationOracle("balance", self.workload.expected_total),
            SnapshotAuditOracle(self.workload.expected_total),
        ]

    def classify(self, exc: Exception) -> str:
        if isinstance(exc, TxnAbort):
            return "fail"  # deterministic abort: never installed
        return "info"


class FaasScenario(Scenario):
    """Transfers as Beldi-style OCC workflows on crashable workers.

    Workflow attempts run as processes on worker nodes; a crash kills the
    attempt mid-flight and the supervisor re-runs it on a surviving
    worker **with the same workflow id** — the §4.2 exactly-once recipe
    (OCC commit + result dedup) is what the oracle then audits.
    """

    name = "faas"
    audit_interval = 70.0
    default_config = ChaosConfig(
        fault_classes=("crash",),
        crashable=("worker-0", "worker-1"),
        episodes=3,
        downtime=(30.0, 90.0),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.bank = FaasBank(env, self.workload, mode="workflow")
        self.bank.workflows.register("audit", self._audit_workflow)
        self.net = Network(env)
        self.workers = [self.net.add_node(f"worker-{i}") for i in range(2)]
        self._audits = 0

    @staticmethod
    def _audit_workflow(ctx, account_ids):
        total = 0
        for account in account_ids:
            balance = yield from ctx.read(account, 0)
            total += balance
        return total

    def setup(self) -> Generator:
        yield from self.bank.setup()

    def ops(self) -> list:
        return list(self.workload.operations(self.env.stream("workload"), 18))

    def _on_worker(self, body: Callable[[], Generator]) -> Generator:
        """Run ``body`` on an alive worker, re-running it after crashes.

        Safe only for idempotent bodies (workflow ids dedup re-runs).
        """
        while True:
            worker = next((w for w in self.workers if w.alive), None)
            if worker is None:
                yield self.env.timeout(10.0)
                continue
            try:
                attempt = worker.spawn(body(), label="faas-attempt")
                result = yield attempt
                return result
            except (Interrupted, NodeCrashed):
                yield self.env.timeout(5.0)

    def execute(self, op) -> Generator:
        result = yield from self._on_worker(lambda: self.bank.execute(op))
        return result

    def audit(self) -> Generator:
        self._audits += 1
        account_ids = [row["id"] for row in self.workload.initial_rows()]
        total = yield from self._on_worker(
            lambda: self.bank.workflows.run(
                "audit", account_ids, workflow_id=f"audit-{self._audits:03d}"
            )
        )
        return total

    def final_state(self) -> Any:
        return self.bank.balances()

    def oracles(self) -> list[Oracle]:
        return [
            ConservationOracle("balance", self.workload.expected_total),
            SnapshotAuditOracle(self.workload.expected_total),
        ]

    def classify(self, exc: Exception) -> str:
        if isinstance(exc, WorkflowAborted):
            return "fail"  # OCC retries exhausted: nothing committed
        return "info"


def bind_engine_to_node(env: Environment, node, engine) -> None:
    """Tie a :class:`TransactionalDataflow` lifecycle to a network node.

    A sentinel process on the node translates node.crash() into
    engine.crash(); the restart hook runs engine.recover() and re-arms
    the sentinel, so FaultPlan/nemesis crash events drive the engine
    through its real checkpoint-restore + replay path.
    """

    def sentinel() -> Generator:
        try:
            yield env.timeout(1e11)
        except Interrupted:
            engine.crash()

    def on_restart(_node) -> None:
        env.process(engine.recover(), label="dataflow-engine.recover")
        node.spawn(sentinel(), label="dataflow-engine.sentinel")

    node.spawn(sentinel(), label="dataflow-engine.sentinel")
    node.on_restart(on_restart)


_SCENARIOS = {
    "microservice": MicroserviceScenario,
    "actor": ActorScenario,
    "dataflow": DataflowScenario,
    "faas": FaasScenario,
}


def build_scenario(name: str, env: Environment, broken: bool = False) -> Scenario:
    try:
        cls = _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime {name!r}; choose from {sorted(_SCENARIOS)}"
        ) from None
    return cls(env, broken=broken)

"""The four runtimes under test, behind one chaos-scenario interface.

Each scenario wires an application (from :mod:`repro.apps`) to a network
whose nodes the nemesis may crash and partition, declares a default
:class:`~repro.chaos.config.ChaosConfig` budget, classifies the
exceptions its operations raise into Jepsen outcomes (``fail`` = the
effect definitely did not happen, ``info`` = unknown), and names the
oracles entitled to judge it.

``broken=True`` selects the intentionally unsound configuration — the
actor bank in ``plain`` mode, whose two independent actor calls per
transfer are atomic per actor but not across them (§4.2's default).  The
chaos harness must find and shrink that bug; it is the end-to-end test
that the detector detects.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.actors import ActorError, CommitUncertain, TransactionFailed
from repro.apps import ActorBank, FaasBank, MicroserviceShop, TxnDataflowBank
from repro.apps.core import AppFailure, AppUncertain
from repro.apps.core.binders import MicroserviceBinder, ShardedDbBinder
from repro.apps.invoicing import invoicing_spec
from repro.apps.ledger import ledger_spec
from repro.chaos.config import ChaosConfig
from repro.cluster import ClusterError
from repro.db import Database, IsolationLevel, ShardedDatabase, TxnStatus
from repro.db.errors import TransactionAborted
from repro.flow import AdmissionController, PRIORITY_LOW, RetryBudget
from repro.chaos.oracles import (
    ConservationOracle,
    Oracle,
    SagaAtomicityOracle,
    SnapshotAuditOracle,
    TransferExactlyOnceOracle,
)
from repro.dataflow import TxnAbort
from repro.faas.workflows import WorkflowAborted
from repro.messaging import RpcError, RpcRejected, RpcRemoteError, RpcTimeout
from repro.messaging.idempotency import IdempotencyStore
from repro.messaging.rpc import RpcClient, RpcServer
from repro.net import Network, NodeCrashed
from repro.replication import (
    FencedOut,
    NoLeader,
    NotLeader,
    ReplicaUnavailable,
    ReplicationConfig,
)
from repro.sim import Environment, Interrupted
from repro.workloads import MarketplaceWorkload, TransferWorkload
from repro.workloads.invoicing import InvoicingWorkload


class Scenario:
    """One runtime under chaos: workload, faults surface, oracles."""

    name = "scenario"
    kind = "transfer"
    op_timeout = 2000.0
    audit_interval: Optional[float] = None
    default_config = ChaosConfig()

    def __init__(self, env: Environment, broken: bool = False) -> None:
        self.env = env
        self.broken = broken
        self.net: Optional[Network] = None

    def setup(self) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def ops(self) -> list:
        raise NotImplementedError

    def execute(self, op) -> Generator:
        raise NotImplementedError

    #: Optional: a generator returning the audit value, or None.
    audit: Optional[Callable[[], Generator]] = None

    def final_state(self) -> Any:
        raise NotImplementedError

    def oracles(self) -> list[Oracle]:
        raise NotImplementedError

    def classify(self, exc: Exception) -> str:
        """Map an operation exception to ``fail`` or ``info``."""
        raise NotImplementedError


class MicroserviceScenario(Scenario):
    """Saga-coordinated checkouts across stock/payment/orders services."""

    name = "microservice"
    kind = "checkout"
    default_config = ChaosConfig(
        crashable=("stock", "payment", "orders"),
        partitionable=("edge-client", "stock", "payment", "orders"),
        loss_rate=(0.03, 0.15),
        duplication_rate=(0.03, 0.15),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = MarketplaceWorkload(
            num_products=6, initial_stock=200, payment_failure_rate=0.1
        )
        mode = "none" if broken else "saga"
        self.shop = MicroserviceShop(
            env, self.workload, mode=mode,
            request_timeout=150.0, compensation_retries=10,
        )
        self.net = self.shop.app.net

    def setup(self) -> Generator:
        return
        yield  # pragma: no cover

    def ops(self) -> list:
        return list(self.workload.operations(self.env.stream("workload"), 18))

    def execute(self, op) -> Generator:
        yield from self.shop.execute(op)
        return True

    def final_state(self) -> Any:
        return self.shop.final_state()

    def oracles(self) -> list[Oracle]:
        return [SagaAtomicityOracle(self.workload, kind=self.kind)]

    def classify(self, exc: Exception) -> str:
        # The saga surface: a compensated (or business-declined) checkout
        # raises RpcRemoteError — the failure is definite.  Anything else
        # (a timeout escaping the uncoordinated mode) is unknown.
        if isinstance(exc, RpcRemoteError):
            return "fail"
        return "info"


class ActorScenario(Scenario):
    """Transfers across virtual actors via Orleans-style 2PC.

    Broken mode drops the coordinator: withdraw and deposit become two
    independent at-most-once actor calls with client retries.
    """

    name = "actor"
    default_config = ChaosConfig(
        crashable=("silo-0", "silo-1", "silo-2"),
        partitionable=(),
        downtime=(30.0, 90.0),
        loss_rate=(0.03, 0.15),
        duplication_rate=(0.03, 0.15),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        mode = "plain" if broken else "transaction"
        self.bank = ActorBank(env, self.workload, mode=mode, num_silos=3)
        self.net = self.bank.runtime.net
        self._ops: dict[str, Any] = {}

    def setup(self) -> Generator:
        yield from self.bank.setup()

    def ops(self) -> list:
        ops = list(self.workload.operations(self.env.stream("workload"), 18))
        self._ops = {op.op_id: op for op in ops}
        return ops

    def execute(self, op) -> Generator:
        yield from self.bank.execute(op)
        return True

    def final_state(self) -> Any:
        return self.bank.balances()

    def oracles(self) -> list[Oracle]:
        initial = {
            row["id"]: row["balance"] for row in self.workload.initial_rows()
        }
        return [
            ConservationOracle("balance", self.workload.expected_total),
            TransferExactlyOnceOracle(initial, self._ops, kind=self.kind),
        ]

    def classify(self, exc: Exception) -> str:
        if isinstance(exc, CommitUncertain):
            return "info"  # the 2PC uncertainty window
        if isinstance(exc, TransactionFailed):
            return "fail"  # aborted before the commit decision
        # Plain-mode surface (ActorError, RpcTimeout): at-most-once calls
        # may have applied without acknowledging.
        return "info"


class DataflowScenario(Scenario):
    """Transfers on the Styx-like transactional dataflow engine.

    The engine is bound to a single simulated node: crashing the node
    loses all volatile engine state, restarting it runs deterministic
    checkpoint-restore + input-log replay.  Only crashes are in budget —
    the engine's internals do not traverse the message network.
    """

    name = "dataflow"
    audit_interval = 70.0
    default_config = ChaosConfig(
        fault_classes=("crash",),
        crashable=("dataflow-engine",),
        episodes=3,
        downtime=(30.0, 90.0),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.bank = TxnDataflowBank(
            env, self.workload, checkpoint_every=3, epoch_interval=5.0
        )
        self.net = Network(env)
        self.node = self.net.add_node("dataflow-engine")
        bind_engine_to_node(env, self.node, self.bank.engine)

    def setup(self) -> Generator:
        self.bank.start()
        yield from self.bank.setup()

    def ops(self) -> list:
        return list(self.workload.operations(self.env.stream("workload"), 18))

    def execute(self, op) -> Generator:
        result = yield from self.bank.execute(op)
        return result

    def audit(self) -> Generator:
        total = yield from self.bank.audit()
        return total

    def final_state(self) -> Any:
        return self.bank.balances()

    def oracles(self) -> list[Oracle]:
        return [
            ConservationOracle("balance", self.workload.expected_total),
            SnapshotAuditOracle(self.workload.expected_total),
        ]

    def classify(self, exc: Exception) -> str:
        if isinstance(exc, TxnAbort):
            return "fail"  # deterministic abort: never installed
        return "info"


class FaasScenario(Scenario):
    """Transfers as Beldi-style OCC workflows on crashable workers.

    Workflow attempts run as processes on worker nodes; a crash kills the
    attempt mid-flight and the supervisor re-runs it on a surviving
    worker **with the same workflow id** — the §4.2 exactly-once recipe
    (OCC commit + result dedup) is what the oracle then audits.
    """

    name = "faas"
    audit_interval = 70.0
    default_config = ChaosConfig(
        fault_classes=("crash",),
        crashable=("worker-0", "worker-1"),
        episodes=3,
        downtime=(30.0, 90.0),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.bank = FaasBank(env, self.workload, mode="workflow")
        self.bank.workflows.register("audit", self._audit_workflow)
        self.net = Network(env)
        self.workers = [self.net.add_node(f"worker-{i}") for i in range(2)]
        self._audits = 0

    @staticmethod
    def _audit_workflow(ctx, account_ids):
        total = 0
        for account in account_ids:
            balance = yield from ctx.read(account, 0)
            total += balance
        return total

    def setup(self) -> Generator:
        yield from self.bank.setup()

    def ops(self) -> list:
        return list(self.workload.operations(self.env.stream("workload"), 18))

    def _on_worker(self, body: Callable[[], Generator]) -> Generator:
        """Run ``body`` on an alive worker, re-running it after crashes.

        Safe only for idempotent bodies (workflow ids dedup re-runs).
        """
        while True:
            worker = next((w for w in self.workers if w.alive), None)
            if worker is None:
                yield self.env.timeout(10.0)
                continue
            try:
                attempt = worker.spawn(body(), label="faas-attempt")
                result = yield attempt
                return result
            except (Interrupted, NodeCrashed):
                yield self.env.timeout(5.0)

    def execute(self, op) -> Generator:
        result = yield from self._on_worker(lambda: self.bank.execute(op))
        return result

    def audit(self) -> Generator:
        self._audits += 1
        account_ids = [row["id"] for row in self.workload.initial_rows()]
        total = yield from self._on_worker(
            lambda: self.bank.workflows.run(
                "audit", account_ids, workflow_id=f"audit-{self._audits:03d}"
            )
        )
        return total

    def final_state(self) -> Any:
        return self.bank.balances()

    def oracles(self) -> list[Oracle]:
        return [
            ConservationOracle("balance", self.workload.expected_total),
            SnapshotAuditOracle(self.workload.expected_total),
        ]

    def classify(self, exc: Exception) -> str:
        if isinstance(exc, WorkflowAborted):
            return "fail"  # OCC retries exhausted: nothing committed
        return "info"


class NodeUnavailable(Exception):
    """The key's owning node is down or unreachable from the client edge."""


class ClusterScenario(Scenario):
    """Transfers on the sharded DB while shards live-migrate between nodes.

    The scenario for ``repro.cluster``: a seeded migration driver keeps
    moving shards between the database's serving nodes (drain → copy →
    flip) while the nemesis crashes those nodes and partitions them from
    the client edge.  Shard state lives on durable storage — a crash
    makes the owner *unavailable* (operations routed to it fail fast),
    never lossy — so the oracles are judging the migration protocol:
    no transfer may be torn by a rebalance racing the faults.

    Broken mode flips ownership without the drain/bar phase: transactions
    still in flight keep writing to the source engine after its rows were
    copied, so their commits land in an engine nobody reads anymore — the
    classic lost-update migration bug the harness must catch.
    """

    name = "cluster"
    default_config = ChaosConfig(
        fault_classes=("crash", "partition"),
        crashable=("bank/node0", "bank/node1", "bank/node2", "bank/node3"),
        partitionable=(
            "bank-client",
            "bank/node0", "bank/node1", "bank/node2", "bank/node3",
        ),
        downtime=(30.0, 90.0),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.db = ShardedDatabase(
            env, num_shards=8, num_nodes=4, name="bank",
            rtt_ms=2.0, drain_timeout_ms=250.0,
        )
        self.db.create_table("accounts", primary_key="id")
        self.net = Network(env)
        self.net.add_node("bank-client")
        for node in self.db.nodes:
            self.net.add_node(node)
        self._ops: dict[str, Any] = {}

    def setup(self) -> Generator:
        self.db.load("accounts", self.workload.initial_rows())
        self.env.process(
            self._migration_driver(), label="cluster.migration-driver"
        )
        return
        yield  # pragma: no cover

    def _migration_driver(self) -> Generator:
        """Live-migrate a random shard toward a random alive node, forever.

        Plays the rebalancer's role with a seeded schedule, so rebalances
        deterministically overlap whatever faults the nemesis injected.
        """
        rng = self.env.stream("cluster-migrations")
        while True:
            yield self.env.timeout(30.0 + rng.random() * 30.0)
            shard = rng.randrange(len(self.db.shards))
            alive = [n for n in self.db.nodes if self.net.node(n).alive]
            if not alive:
                continue
            dest = rng.choice(alive)
            try:
                if self.broken:
                    yield from self._flip_without_drain(shard, dest)
                else:
                    yield from self.db.migrate_shard(shard, dest)
            except ClusterError:
                continue  # raced another migration, same owner, or no drain

    def _flip_without_drain(self, shard: int, dest: str) -> Generator:
        """The intentionally unsound migration: no quiesce, stale snapshot.

        Snapshots the shard, streams the copy while transactions keep
        committing against the source engine, then flips to the snapshot:
        every write that landed during the copy window is silently lost.
        """
        from repro.db.engine import Database

        db = self.db
        db.directory.begin_migration(shard, dest)
        try:
            old_engine = db.shards[shard]
            tables = [args for kind, args in db._schema if kind == "table"]
            snapshot = {name: old_engine.all_rows(name) for name, _pk in tables}
            yield self.env.timeout(25.0)  # the copy window — writes continue
            new_engine = Database(self.env, name=f"{db.name}/shard{shard}")
            for kind, args in db._schema:
                if kind == "table":
                    new_engine.create_table(*args)
                else:
                    new_engine.create_index(*args)
            for name, rows in snapshot.items():
                if rows:
                    new_engine.load(name, rows)
            db.shards[shard] = new_engine
        except BaseException:
            db.directory.abort_migration(shard)
            raise
        db.directory.complete_migration(shard)

    def _check_route(self, key: str) -> None:
        owner = self.db.owner_of(key)
        node = self.net.node(owner)
        if not node.alive or self.net.is_partitioned("bank-client", owner):
            raise NodeUnavailable(owner)

    def ops(self) -> list:
        ops = list(self.workload.operations(self.env.stream("workload"), 18))
        self._ops = {op.op_id: op for op in ops}
        return ops

    def execute(self, op) -> Generator:
        txn = self.db.begin(IsolationLevel.SERIALIZABLE)
        try:
            self._check_route(op.src)
            src = yield from self.db.get(txn, "accounts", op.src)
            self._check_route(op.dst)
            dst = yield from self.db.get(txn, "accounts", op.dst)
            yield from self.db.put(txn, "accounts", op.src,
                                   {**src, "balance": src["balance"] - op.amount})
            yield from self.db.put(txn, "accounts", op.dst,
                                   {**dst, "balance": dst["balance"] + op.amount})
            self._check_route(op.src)
            yield from self.db.commit(txn)
            return True
        finally:
            if txn.status == "active":
                self.db.abort(txn)

    def final_state(self) -> Any:
        return self.db.all_rows("accounts")

    def oracles(self) -> list[Oracle]:
        initial = {
            row["id"]: row["balance"] for row in self.workload.initial_rows()
        }
        return [
            ConservationOracle("balance", self.workload.expected_total),
            TransferExactlyOnceOracle(initial, self._ops, kind=self.kind),
        ]

    def classify(self, exc: Exception) -> str:
        # Aborts are definite (nothing prepared survives an abort), and a
        # route check fails before the commit decision ever went out.
        if isinstance(exc, (TransactionAborted, NodeUnavailable, ClusterError)):
            return "fail"
        return "info"


class ReplicationScenario(Scenario):
    """Transfers on quorum-replicated shards under leader-targeted chaos.

    Two shards, each a factor-3 replica group over three nodes.  The
    nemesis gets the full availability gauntlet: ``kill_leader`` episodes
    crash whichever node *currently* leads a group (resolved at fire
    time, so re-elections move the target), plain crashes take out
    followers too, and partitions split the replica set — including the
    minority-leader case where a deposed leader keeps serving until
    fenced.

    Sound mode commits through the replicated log: quorum
    acknowledgements, epoch-fenced applies, pinned proposals (a deposed
    leader yields a definite ``NotLeader``, never a silent re-route).
    Broken mode (``fencing=False``) is the classic unfenced primary:
    leaders acknowledge after *local* apply without waiting for a
    quorum, and a deposed leader ignores higher terms — so a minority
    leader keeps acking writes that the healed group's log then
    overwrites.  Those acknowledged-then-lost transfers are what the
    exactly-once/conservation oracles must catch.
    """

    name = "replication"
    default_config = ChaosConfig(
        fault_classes=("kill_leader", "crash", "partition"),
        crashable=("bank/node0", "bank/node1", "bank/node2"),
        partitionable=("bank/node0", "bank/node1", "bank/node2"),
        leader_groups=("shard0", "shard1"),
        downtime=(40.0, 100.0),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.db = ShardedDatabase(
            env, num_shards=2, num_nodes=3, name="bank",
            rtt_ms=1.0, drain_timeout_ms=250.0,
            replication=ReplicationConfig(factor=3, fencing=not broken),
        )
        self.db.create_table("accounts", primary_key="id")
        self.net = self.db.repl_net
        self._ops: dict[str, Any] = {}

    def resolve_leader(self, label: str) -> Optional[str]:
        """Map a ``kill_leader`` group label to its current leader node."""
        shard = int(label.removeprefix("shard"))
        return self.db.replica_group(shard).leader_name()

    def setup(self) -> Generator:
        self.db.load("accounts", self.workload.initial_rows())
        return
        yield  # pragma: no cover

    def ops(self) -> list:
        ops = list(self.workload.operations(self.env.stream("workload"), 18))
        self._ops = {op.op_id: op for op in ops}
        return ops

    def execute(self, op) -> Generator:
        txn = self.db.begin(IsolationLevel.SERIALIZABLE)
        try:
            src = yield from self.db.get(txn, "accounts", op.src)
            dst = yield from self.db.get(txn, "accounts", op.dst)
            yield from self.db.put(txn, "accounts", op.src,
                                   {**src, "balance": src["balance"] - op.amount})
            yield from self.db.put(txn, "accounts", op.dst,
                                   {**dst, "balance": dst["balance"] + op.amount})
            yield from self.db.commit(txn)
            return True
        finally:
            # Replicated commits leave status "uncertain"/"aborted" on
            # failure; only a branch that never reached commit is ours to
            # roll back here.
            if txn.status == "active":
                self.db.abort(txn)

    def final_state(self) -> Any:
        return self.db.all_rows("accounts")

    def oracles(self) -> list[Oracle]:
        initial = {
            row["id"]: row["balance"] for row in self.workload.initial_rows()
        }
        return [
            ConservationOracle("balance", self.workload.expected_total),
            TransferExactlyOnceOracle(initial, self._ops, kind=self.kind),
        ]

    def classify(self, exc: Exception) -> str:
        # Definite failures: the engine rolled the branch back
        # (TransactionAborted covers deadlock/conflict), the proposal was
        # refused before reaching any log (NotLeader/NoLeader), or the
        # pinned replica was deposed mid-transaction.  A FencedOut ack,
        # quorum timeout, or any other uncertainty stays unknown — the
        # entry may commit through a later leader.
        if isinstance(
            exc,
            (TransactionAborted, NotLeader, NoLeader,
             ReplicaUnavailable, ClusterError),
        ):
            return "fail"
        return "info"


class OverloadScenario(Scenario):
    """Transfers through a flooded RPC service guarded by ``repro.flow``.

    One stateless service node executes transfers against a durable
    database engine (the engine is *not* bound to the node — crashing the
    service kills in-flight handlers, never committed state, like a pod in
    front of a managed database).  A seeded background flood of
    low-priority read-only queries pushes the service's admission
    controller into shedding while the nemesis crashes and partitions the
    service — overload and partial failure at once, the retry-storm recipe
    of paper §3.

    Sound mode runs the full defense stack: admission control with
    priority classes, an idempotency store consulted *before* admission,
    per-client retry budgets and propagated deadlines.  The oracle
    contract is "no committed work is lost (or duplicated) while
    shedding": sheds on a request's first attempt are definite negatives
    (``fail``), everything uncertain stays ``info``, and the exactly-once
    ledger must balance.

    Broken mode strips the defenses: no admission, no dedup store, and
    eager client-side retries on short timeouts — each timed-out transfer
    is retried blind, so a lost *reply* (or a duplicated request) makes
    the transfer apply twice.  That double-application is the §3.2
    anomaly the harness must detect.
    """

    name = "overload"
    default_config = ChaosConfig(
        fault_classes=("crash", "partition"),
        crashable=("bank-service",),
        partitionable=("load-client", "bank-service"),
        episodes=3,
        downtime=(30.0, 90.0),
        loss_rate=(0.03, 0.1),
        duplication_rate=(0.03, 0.1),
    )

    #: service time per transfer / per background query (virtual ms)
    TRANSFER_MS = 8.0
    QUERY_MS = 6.0

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.db = Database(env, name="overload-db")
        self.db.create_table("accounts", primary_key="id")
        self.net = Network(env)
        self.client_node = self.net.add_node("load-client")
        self.bg_node = self.net.add_node("bg-client")
        self.service_node = self.net.add_node("bank-service")
        self.admission: Optional[AdmissionController] = (
            None if broken
            else AdmissionController(8, name="bank-service.admission")
        )
        dedup = None if broken else IdempotencyStore(clock=lambda: env.now)
        self.server = RpcServer(
            self.net, self.service_node,
            dedup_store=dedup, admission=self.admission,
        )
        self.server.register("transfer", self._transfer)
        self.server.register("report", self._report)
        self.client = RpcClient(self.net, self.client_node)
        self.bg_client = RpcClient(self.net, self.bg_node)
        self.budget = RetryBudget(capacity=8.0, refund=0.2)
        self.queries_sent = 0
        self.queries_failed = 0
        self._ops: dict[str, Any] = {}

    # -- service handlers (run as processes on the crashable node) -------------

    def _transfer(self, payload: tuple) -> Generator:
        src_id, dst_id, amount = payload
        yield self.env.timeout(self.TRANSFER_MS)
        txn = self.db.begin(IsolationLevel.SNAPSHOT)
        try:
            src = yield from self.db.get(txn, "accounts", src_id)
            dst = yield from self.db.get(txn, "accounts", dst_id)
            yield from self.db.put(txn, "accounts", src_id,
                                   {**src, "balance": src["balance"] - amount})
            yield from self.db.put(txn, "accounts", dst_id,
                                   {**dst, "balance": dst["balance"] + amount})
            yield from self.db.commit(txn)
            return True
        finally:
            # A node crash interrupts the handler at any yield; the abort is
            # synchronous, so the engine never leaks locks or half-transfers.
            if txn.status is TxnStatus.ACTIVE:
                self.db.abort(txn)

    def _report(self, account: str) -> Generator:
        yield self.env.timeout(self.QUERY_MS)
        row = self.db.read_latest("accounts", account)
        return row["balance"] if row is not None else 0

    # -- background flood -------------------------------------------------------

    def _flood(self) -> Generator:
        """Open-loop low-priority queries, fast enough to force shedding.

        Demand (~1/ms at 6 ms service time) wants ~6 slots of the
        admission limit of 8; the low-priority watermark caps it at 4, so
        the flood sheds at the door while transfers keep their headroom —
        unless transfers spike too, in which case they shed as well.
        """
        rng = self.env.stream("overload-flood")
        accounts = [row["id"] for row in self.workload.initial_rows()]
        while True:
            yield self.env.timeout(0.6 + 0.8 * rng.random())
            account = accounts[rng.randrange(len(accounts))]
            self.queries_sent += 1
            self.env.process(self._one_query(account), label="overload.query")

    def _one_query(self, account: str) -> Generator:
        try:
            yield from self.bg_client.call(
                "bank-service", "report", account,
                timeout=30.0, retries=0, priority=PRIORITY_LOW,
            )
        except RpcError:
            self.queries_failed += 1

    # -- scenario interface ----------------------------------------------------

    def setup(self) -> Generator:
        self.db.load("accounts", self.workload.initial_rows())
        self.env.process(self._flood(), label="overload.flood")
        return
        yield  # pragma: no cover

    def ops(self) -> list:
        ops = list(self.workload.operations(self.env.stream("workload"), 18))
        self._ops = {op.op_id: op for op in ops}
        return ops

    def execute(self, op) -> Generator:
        payload = (op.src, op.dst, op.amount)
        if self.broken:
            # The unprotected client: short timeout, blind retries, no
            # dedup on the other end — the §3.2 duplicate generator.
            result = yield from self.client.call(
                "bank-service", "transfer", payload,
                timeout=25.0, retries=4, idempotency_key=op.op_id,
            )
            return result
        deadline = self.env.now + 300.0
        attempts = 4
        for attempt in range(attempts):
            if attempt > 0 and not self.budget.try_spend():
                raise RpcTimeout("bank-service", "transfer", attempt)
            try:
                result = yield from self.client.call(
                    "bank-service", "transfer", payload,
                    timeout=45.0, retries=0,
                    idempotency_key=op.op_id, deadline=deadline,
                )
                self.budget.on_success()
                return result
            except RpcRejected:
                if attempt == 0:
                    raise  # nothing was ever sent that could have executed
                # A retry got shed, but an earlier timed-out attempt may
                # have executed (e.g. its reply was lost before the dedup
                # record was consulted) — the outcome is unknown.
                raise RpcTimeout("bank-service", "transfer", attempt + 1)
            except RpcTimeout:
                continue
        raise RpcTimeout("bank-service", "transfer", attempts)

    def final_state(self) -> Any:
        return self.db.all_rows("accounts")

    def oracles(self) -> list[Oracle]:
        initial = {
            row["id"]: row["balance"] for row in self.workload.initial_rows()
        }
        return [
            ConservationOracle("balance", self.workload.expected_total),
            TransferExactlyOnceOracle(initial, self._ops, kind=self.kind),
        ]

    def classify(self, exc: Exception) -> str:
        # First-attempt sheds never executed; a remote error means the
        # handler itself raised (transfer aborted) before any effect —
        # with the dedup store consulted ahead of execution, a duplicate
        # of completed work replays its recorded response instead of
        # raising.  Timeouts (including budget exhaustion) stay unknown.
        if isinstance(exc, (RpcRejected, RpcRemoteError)):
            return "fail"
        return "info"


class LedgerScenario(Scenario):
    """The kernel-defined payments ledger on entity-per-service microservices.

    The first scenario driven entirely through :mod:`repro.apps.core`: the
    app is an :class:`~repro.apps.core.AppSpec` (double-entry postings with
    conservation, double-entry, and causal-audit invariants), the runtime
    is the generic :class:`MicroserviceBinder`, and the oracles are
    *compiled from the spec's invariants* — nothing here is hand-written
    for the scenario.

    Sound mode commits each posting via OCC 2PC across the accounts,
    postings, and audit services.  Broken mode (``mode="none"``) applies
    the buffered writes service-by-service with no coordination: a crash
    or partition mid-sequence moves balances without recording the posting
    (caught by ``double_entry``) or records a posting with no audit entry
    (caught by ``causal_audit``).
    """

    name = "ledger"
    kind = "posting"
    default_config = ChaosConfig(
        crashable=("accounts", "postings", "audit"),
        partitionable=("edge-client", "accounts", "postings", "audit"),
        loss_rate=(0.03, 0.15),
        duplication_rate=(0.03, 0.15),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = TransferWorkload(
            num_accounts=12, initial_balance=100, amount=10, theta=0.5
        )
        self.spec = ledger_spec(self.workload)
        mode = "none" if broken else "2pc"
        self.binder = MicroserviceBinder(
            env, self.spec, mode=mode, request_timeout=150.0
        )
        self.net = self.binder.app.net

    def setup(self) -> Generator:
        yield from self.binder.setup()

    def ops(self) -> list:
        return list(self.workload.operations(self.env.stream("workload"), 18))

    def execute(self, op) -> Generator:
        result = yield from self.binder.execute(op)
        return result

    def final_state(self) -> Any:
        return self.binder.snapshot()

    def oracles(self) -> list[Oracle]:
        return self.binder.oracles()

    def classify(self, exc: Exception) -> str:
        # The binder's vocabulary: AppUncertain is the 2PC decision window.
        # Validation exhaustion (RuntimeError) means every attempt aborted;
        # a remote handler error or first-contact rejection never committed.
        if isinstance(exc, AppUncertain):
            return "info"
        if isinstance(exc, (AppFailure, RuntimeError, RpcRemoteError, RpcRejected)):
            return "fail"
        return "info"


class InvoicingScenario(Scenario):
    """Gap-free invoice numbering on replicated shards under migration.

    The invoicing :class:`~repro.apps.core.AppSpec` runs through the
    generic :class:`ShardedDbBinder` on two quorum-replicated shards
    (factor 3 over four nodes) while a seeded driver keeps live-migrating
    whole replica groups between nodes and the nemesis kills leaders,
    crashes followers, and partitions the replica network.  The
    spec-compiled gap-free oracle judges the result: committed invoices
    must show numbers ``1..k`` with no gap and no duplicate, no matter
    how the allocator's shard moved or failed over mid-run.

    Broken mode keeps the cluster sound and breaks the *application*:
    ``transaction_per_step=True`` honors the handler's unsound step split
    (allocate the number in one transaction, insert the invoice in a
    second), so any failure or uncertainty between the two burns a number
    — the gap the oracle must catch.
    """

    name = "invoicing"
    kind = "invoice"
    default_config = ChaosConfig(
        fault_classes=("kill_leader", "crash", "partition"),
        crashable=(
            "invoicing-app0", "invoicing-app1",
            "invoicing-cluster/node0", "invoicing-cluster/node1",
            "invoicing-cluster/node2", "invoicing-cluster/node3",
        ),
        partitionable=(
            "invoicing-cluster/node0", "invoicing-cluster/node1",
            "invoicing-cluster/node2", "invoicing-cluster/node3",
        ),
        leader_groups=("shard0", "shard1"),
        episodes=5,
        downtime=(40.0, 100.0),
    )

    def __init__(self, env: Environment, broken: bool = False) -> None:
        super().__init__(env, broken)
        self.workload = InvoicingWorkload()
        self.spec = invoicing_spec(self.workload)
        self.binder = ShardedDbBinder(
            env, self.spec,
            num_shards=2,
            transaction_per_step=broken,
            num_nodes=4,
            rtt_ms=1.0,
            drain_timeout_ms=250.0,
            replication=ReplicationConfig(factor=3),
        )
        self.db = self.binder.db
        self.net = self.db.repl_net
        #: operations run as processes on crashable app nodes — a crash
        #: kills the handler between its transactions, which is exactly
        #: the window where the broken step-split burns a number.
        self.app_nodes = [
            self.net.add_node(f"invoicing-app{i}") for i in range(2)
        ]

    def resolve_leader(self, label: str) -> Optional[str]:
        shard = int(label.removeprefix("shard"))
        return self.db.replica_group(shard).leader_name()

    def setup(self) -> Generator:
        self.env.process(
            self._migration_driver(), label="invoicing.migration-driver"
        )
        yield from self.binder.setup()

    def _migration_driver(self) -> Generator:
        """Keep live-migrating replica groups while the nemesis works."""
        rng = self.env.stream("invoicing-migrations")
        while True:
            yield self.env.timeout(40.0 + rng.random() * 40.0)
            shard = rng.randrange(self.db.num_shards)
            alive = [
                n for n in self.db.nodes
                if self.net.node(n) is None or self.net.node(n).alive
            ]
            if len(alive) < self.db.replication.factor:
                continue
            dest = rng.choice(alive)
            try:
                yield from self.db.migrate_shard(shard, dest)
            except ClusterError:
                continue  # raced a fault or another migration; try later

    def ops(self) -> list:
        return list(
            self.workload.operations(self.env.stream("workload"), 18)
        )

    def execute(self, op) -> Generator:
        """Run the op on an alive app node, re-running it after crashes.

        Safe for the sound (atomic, idempotent) handler: a re-run after a
        crash-after-commit reads the existing invoice back.  The broken
        step-split has no such protection — a re-run allocates a fresh
        number and the crashed attempt's allocation is burned.
        """
        crashed = False
        while True:
            node = next((n for n in self.app_nodes if n.alive), None)
            if node is None:
                yield self.env.timeout(10.0)
                continue
            try:
                attempt = node.spawn(
                    self.binder.execute(op), label=f"invoicing:{op.op_id}"
                )
                result = yield attempt
                return result
            except (Interrupted, NodeCrashed):
                crashed = True
                yield self.env.timeout(5.0)
            except Exception as exc:
                if crashed:
                    # A crashed earlier attempt may have committed; this
                    # definite-looking failure is not definite any more.
                    raise AppUncertain(
                        f"{op.op_id}: failed after a crashed attempt"
                    ) from exc
                raise

    def final_state(self) -> Any:
        return self.binder.snapshot()

    def oracles(self) -> list[Oracle]:
        return self.binder.oracles()

    def classify(self, exc: Exception) -> str:
        # The binder retries every definite abort internally; what escapes
        # is either the uncertainty window (info) or exhaustion/routing
        # errors whose attempts all definitely aborted (fail).
        if isinstance(exc, AppUncertain):
            return "info"
        if isinstance(exc, (RuntimeError, ClusterError)):
            return "fail"
        return "info"


def bind_engine_to_node(env: Environment, node, engine) -> None:
    """Tie a :class:`TransactionalDataflow` lifecycle to a network node.

    A sentinel process on the node translates node.crash() into
    engine.crash(); the restart hook runs engine.recover() and re-arms
    the sentinel, so FaultPlan/nemesis crash events drive the engine
    through its real checkpoint-restore + replay path.
    """

    def sentinel() -> Generator:
        try:
            yield env.timeout(1e11)
        except Interrupted:
            engine.crash()

    def on_restart(_node) -> None:
        env.process(engine.recover(), label="dataflow-engine.recover")
        node.spawn(sentinel(), label="dataflow-engine.sentinel")

    node.spawn(sentinel(), label="dataflow-engine.sentinel")
    node.on_restart(on_restart)


_SCENARIOS = {
    "microservice": MicroserviceScenario,
    "actor": ActorScenario,
    "dataflow": DataflowScenario,
    "faas": FaasScenario,
    "cluster": ClusterScenario,
    "overload": OverloadScenario,
    "replication": ReplicationScenario,
    "ledger": LedgerScenario,
    "invoicing": InvoicingScenario,
}


def build_scenario(name: str, env: Environment, broken: bool = False) -> Scenario:
    try:
        cls = _SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown runtime {name!r}; choose from {sorted(_SCENARIOS)}"
        ) from None
    return cls(env, broken=broken)

"""One member of a per-shard replicated log (Raft-style).

Each :class:`Replica` lives on a :class:`repro.net.Node`, owns a local
:class:`repro.db.Database` engine, and speaks three RPCs over
:mod:`repro.messaging.rpc`: ``vote`` (RequestVote), ``append``
(AppendEntries / heartbeats) and ``snapshot`` (InstallSnapshot), plus a
``read`` RPC for networked consistency-level reads.

The durability model matches the rest of the simulator: ``term``,
``voted_for``, the log and ``applied_index`` are *persistent* attributes
(they survive :meth:`Node.crash`), while the engine's volatile state is
wiped and rebuilt from its WAL — which, on a replicated shard, contains
exactly the applied log prefix, because every apply writes and fsyncs
WAL records synchronously.

Fencing (the tentpole safety rule): every term a replica observes is
pushed into the engine as a fencing token (``engine.raise_fence``).
When a committed entry finally applies, the engine compares the entry's
*proposal term* against the highest fence it has seen — a deposed
leader's engine therefore refuses to acknowledge writes proposed under
its old leadership, even though the entry itself (being committed)
still installs.  The ``fencing=False`` configuration disables both the
token check and the quorum wait: the leader acks after a purely local
apply and ignores higher terms — the intentionally broken variant the
chaos oracles must catch losing acknowledged writes.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.db.engine import Database
from repro.messaging.rpc import RpcClient, RpcError, RpcServer
from repro.net import Network, Node
from repro.replication.config import ReplicationConfig
from repro.replication.errors import (
    NotLeader,
    ReplicationUncertain,
)
from repro.replication.log import LogEntry, ReplicatedLog
from repro.sim import Environment, Interrupted, any_of

#: reply hint meaning "my log diverged below my applied prefix — only a
#: full snapshot can repair me" (broken-mode damage or deep compaction)
NEED_SNAPSHOT = -1


class Replica:
    """A single replica: engine + log + role state machine."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        engine: Database,
        config: ReplicationConfig,
        peers: list[str],
        service: str,
        group_label: str = "group",
        on_leader: Optional[Any] = None,
    ) -> None:
        self.env = env
        self.net = net
        self.node = node
        self.engine = engine
        self.config = config
        self.peers = list(peers)  # stable order: election + sync determinism
        self.service = service
        self.group_label = group_label
        self._on_leader_cb = on_leader

        # -- persistent state (survives node crashes) --
        self.term = 0
        self.voted_for: Optional[str] = None
        self.log = ReplicatedLog()
        self.applied_index = 0

        # -- volatile state (rebuilt on restart) --
        self.role = "follower"  # follower | candidate | leader | stopped
        self.commit_index = 0
        self.leader_hint: Optional[str] = None
        self._next: dict[str, int] = {}
        self._match: dict[str, int] = {}
        self._acks: dict[int, Any] = {}
        self._inflight: set[str] = set()
        self._peer_needs_snapshot: set[str] = set()
        self._last_contact = env.now
        self._wake: Optional[Any] = None
        self._nudge_pending = False
        self._needs_repair = False
        self._applied_waiters: list[tuple[int, Any]] = []

        self._rng = env.stream(f"repl:{service}:{node.name}")
        self.server = RpcServer(net, node, service=service)
        self.server.register("vote", self._on_vote)
        self.server.register("append", self._on_append)
        self.server.register("snapshot", self._on_snapshot)
        self.server.register("read", self._on_read)
        self.client = RpcClient(net, node, service=service)
        self.node.on_restart(lambda _node: self._on_restart())
        self._start()

    # -- lifecycle -----------------------------------------------------------

    def _start(self) -> None:
        if not self.node.alive:
            return
        self.node.spawn(
            self._crash_sentinel(), label=f"{self.service}:{self.node.name}.sentinel"
        )
        self.node.spawn(
            self._timer_loop(), label=f"{self.service}:{self.node.name}.timer"
        )

    def _crash_sentinel(self) -> Generator:
        """Mirror the node's fate into the engine and pending acks."""
        try:
            while True:
                yield self.env.timeout(1e12)
        except Interrupted:
            self.engine.crash()
            self.role = "follower"
            self.leader_hint = None
            self._inflight.clear()
            self._wake = None
            acks, self._acks = self._acks, {}
            for index, ack in acks.items():
                ack.try_succeed(
                    ("err", ReplicationUncertain(
                        f"{self.group_label} leader {self.node.name} crashed "
                        f"before log index {index} was acknowledged"
                    ))
                )
            waiters, self._applied_waiters = self._applied_waiters, []
            for _min_index, waiter in waiters:
                waiter.try_succeed(None)

    def _on_restart(self) -> None:
        """Durable state is back; volatile state rebuilds from it."""
        self.engine.recover()
        self.role = "follower"
        self.commit_index = self.applied_index
        self.leader_hint = None
        self._inflight.clear()
        self._peer_needs_snapshot.clear()
        self._nudge_pending = False
        self._needs_repair = False
        self._last_contact = self.env.now
        if self.config.fencing:
            self.engine.raise_fence(self.term)
        self._start()

    def stop(self) -> None:
        """Retire this replica (group migrated away); refuses all traffic."""
        self.role = "stopped"
        acks, self._acks = self._acks, {}
        for index, ack in acks.items():
            ack.try_succeed(
                ("err", ReplicationUncertain(
                    f"{self.group_label} retired before index {index} acked"
                ))
            )

    # -- bootstrap (deterministic initial leadership) ------------------------

    def bootstrap(self, leader: str, term: int = 1, start_index: int = 0) -> None:
        """Install the agreed initial term/leader without an election."""
        self.term = term
        self.voted_for = leader
        if start_index:
            self.log.reset(start_index, 0)
            self.applied_index = start_index
            self.commit_index = start_index
        if self.config.fencing:
            self.engine.raise_fence(term)
        if leader == self.node.name:
            self._become_leader()

    # -- role transitions ----------------------------------------------------

    def _observe_term(self, term: int) -> None:
        if term <= self.term:
            return
        if self.role == "leader" and not self.config.fencing:
            # Broken variant: a deposed leader refuses to learn about the
            # new leadership and keeps acting on its stale term.
            return
        self.term = term
        self.voted_for = None
        if self.role != "stopped":
            self.role = "follower"
        if self.config.fencing:
            self.engine.raise_fence(term)

    def _become_leader(self) -> None:
        self.role = "leader"
        self.leader_hint = self.node.name
        for peer in self.peers:
            self._next[peer] = self.log.last_index + 1
            self._match[peer] = 0
        self._inflight.clear()
        self._peer_needs_snapshot.clear()
        # A no-op entry at term start: once it commits, every earlier-term
        # entry in this log is committed too (Raft's current-term rule).
        self.log.append(self.term, ("noop",))
        if not self.config.fencing:
            self.commit_index = self.log.last_index
            self._apply_committed()
        else:
            self._advance_commit()
        if self._on_leader_cb is not None:
            self._on_leader_cb(self)
        if self.node.alive:
            self.node.spawn(
                self._replicate_loop(self.term),
                label=f"{self.service}:{self.node.name}.lead-t{self.term}",
            )

    # -- elections -----------------------------------------------------------

    def _timer_loop(self) -> Generator:
        lo, hi = self.config.election_timeout
        while self.role != "stopped":
            span = self._rng.uniform(lo, hi)
            armed_at = self.env.now
            yield self.env.timeout(span)
            if self.role == "stopped":
                return
            if self.role == "leader" or not self.node.alive:
                continue
            if self._last_contact > armed_at:
                continue  # heard from a leader while the timer ran
            yield from self._election()

    def force_election(self) -> None:
        """White-box hook: start an election round right now (tests)."""
        if self.node.alive and self.role != "stopped":
            self.node.spawn(
                self._election(),
                label=f"{self.service}:{self.node.name}.forced-election",
            )

    def _election(self) -> Generator:
        self.term += 1
        term = self.term
        self.role = "candidate"
        self.voted_for = self.node.name
        if self.config.fencing:
            self.engine.raise_fence(term)
        quorum = self.config.quorum
        tally = {"granted": 1}
        done = self.env.future(label=f"{self.service}:election-t{term}")
        if tally["granted"] >= quorum:
            done.try_succeed(True)  # factor-1 group: self-vote is a majority
        for peer in self.peers:
            self.node.spawn(
                self._solicit(peer, term, tally, done, quorum),
                label=f"{self.service}:{self.node.name}.vote-req",
            )
        lo, _hi = self.config.election_timeout
        yield any_of(self.env, [done, self.env.timeout(lo)])
        if self.term != term or self.role != "candidate":
            return  # a newer term or a leader's append intervened
        if tally["granted"] >= quorum:
            self._become_leader()

    def _solicit(self, peer: str, term: int, tally: dict, done: Any, quorum: int) -> Generator:
        payload = (term, self.node.name, self.log.last_index, self.log.last_term)
        try:
            reply = yield from self.client.call(
                peer, "vote", payload,
                timeout=self.config.rpc_timeout_ms, retries=0,
            )
        except (RpcError, Interrupted):
            return
        if self.term != term:
            return
        reply_term, granted = reply
        if reply_term > self.term:
            self._observe_term(reply_term)
            done.try_succeed(False)
            return
        if granted:
            tally["granted"] += 1
            if tally["granted"] >= quorum:
                done.try_succeed(True)

    def _on_vote(self, payload: Any) -> Generator:
        term, candidate, last_index, last_term = payload
        if self.role == "stopped":
            return (self.term, False)
        self._observe_term(term)
        granted = False
        if (
            term == self.term
            and self.role != "leader"
            and self.voted_for in (None, candidate)
            and (last_term, last_index) >= (self.log.last_term, self.log.last_index)
        ):
            granted = True
            self.voted_for = candidate
            self._last_contact = self.env.now
        return (self.term, granted)
        yield  # pragma: no cover - generator protocol only

    # -- log replication (leader side) ---------------------------------------

    def _nudge(self) -> None:
        wake = self._wake
        if wake is not None:
            self._wake = None
            wake.try_succeed(None)

    def _nudge_soon(self) -> None:
        """Nudge replication, optionally after the append window.

        With ``append_window_ms > 0`` the first proposal arms a timer and
        later proposals ride along: when it fires, every entry appended in
        the window leaves in one AppendEntries batch (piggybacking into the
        existing ``max_append_batch`` path) instead of one RPC each.  With
        the default ``0.0`` this is exactly ``_nudge()``.
        """
        window = self.config.append_window_ms
        if window <= 0.0:
            self._nudge()
            return
        if self._nudge_pending:
            return
        self._nudge_pending = True
        self.env.schedule(window, self._fire_deferred_nudge)

    def _fire_deferred_nudge(self) -> None:
        self._nudge_pending = False
        self._nudge()

    def _replicate_loop(self, term: int) -> Generator:
        wake = None
        try:
            while (
                self.role == "leader" and self.term == term and self.node.alive
            ):
                for peer in self.peers:
                    if peer not in self._inflight:
                        self._inflight.add(peer)
                        self.node.spawn(
                            self._sync_peer(peer, term),
                            label=f"{self.service}:{self.node.name}.sync:{peer}",
                        )
                wake = self.env.future(label=f"{self.service}:lead-wake")
                self._wake = wake
                yield any_of(
                    self.env, [wake, self.env.timeout(self.config.heartbeat_ms)]
                )
        except Interrupted:
            return
        finally:
            if self._wake is wake:  # don't clobber a successor loop's wake
                self._wake = None

    def _sync_peer(self, peer: str, term: int) -> Generator:
        try:
            while self.role == "leader" and self.term == term:
                if (
                    peer in self._peer_needs_snapshot
                    or self._next[peer] <= self.log.snapshot_index
                ):
                    yield from self._send_snapshot(peer, term)
                    return
                next_index = self._next[peer]
                prev = next_index - 1
                prev_term = self.log.term_at(prev)
                if prev_term is None:
                    self._peer_needs_snapshot.add(peer)
                    continue
                entries = self.log.slice_from(
                    next_index, self.config.max_append_batch
                )
                payload = (
                    term, self.node.name, prev, prev_term,
                    [(e.term, e.index, e.command) for e in entries],
                    self.commit_index,
                )
                try:
                    reply = yield from self.client.call(
                        peer, "append", payload,
                        timeout=self.config.rpc_timeout_ms, retries=0,
                    )
                except RpcError:
                    return  # retried by the next heartbeat round
                reply_term, ok, hint = reply
                if reply_term > self.term:
                    self._observe_term(reply_term)
                    return
                if self.role != "leader" or self.term != term:
                    return
                if ok:
                    matched = entries[-1].index if entries else prev
                    if matched > self._match[peer]:
                        self._match[peer] = matched
                    self._next[peer] = matched + 1
                    self._advance_commit()
                    if self._next[peer] > self.log.last_index:
                        return  # caught up; next heartbeat takes over
                elif hint == NEED_SNAPSHOT:
                    self._peer_needs_snapshot.add(peer)
                elif reply_term < term:
                    return  # a stale (broken) replica refusing the new term
                else:
                    self._next[peer] = max(1, min(hint + 1, next_index - 1))
        except Interrupted:
            return
        finally:
            self._inflight.discard(peer)

    def _advance_commit(self) -> None:
        if self.role != "leader":
            return
        matches = sorted(
            [self.log.last_index] + [self._match[p] for p in self.peers]
        )
        index = matches[len(matches) - self.config.quorum]
        if index <= self.commit_index:
            return
        # Only entries from the current term commit by counting replicas;
        # earlier terms ride along once a current-term entry commits.
        if self.log.term_at(index) != self.term:
            return
        self.commit_index = index
        self._apply_committed()
        self._nudge()  # propagate the new commit index promptly

    def _send_snapshot(self, peer: str, term: int) -> Generator:
        payload = (
            term,
            self.node.name,
            self.applied_index,
            self.log.term_at(self.applied_index),
            self.engine.snapshot_payload(),
            self.commit_index,
        )
        try:
            reply = yield from self.client.call(
                peer, "snapshot", payload,
                timeout=self.config.rpc_timeout_ms
                + self.config.snapshot_install_ms,
                retries=0,
            )
        except RpcError:
            return
        reply_term, ok, installed = reply
        if reply_term > self.term:
            self._observe_term(reply_term)
            return
        if self.role != "leader" or self.term != term:
            return
        if ok:
            self._peer_needs_snapshot.discard(peer)
            if installed > self._match[peer]:
                self._match[peer] = installed
            self._next[peer] = installed + 1
            self._advance_commit()

    # -- log replication (follower side) -------------------------------------

    def _on_append(self, payload: Any) -> Generator:
        term, leader, prev, prev_term, entries, leader_commit = payload
        if self.role == "stopped":
            return (self.term, False, 0)
        self._observe_term(term)
        if term != self.term:
            # Stale leader's append (term < ours), or — in the broken
            # variant — we are a deposed leader refusing the new term.
            return (self.term, False, self.log.last_index)
        if self.role == "candidate":
            self.role = "follower"
        self.leader_hint = leader
        self._last_contact = self.env.now
        if prev < self.log.snapshot_index:
            # Entries at or below the compaction floor are committed and
            # identical everywhere; fast-forward past them.
            drop = self.log.snapshot_index - prev
            entries = entries[drop:]
            prev = self.log.snapshot_index
            prev_term = self.log.snapshot_term
        local_prev_term = self.log.term_at(prev)
        if local_prev_term is None or local_prev_term != prev_term:
            return (self.term, False, min(self.log.last_index, prev - 1))
        appended = 0
        for entry_term, entry_index, command in entries:
            existing = self.log.term_at(entry_index)
            if existing == entry_term:
                continue
            if existing is not None:
                if entry_index <= self.applied_index:
                    # The conflicting suffix was already applied locally —
                    # only possible when a broken leader acked unreplicated
                    # writes.  The log alone cannot repair the engine;
                    # request a full snapshot resync.
                    self._needs_repair = True
                    return (self.term, False, NEED_SNAPSHOT)
                removed = self.log.truncate_from(entry_index)
                self._discard_entries(removed)
            self.log.append_entry(LogEntry(entry_term, entry_index, command))
            appended += 1
        if appended:
            yield self.env.timeout(self.config.log_fsync_ms)
        new_commit = min(leader_commit, self.log.last_index)
        if new_commit > self.commit_index:
            self.commit_index = new_commit
            self._apply_committed()
        return (self.term, True, self.log.last_index)

    def _discard_entries(self, removed: list[LogEntry]) -> None:
        """Entries truncated by a new leader definitely never committed."""
        for entry in removed:
            ack = self._acks.pop(entry.index, None)
            if ack is not None:
                ack.try_succeed(
                    ("err", ReplicationUncertain(
                        f"{self.group_label} log index {entry.index} was "
                        "truncated by a newer leader"
                    ))
                )
            kind = entry.command[0]
            if kind in ("commit", "prepare"):
                self.engine.discard_replicated(entry.command[1])

    def _on_snapshot(self, payload: Any) -> Generator:
        term, leader, last_index, last_term, snapshot, _leader_commit = payload
        if self.role == "stopped":
            return (self.term, False, 0)
        self._observe_term(term)
        if term != self.term:
            return (self.term, False, 0)
        if self.role == "candidate":
            self.role = "follower"
        self.leader_hint = leader
        self._last_contact = self.env.now
        if last_index <= self.applied_index and not self._needs_repair:
            return (self.term, True, self.applied_index)
        yield self.env.timeout(self.config.snapshot_install_ms)
        self.engine.install_snapshot(snapshot)
        self.log.reset(last_index, last_term)
        self.applied_index = last_index
        self.commit_index = last_index
        self._needs_repair = False
        acks, self._acks = self._acks, {}
        for index, ack in acks.items():
            ack.try_succeed(
                ("err", ReplicationUncertain(
                    f"{self.group_label} resynced from snapshot over "
                    f"unacknowledged index {index}"
                ))
            )
        self._notify_applied()
        return (self.term, True, last_index)

    # -- proposing and applying ----------------------------------------------

    def propose(self, command: tuple[Any, ...]) -> Any:
        """Append a command to the log; returns the quorum-ack future.

        The future resolves with ``("ok", index)`` once the entry is
        committed and applied on this replica's engine unfenced, or with
        ``("err", exc)`` — :class:`FencedOut`, truncation, crash.
        Synchronous, so the caller observes the assigned index atomically.
        """
        if self.role != "leader" or not self.node.alive:
            raise NotLeader(self.group_label, self.node.name, self.leader_hint)
        entry = self.log.append(self.term, command)
        ack = self.env.future(
            label=f"{self.service}:ack-{entry.index}"
        )
        self._acks[entry.index] = ack
        if not self.config.fencing:
            # Broken: acknowledge after the purely local apply — no quorum.
            self.commit_index = entry.index
            self._apply_committed()
        else:
            self._advance_commit()  # factor-1 groups commit immediately
        self._nudge_soon()
        return ack

    def _apply_committed(self) -> None:
        fencing = self.config.fencing
        while self.applied_index < self.commit_index:
            index = self.applied_index + 1
            entry = self.log.entry(index)
            command = entry.command
            token = entry.term if fencing else None
            ack = self._acks.pop(index, None)
            kind = command[0]
            if kind == "commit":
                _, gid, writes = command
                self.engine.apply_replicated(
                    "commit", gid, writes, token=token, ack=ack, ack_value=index
                )
            elif kind == "prepare":
                _, gid, writes = command
                self.engine.apply_replicated(
                    "prepare", gid, writes, token=token, ack=ack, ack_value=index
                )
            elif kind == "decide":
                _, gid, decision = command
                self.engine.apply_replicated(
                    "decide", gid, decision=decision,
                    token=token, ack=ack, ack_value=index,
                )
            else:  # noop
                if ack is not None:
                    fenced = token is not None and token < self.engine.fence_token
                    if fenced:
                        ack.try_succeed(("err", NotLeader(
                            self.group_label, self.node.name
                        )))
                    else:
                        ack.try_succeed(("ok", index))
            self.applied_index = index
        self._notify_applied()
        self._maybe_compact()

    def _notify_applied(self) -> None:
        if not self._applied_waiters:
            return
        still_waiting = []
        for min_index, waiter in self._applied_waiters:
            if self.applied_index >= min_index:
                waiter.try_succeed(self.applied_index)
            else:
                still_waiting.append((min_index, waiter))
        self._applied_waiters = still_waiting

    def wait_applied(self, min_index: int) -> Any:
        """Future resolving once ``applied_index >= min_index``."""
        waiter = self.env.future(label=f"{self.service}:applied>={min_index}")
        if self.applied_index >= min_index:
            waiter.try_succeed(self.applied_index)
        else:
            self._applied_waiters.append((min_index, waiter))
        return waiter

    def _maybe_compact(self) -> None:
        if len(self.log.entries) <= self.config.compact_threshold:
            return
        upto = min(
            self.applied_index, self.log.last_index - self.config.compact_keep
        )
        if upto > self.log.snapshot_index:
            self.log.compact(upto)

    # -- reads ---------------------------------------------------------------

    def confirm_leadership(self) -> Generator:
        """Read-index barrier: prove leadership with one quorum round.

        This round trip is the irreducible cost of a linearizable read —
        the latency floor the C16 bench measures ("Distributed
        Transactional Systems Cannot Be Fast").
        """
        if self.role != "leader" or not self.node.alive:
            raise NotLeader(self.group_label, self.node.name, self.leader_hint)
        if not self.peers:
            return
        term = self.term
        quorum = self.config.quorum
        tally = {"acked": 1}
        done = self.env.future(label=f"{self.service}:read-index")
        for peer in self.peers:
            self.node.spawn(
                self._confirm_one(peer, term, tally, done, quorum),
                label=f"{self.service}:{self.node.name}.read-confirm",
            )
        winner = yield any_of(
            self.env,
            [done, self.env.timeout(self.config.rpc_timeout_ms * 2, "timeout")],
        )
        if winner[0] == 1 or self.role != "leader" or self.term != term:
            raise NotLeader(self.group_label, self.node.name, self.leader_hint)

    def _confirm_one(self, peer: str, term: int, tally: dict, done: Any, quorum: int) -> Generator:
        prev = self.log.last_index
        prev_term = self.log.term_at(prev)
        if prev_term is None:
            prev = self.log.snapshot_index
            prev_term = self.log.snapshot_term
        payload = (term, self.node.name, prev, prev_term, [], self.commit_index)
        try:
            reply = yield from self.client.call(
                peer, "append", payload,
                timeout=self.config.rpc_timeout_ms, retries=0,
            )
        except (RpcError, Interrupted):
            return
        reply_term, ok, _hint = reply
        if reply_term > self.term:
            self._observe_term(reply_term)
            return
        if self.term == term and (ok or reply_term == term):
            # Any same-term reply proves the peer still recognizes this
            # leadership (a nack only means its log needs backfill).
            tally["acked"] += 1
            if tally["acked"] >= quorum:
                done.try_succeed(True)

    def staleness_ms(self) -> float:
        """Virtual ms since this replica last heard from a leader."""
        if self.role == "leader":
            return 0.0
        return self.env.now - self._last_contact

    def _on_read(self, payload: Any) -> Generator:
        """Networked read at an explicit consistency level (C16 bench)."""
        table, key, level, min_index = payload
        if level == "leader":
            yield from self.confirm_leadership()
        else:
            if self.staleness_ms() > self.config.max_staleness_ms:
                raise NotLeader(self.group_label, self.node.name, self.leader_hint)
            if min_index and self.applied_index < min_index:
                yield self.wait_applied(min_index)
        return (self.applied_index, self.engine.read_latest(table, key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Replica {self.service}@{self.node.name} {self.role} "
            f"t={self.term} ci={self.commit_index} ai={self.applied_index}>"
        )


__all__ = ["NEED_SNAPSHOT", "Replica"]

"""Error taxonomy for the replication layer.

The split mirrors the chaos history's outcome classes: definite failures
(the client *knows* nothing committed) versus uncertain outcomes (the
proposal may or may not survive — Jepsen ``info``).  ``FencedOut`` lives
in :mod:`repro.db.errors` because the fencing check happens inside the
engine's apply path; it is re-exported here for convenience.
"""

from __future__ import annotations


def __getattr__(name: str):
    # Lazy re-export: importing repro.db.errors eagerly would close an
    # import cycle (repro.db -> sharding -> here -> repro.db).
    if name == "FencedOut":
        from repro.db.errors import FencedOut

        return FencedOut
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ReplicationError(RuntimeError):
    """Base class for replication-layer failures."""


class NotLeader(ReplicationError):
    """The targeted replica is not (or no longer) the group leader.

    Raised *before* a command is appended to any log, so the outcome is a
    definite failure — nothing was proposed, nothing can commit later.
    """

    def __init__(self, group: str, node: str, hint: str | None = None) -> None:
        self.group = group
        self.node = node
        self.hint = hint
        suffix = f" (try {hint})" if hint else ""
        super().__init__(f"{node} is not the leader of {group}{suffix}")


class NoLeader(ReplicationError):
    """No live leader emerged within the discovery window (definite fail)."""

    def __init__(self, group: str) -> None:
        self.group = group
        super().__init__(f"no live leader for replica group {group}")


class ReplicaUnavailable(ReplicationError):
    """The replica a transaction was pinned to crashed or was deposed."""

    def __init__(self, group: str, node: str) -> None:
        self.group = group
        self.node = node
        super().__init__(f"replica {node} of {group} is unavailable")


class ReplicationUncertain(ReplicationError):
    """A proposed command's fate is unknown (it may still commit).

    Everything after ``propose()`` succeeds is uncertain territory: the
    entry sits in at least one log, and a future leader may carry it to
    commitment even if this client never hears back.
    """


class QuorumTimeout(ReplicationUncertain):
    """The quorum acknowledgement did not arrive within the deadline."""

    def __init__(self, group: str, index: int) -> None:
        self.group = group
        self.index = index
        super().__init__(
            f"no quorum ack for {group} log index {index} within deadline"
        )


__all__ = [
    "FencedOut",
    "NoLeader",
    "NotLeader",
    "QuorumTimeout",
    "ReplicaUnavailable",
    "ReplicationError",
    "ReplicationUncertain",
]

"""Tunables for per-shard replicated logs.

All durations are virtual milliseconds.  The defaults follow the usual
Raft guidance — heartbeat interval well below the election timeout span,
randomized timeouts to break split votes — scaled to the simulator's
intra-zone RTTs.

``fencing=False`` is the *intentionally broken* variant the chaos
oracles must catch: the leader acknowledges a write as soon as it is
applied locally (no quorum wait) and a deposed leader ignores higher
terms, so an isolated or about-to-die leader keeps acking writes that a
failover will erase.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReplicationConfig:
    #: replicas per shard (leader + followers); quorum = factor//2 + 1
    factor: int = 3
    #: leader -> follower AppendEntries cadence when idle
    heartbeat_ms: float = 15.0
    #: randomized follower election timeout span (uniform per arming)
    election_timeout: tuple[float, float] = (60.0, 120.0)
    #: per-RPC timeout for vote/append/snapshot rounds
    rpc_timeout_ms: float = 30.0
    #: client-visible deadline for a quorum-acknowledged commit
    commit_timeout_ms: float = 250.0
    #: how long a client waits for a leader to emerge before NoLeader
    leader_wait_ms: float = 200.0
    #: max log entries per AppendEntries batch
    max_append_batch: int = 32
    #: hold a proposal's replication nudge open this long so proposals
    #: arriving within the window share one AppendEntries batch instead of
    #: one RPC each (0.0 = nudge immediately, the exact reference behavior)
    append_window_ms: float = 0.0
    #: compact the log once it holds more than this many entries ...
    compact_threshold: int = 256
    #: ... keeping at least this many trailing entries for cheap catch-up
    compact_keep: int = 32
    #: follower reads refuse service if the leader has been silent longer
    max_staleness_ms: float = 200.0
    #: simulated fsync charge for appending entries to the replicated log
    log_fsync_ms: float = 0.5
    #: simulated charge for installing a full snapshot on a follower
    snapshot_install_ms: float = 2.0
    #: sound mode; False = broken local-ack / ignore-higher-terms variant
    fencing: bool = True

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError("replication factor must be >= 1")
        lo, hi = self.election_timeout
        if not (0 < lo <= hi):
            raise ValueError("election_timeout must be a (lo <= hi) span")
        if self.heartbeat_ms <= 0:
            raise ValueError("heartbeat_ms must be positive")
        if self.compact_keep < 1:
            raise ValueError("compact_keep must be >= 1")

    @property
    def quorum(self) -> int:
        return self.factor // 2 + 1


__all__ = ["ReplicationConfig"]

"""A replica group: one shard's replicated log plus its client surface.

The group wires ``factor`` replicas onto (existing or fresh) network
nodes, bootstraps a deterministic initial leader (replica 0 at term 1 —
no startup election, so seeded runs are reproducible), and exposes the
operations the sharded database and the benchmarks need:

- :meth:`replicate` — propose a command and await the quorum ack;
- :meth:`leader_read` / :meth:`follower_read` — linearizable vs
  bounded-stale reads, the latter honouring read-your-writes via
  :class:`Session` tokens;
- :meth:`wait_leader` / :meth:`leader_replica` — leader discovery;
- :meth:`stop` — retire the group after a migration flips ownership.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.net import Network, Node
from repro.replication.config import ReplicationConfig
from repro.replication.errors import (
    NoLeader,
    NotLeader,
    QuorumTimeout,
    ReplicationUncertain,
)
from repro.replication.replica import Replica
from repro.sim import Environment, any_of


class Session:
    """Read-your-writes token: the highest log index this client observed.

    Pass it to :meth:`ReplicaGroup.follower_read` and the follower will
    wait until its applied prefix covers every write the session saw.
    """

    __slots__ = ("min_index",)

    def __init__(self) -> None:
        self.min_index = 0

    def observe(self, index: Optional[int]) -> None:
        if index is not None and index > self.min_index:
            self.min_index = index


class ReplicaGroup:
    def __init__(
        self,
        env: Environment,
        net: Network,
        name: str,
        config: ReplicationConfig,
        engine_factory: Callable[[str], Any],
        node_names: list[str],
        service: Optional[str] = None,
        on_leader: Optional[Callable[[str], None]] = None,
        start_index: int = 0,
    ) -> None:
        if len(node_names) != config.factor:
            raise ValueError(
                f"group {name} needs {config.factor} nodes, got {len(node_names)}"
            )
        if len(set(node_names)) != len(node_names):
            raise ValueError(f"group {name} members must be distinct nodes")
        self.env = env
        self.net = net
        self.name = name
        self.config = config
        self.service = service or name
        self.node_names = list(node_names)
        self._on_leader_ext = on_leader
        self.replicas: list[Replica] = []
        for node_name in self.node_names:
            node = net.nodes.get(node_name)
            if node is None:
                node = net.add_node(node_name)
            engine = engine_factory(node_name)
            self.replicas.append(
                Replica(
                    env, net, node, engine, config,
                    peers=[n for n in self.node_names if n != node_name],
                    service=self.service,
                    group_label=name,
                    on_leader=self._leader_changed,
                )
            )
        # Deterministic bootstrap: replica 0 leads term 1, everyone has
        # already "voted" for it — no startup election to randomize runs.
        for replica in self.replicas:
            if replica is not self.replicas[0]:
                replica.bootstrap(self.node_names[0], start_index=start_index)
        self.replicas[0].bootstrap(self.node_names[0], start_index=start_index)

    # -- leadership ----------------------------------------------------------

    def _leader_changed(self, replica: Replica) -> None:
        if self._on_leader_ext is not None:
            self._on_leader_ext(replica.node.name)

    def leader_replica(self) -> Optional[Replica]:
        """The live replica currently claiming leadership.

        With a stale (broken-variant) leader still claiming an old term,
        the highest term wins — clients follow the most recent claimant.
        """
        best = None
        for replica in self.replicas:
            if replica.role == "leader" and replica.node.alive:
                if best is None or replica.term > best.term:
                    best = replica
        return best

    def leader_name(self) -> Optional[str]:
        leader = self.leader_replica()
        return leader.node.name if leader is not None else None

    def wait_leader(self, timeout: Optional[float] = None) -> Generator:
        """Poll until a live leader claims the group; NoLeader on timeout."""
        deadline = self.env.now + (
            timeout if timeout is not None else self.config.leader_wait_ms
        )
        while True:
            leader = self.leader_replica()
            if leader is not None:
                return leader
            if self.env.now >= deadline:
                raise NoLeader(self.name)
            yield self.env.timeout(self.config.heartbeat_ms)

    def replica_on(self, node_name: str) -> Replica:
        for replica in self.replicas:
            if replica.node.name == node_name:
                return replica
        raise KeyError(f"{self.name} has no replica on {node_name}")

    def follower_replicas(self) -> list[Replica]:
        leader = self.leader_replica()
        return [
            replica for replica in self.replicas
            if replica is not leader and replica.node.alive
            and replica.role != "stopped"
        ]

    # -- writes --------------------------------------------------------------

    def replicate(
        self,
        command: tuple[Any, ...],
        replica: Optional[Replica] = None,
        timeout: Optional[float] = None,
        retry: bool = False,
    ) -> Generator:
        """Propose ``command`` and await its quorum acknowledgement.

        ``replica`` pins the proposal to one specific leader (the one a
        transaction executed on) — if it was deposed before proposing,
        the caller gets a definite :class:`NotLeader` instead of a
        re-proposal through a different leader's state.  ``retry=True``
        is only safe for idempotent commands (2PC decides): on truncation
        or uncertainty the command is re-proposed through the current
        leader until the deadline.
        """
        deadline = self.env.now + (
            timeout if timeout is not None else self.config.commit_timeout_ms
        )
        pinned = replica is not None
        proposed = False
        while True:
            target = replica
            if target is not None and (
                target.role != "leader" or not target.node.alive
            ):
                if pinned and not retry:
                    raise NotLeader(self.name, target.node.name, target.leader_hint)
                target = None
            if target is None:
                target = self.leader_replica()
            if target is None:
                if self.env.now >= deadline:
                    if proposed:
                        raise ReplicationUncertain(
                            f"{self.name}: proposal outcome unknown (no leader)"
                        )
                    raise NoLeader(self.name)
                yield self.env.timeout(self.config.heartbeat_ms)
                continue
            try:
                ack = target.propose(command)
            except NotLeader:
                if pinned and not retry:
                    raise
                replica = None
                continue
            proposed = True
            replica = target
            remaining = deadline - self.env.now
            if remaining <= 0:
                raise QuorumTimeout(self.name, target.log.last_index)
            winner = yield any_of(
                self.env, [ack, self.env.timeout(remaining, "timeout")]
            )
            if winner[0] == 1:
                raise QuorumTimeout(self.name, target.log.last_index)
            status, value = winner[1]
            if status == "ok":
                return value
            if retry and isinstance(value, ReplicationUncertain):
                replica = None
                if self.env.now >= deadline:
                    raise value
                yield self.env.timeout(self.config.heartbeat_ms)
                continue
            raise value

    # -- reads ---------------------------------------------------------------

    def leader_read(self, table: str, key: Any) -> Generator:
        """Linearizable read: leader state behind a read-index barrier."""
        leader = yield from self.wait_leader()
        yield from leader.confirm_leadership()
        return leader.engine.read_latest(table, key)

    def follower_read(
        self,
        table: str,
        key: Any,
        session: Optional[Session] = None,
        node: Optional[str] = None,
    ) -> Generator:
        """Bounded-stale read from a follower, with read-your-writes.

        Refuses service (:class:`NoLeader`) when every follower has been
        out of contact longer than ``max_staleness_ms``; with a
        ``session``, waits until the follower's applied prefix covers the
        session's highest observed index.
        """
        candidates = (
            [self.replica_on(node)] if node is not None
            else self.follower_replicas()
        )
        min_index = session.min_index if session is not None else 0
        for replica in candidates:
            if not replica.node.alive or replica.role == "stopped":
                continue
            if replica.staleness_ms() > self.config.max_staleness_ms:
                continue
            if replica.applied_index < min_index:
                winner = yield any_of(
                    self.env,
                    [
                        replica.wait_applied(min_index),
                        self.env.timeout(self.config.max_staleness_ms, None),
                    ],
                )
                if winner[1] is None or replica.applied_index < min_index:
                    continue
            return replica.engine.read_latest(table, key)
        raise NoLeader(self.name)

    # -- lifecycle -----------------------------------------------------------

    def quiescent(self) -> bool:
        """Is the log fully applied with no outstanding acknowledgements?"""
        leader = self.leader_replica()
        if leader is None:
            return False
        return (
            leader.applied_index == leader.log.last_index
            and not leader._acks
            and not leader.engine.in_doubt()
        )

    def stop(self) -> None:
        for replica in self.replicas:
            replica.stop()

    def engines(self) -> list[Any]:
        return [replica.engine for replica in self.replicas]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        leader = self.leader_name()
        return f"<ReplicaGroup {self.name} leader={leader} x{self.config.factor}>"


__all__ = ["ReplicaGroup", "Session"]

"""Per-shard replicated logs: quorum commits, elections, fenced failover.

The paper's availability gap (§3.2, ROADMAP item 1): one replica per
shard means "recovery" is replay-from-WAL, never failover.  This package
adds Raft-style replica groups over :mod:`repro.messaging.rpc`:

- :class:`ReplicationConfig` — factor, timeouts, and the ``fencing``
  switch whose ``False`` setting is the intentionally broken
  local-ack variant the chaos oracles must catch;
- :class:`ReplicatedLog` / :class:`LogEntry` — the 1-based log with a
  compaction floor;
- :class:`Replica` — one member: elections, AppendEntries,
  InstallSnapshot, and the engine apply path with fencing tokens;
- :class:`ReplicaGroup` — the per-shard unit :mod:`repro.db.sharding`
  places and migrates; quorum writes, leader reads (read-index
  barrier), bounded-stale follower reads with :class:`Session`
  read-your-writes.

See ``docs/REPLICATION.md`` for the protocol walk-through and how the
C16 bench maps the quorum round trip onto the "Distributed
Transactional Systems Cannot Be Fast" latency floor.
"""

from repro.replication.config import ReplicationConfig
from repro.replication.errors import (
    FencedOut,
    NoLeader,
    NotLeader,
    QuorumTimeout,
    ReplicaUnavailable,
    ReplicationError,
    ReplicationUncertain,
)
from repro.replication.group import ReplicaGroup, Session
from repro.replication.log import LogEntry, ReplicatedLog
from repro.replication.replica import Replica

__all__ = [
    "FencedOut",
    "LogEntry",
    "NoLeader",
    "NotLeader",
    "QuorumTimeout",
    "Replica",
    "ReplicaGroup",
    "ReplicaUnavailable",
    "ReplicatedLog",
    "ReplicationConfig",
    "ReplicationError",
    "ReplicationUncertain",
    "Session",
]

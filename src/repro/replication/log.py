"""The replicated log: 1-based entries above a compaction floor.

``snapshot_index``/``snapshot_term`` record the last entry folded into
the engine snapshot; ``term_at`` answers for the floor itself, returns
``None`` below it (compacted away) and beyond the tip (absent) — the
two cases AppendEntries consistency checks distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class LogEntry:
    term: int
    index: int
    command: tuple[Any, ...]


class ReplicatedLog:
    __slots__ = ("entries", "snapshot_index", "snapshot_term")

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []
        self.snapshot_index = 0
        self.snapshot_term = 0

    @property
    def last_index(self) -> int:
        if self.entries:
            return self.entries[-1].index
        return self.snapshot_index

    @property
    def last_term(self) -> int:
        if self.entries:
            return self.entries[-1].term
        return self.snapshot_term

    def term_at(self, index: int) -> Optional[int]:
        if index == self.snapshot_index:
            return self.snapshot_term
        offset = index - self.snapshot_index - 1
        if 0 <= offset < len(self.entries):
            return self.entries[offset].term
        return None

    def entry(self, index: int) -> LogEntry:
        offset = index - self.snapshot_index - 1
        if not (0 <= offset < len(self.entries)):
            raise IndexError(f"log index {index} not in memory")
        return self.entries[offset]

    def append(self, term: int, command: tuple[Any, ...]) -> LogEntry:
        entry = LogEntry(term, self.last_index + 1, command)
        self.entries.append(entry)
        return entry

    def append_entry(self, entry: LogEntry) -> None:
        if entry.index != self.last_index + 1:
            raise ValueError(
                f"non-contiguous append: {entry.index} after {self.last_index}"
            )
        self.entries.append(entry)

    def slice_from(self, index: int, limit: int) -> list[LogEntry]:
        offset = index - self.snapshot_index - 1
        if offset < 0:
            raise IndexError(f"log index {index} compacted away")
        return self.entries[offset : offset + limit]

    def truncate_from(self, index: int) -> list[LogEntry]:
        """Drop entries at ``index`` and above; return what was removed."""
        offset = index - self.snapshot_index - 1
        if offset < 0:
            raise IndexError(f"cannot truncate below snapshot floor ({index})")
        removed = self.entries[offset:]
        del self.entries[offset:]
        return removed

    def compact(self, upto: int) -> int:
        """Fold entries at-or-below ``upto`` into the snapshot floor."""
        if upto <= self.snapshot_index:
            return 0
        term = self.term_at(upto)
        if term is None:
            raise IndexError(f"cannot compact to absent index {upto}")
        drop = upto - self.snapshot_index
        del self.entries[:drop]
        self.snapshot_index = upto
        self.snapshot_term = term
        return drop

    def reset(self, index: int, term: int) -> None:
        """Replace the whole log with a snapshot floor (InstallSnapshot)."""
        self.entries.clear()
        self.snapshot_index = index
        self.snapshot_term = term


__all__ = ["LogEntry", "ReplicatedLog"]

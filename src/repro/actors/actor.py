"""The actor base class: private state, turns, explicit persistence."""

from __future__ import annotations

from typing import Any, Generator, Optional


class ActorError(Exception):
    """Raised for actor protocol misuse."""


class Actor:
    """Base class for user-defined actors.

    Subclasses define generator methods operating on ``self.state`` (a
    plain dict).  The runtime guarantees turn-based execution: at most one
    method of a given activation runs at a time.

    Durability is *explicit*: mutations live in silo memory until the actor
    calls ``yield from self.save_state()`` (§3.3: "some actor frameworks
    offer state management APIs that allow developers to store memory-
    resident states in durable storage").  A crash between mutation and
    save loses the delta — a behaviour the tests assert rather than hide.
    """

    #: Default state for fresh activations; subclasses override.
    initial_state: dict[str, Any] = {}

    def __init__(self, key: str) -> None:
        self.key = key
        self.state: dict[str, Any] = dict(type(self).initial_state)
        self._runtime = None  # wired by the silo at activation
        self.activation_count = 0

    # -- lifecycle (overridable) ----------------------------------------------

    def on_activate(self) -> Generator:
        """Called after state is loaded, before the first turn."""
        return
        yield  # pragma: no cover

    def on_deactivate(self) -> Generator:
        """Called when the silo evicts the activation."""
        return
        yield  # pragma: no cover

    # -- runtime services -------------------------------------------------------

    def save_state(self) -> Generator:
        """Persist ``self.state`` to the storage provider (a round trip)."""
        if self._runtime is None:
            raise ActorError("actor is not activated")
        yield from self._runtime.provider.save(
            type(self).__name__, self.key, self.state
        )

    def call_actor(self, actor_type: str, key: str, method: str, *args: Any) -> Generator:
        """Invoke another actor (asynchronous message, awaited reply).

        Calling back into an actor that is awaiting this call deadlocks —
        actors here are non-reentrant, like Orleans' default.
        """
        if self._runtime is None:
            raise ActorError("actor is not activated")
        ref = self._runtime.ref(actor_type, key)
        via = self._silo.name if getattr(self, "_silo", None) is not None else None
        result = yield from ref.call(method, *args, via=via)
        return result

    @property
    def env(self):
        if self._runtime is None:
            raise ActorError("actor is not activated")
        return self._runtime.env

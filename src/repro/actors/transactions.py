"""Orleans-Transactions-style ACID operations across actors.

The §4.2 facility: a transaction spanning several actors acquires each
actor's transaction lock, executes the requested methods against *tentative*
copies of their state, durably prepares each tentative version in the
storage provider, then commits in a second phase — 2PC with the actors as
participants.

The performance penalty the paper cites falls out of the mechanics: per
participating actor the transaction pays an exclusive lock (blocking other
transactions on that actor), one provider round trip at prepare and another
at commit, and two extra coordinator messages — versus a plain actor call's
single message and zero mandatory provider trips.  Benchmark C3 measures
the resulting factor.

Locks are acquired in sorted actor order, so transactions cannot deadlock
(they may still block).  A lock wait beyond ``lock_timeout`` aborts the
transaction, as Orleans' lock-timeout policy does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.actors.runtime import ActorRuntime
from repro.sim import Environment, Lock, any_of


class TransactionFailed(Exception):
    """The actor transaction aborted (lock timeout or execution error)."""


class CommitUncertain(TransactionFailed):
    """The commit decision was made but could not reach every participant.

    Some participants may have installed the prepared state, others not —
    the classic 2PC uncertainty window.  Chaos histories record such ops
    as ``info`` (outcome unknown) rather than ``fail``.
    """


@dataclass(frozen=True)
class TxnOp:
    """One (actor, method, args) participant operation."""

    actor_type: str
    key: str
    method: str
    args: tuple


@dataclass
class ActorTxnStats:
    committed: int = 0
    aborted: int = 0
    lock_timeouts: int = 0
    commit_uncertain: int = 0


class TxnSession:
    """A dynamic transaction's participant surface (see ``execute_dynamic``).

    Each :meth:`call` dispatches one method against the target actor's
    tentative state (the same ``txn_execute`` participant protocol the
    static path uses) and records the op for the prepare/commit phases.
    Only actors declared in the transaction's ident set may be called —
    their locks are held; touching anything else would be unserialized.
    """

    def __init__(self, coordinator: "ActorTransactionCoordinator", txn_id: int,
                 idents: list[tuple[str, str]]) -> None:
        self._coordinator = coordinator
        self.txn_id = txn_id
        self._declared = frozenset(idents)
        self.ops: list[TxnOp] = []
        self._tentative: dict[tuple[str, str], dict] = {}

    def call(self, actor_type: str, key: str, method: str, args: tuple = ()) -> Generator:
        ident = (actor_type, key)
        if ident not in self._declared:
            raise TransactionFailed(
                f"txn {self.txn_id}: {ident} not in the declared actor set"
            )
        result = yield from self._coordinator.runtime._dispatch(
            actor_type, key, "txn_execute",
            ({"method": method, "args": list(args),
              "txn_id": self.txn_id, "op_index": len(self.ops)},),
            timeout=50.0, retries=1,
        )
        self.ops.append(TxnOp(actor_type, key, method, tuple(args)))
        self._tentative[ident] = result["tentative_state"]
        return result["result"]

    def prepare(self) -> Generator:
        """Durably prepare every touched actor's tentative version."""
        for (actor_type, key), state in self._tentative.items():
            yield from self._coordinator.runtime.provider.save(
                actor_type, f"{key}#prepare-{self.txn_id}", state
            )


class ActorTransactionCoordinator:
    """Coordinates ACID multi-actor operations on an :class:`ActorRuntime`."""

    def __init__(
        self,
        runtime: ActorRuntime,
        lock_timeout: float = 100.0,
        commit_attempts: int = 8,
    ) -> None:
        self.runtime = runtime
        self.env: Environment = runtime.env
        self.lock_timeout = lock_timeout
        self.commit_attempts = commit_attempts
        self._locks: dict[tuple[str, str], Lock] = {}
        self.stats = ActorTxnStats()

    def _lock_for(self, actor_type: str, key: str) -> Lock:
        ident = (actor_type, key)
        if ident not in self._locks:
            self._locks[ident] = Lock(self.env, label=f"txn-lock:{ident}")
        return self._locks[ident]

    def execute(self, ops: list[tuple[str, str, str, tuple]]) -> Generator:
        """Run ``[(actor_type, key, method, args), ...]`` atomically.

        Returns the list of per-op results in input order.  Raises
        :class:`TransactionFailed` on lock timeout or any method error;
        in that case no actor's durable state changed.
        """
        txn_id = self.env.next_id("actor-txn")
        ops = [TxnOp(t, k, m, tuple(a)) for t, k, m, a in ops]
        # Ordered acquisition prevents deadlock among transactions.
        idents = sorted({(op.actor_type, op.key) for op in ops})
        held: list[Lock] = []
        try:
            yield from self._acquire(txn_id, idents, held)
            results = yield from self._execute_and_prepare(txn_id, ops)
            try:
                yield from self._commit(txn_id, ops)
            except Exception as exc:
                raise CommitUncertain(
                    f"txn {txn_id}: commit decision undeliverable: {exc!r}"
                ) from exc
            self.stats.committed += 1
            return results
        except CommitUncertain:
            self.stats.commit_uncertain += 1
            raise
        except TransactionFailed:
            self.stats.aborted += 1
            raise
        except Exception as exc:  # noqa: BLE001 - any failure aborts
            self.stats.aborted += 1
            raise TransactionFailed(f"txn {txn_id}: {exc!r}") from exc
        finally:
            for lock in held:
                lock.release()

    def execute_dynamic(self, idents: list[tuple[str, str]], driver) -> Generator:
        """Run a *driver* generator atomically over a declared actor set.

        Where :meth:`execute` takes a static op list, this takes the set of
        ``(actor_type, key)`` participants up front (the declared-key
        discipline) plus ``driver(session)`` — a generator that interleaves
        arbitrary logic with :meth:`TxnSession.call` participant operations,
        so a stored procedure can *read* several actors before deciding what
        to write.  Locks on every declared ident are held throughout, so the
        interleaving is serializable; prepare and commit then follow the
        same two phases (and the same failure taxonomy) as :meth:`execute`.
        """
        txn_id = self.env.next_id("actor-txn")
        idents = sorted(set(idents))
        held: list[Lock] = []
        try:
            yield from self._acquire(txn_id, idents, held)
            session = TxnSession(self, txn_id, idents)
            result = yield from driver(session)
            yield from session.prepare()
            try:
                yield from self._commit(txn_id, session.ops)
            except Exception as exc:
                raise CommitUncertain(
                    f"txn {txn_id}: commit decision undeliverable: {exc!r}"
                ) from exc
            self.stats.committed += 1
            return result
        except CommitUncertain:
            self.stats.commit_uncertain += 1
            raise
        except TransactionFailed:
            self.stats.aborted += 1
            raise
        except Exception as exc:  # noqa: BLE001 - any failure aborts
            self.stats.aborted += 1
            raise TransactionFailed(f"txn {txn_id}: {exc!r}") from exc
        finally:
            for lock in held:
                lock.release()

    # -- phases --------------------------------------------------------------

    def _acquire(self, txn_id: int, idents: list[tuple[str, str]],
                 held: list[Lock]) -> Generator:
        """Acquire every ident's transaction lock (sorted, so no deadlock)."""
        for ident in idents:
            lock = self._lock_for(*ident)
            acquired = lock.acquire()
            winner = yield any_of(
                self.env, [acquired, self.env.timeout(self.lock_timeout, "timeout")]
            )
            if winner[0] == 1:
                # Timed out; if the grant races in later, give it back.
                acquired.add_done_callback(lambda _f, l=lock: l.release())
                self.stats.lock_timeouts += 1
                raise TransactionFailed(f"txn {txn_id}: lock timeout on {ident}")
            held.append(lock)

    def _execute_and_prepare(self, txn_id: int, ops: list[TxnOp]) -> Generator:
        """Execute each op against tentative state; durably prepare it."""
        results = []
        tentative: dict[tuple[str, str], dict] = {}
        for op_index, op in enumerate(ops):
            result = yield from self.runtime._dispatch(
                op.actor_type, op.key, "txn_execute",
                ({"method": op.method, "args": list(op.args),
                  "txn_id": txn_id, "op_index": op_index},),
                timeout=50.0, retries=1,
            )
            results.append(result["result"])
            tentative[(op.actor_type, op.key)] = result["tentative_state"]
        # Prepare: persist each tentative version (one provider trip each).
        # The record doubles as the commit-phase recovery path: a
        # re-activated participant that lost its volatile tentative copy
        # reloads it from here (see ``txn_commit``).
        for (actor_type, key), state in tentative.items():
            yield from self.runtime.provider.save(
                actor_type, f"{key}#prepare-{txn_id}", state
            )
        return results

    def _commit(self, txn_id: int, ops: list[TxnOp]) -> Generator:
        """Second phase: install tentative state, persist final version.

        Once every participant prepared, the decision is commit; it must
        reach each participant even across silo crashes, so the dispatch
        retries hard (the durable prepare record makes redelivery safe).
        """
        from repro.actors.runtime import ActorError
        from repro.messaging.rpc import RpcTimeout

        for ident in sorted({(op.actor_type, op.key) for op in ops}):
            actor_type, key = ident
            attempts = 0
            while True:
                try:
                    yield from self.runtime._dispatch(
                        actor_type, key, "txn_commit",
                        ({"txn_id": txn_id},), timeout=50.0, retries=2,
                    )
                    break
                except (RpcTimeout, ActorError):
                    attempts += 1
                    if attempts >= self.commit_attempts:
                        raise
                    yield self.env.timeout(self.lock_timeout / 4)


def transactional(cls):
    """Class decorator adding the transaction participant protocol.

    Adds ``txn_execute`` (run a method against a tentative copy of state)
    and ``txn_commit`` (install the tentative copy and persist it) to an
    :class:`~repro.actors.actor.Actor` subclass.  Mirrors Orleans' need to
    port actors onto transactional state facets (§4.2: "necessitating
    porting the actor attributes to opaque objects").
    """

    def txn_execute(self, request: dict) -> Generator:
        txn_id = request.get("txn_id")
        op_index = request.get("op_index", 0)
        # A different txn starts from committed state: stale tentative
        # state from an aborted predecessor must not leak forward.
        if getattr(self, "_pending_txn_id", None) != txn_id:
            self._pending_txn_id = txn_id
            self._pending_txn_state = None
            self._txn_op_results = {}
        # Duplicate delivery (network duplication, client retry whose
        # original did land): return the recorded result, don't re-apply.
        if op_index in self._txn_op_results:
            return self._txn_op_results[op_index]
        original = self.state
        working = dict(self._pending_txn_state) if self._pending_txn_state else dict(original)
        self.state = working
        try:
            method = getattr(self, request["method"])
            result = yield from method(*request["args"])
        finally:
            self.state = original
        self._pending_txn_state = working
        response = {"result": result, "tentative_state": dict(working)}
        self._txn_op_results[op_index] = response
        return response

    def txn_commit(self, request: Optional[dict] = None) -> Generator:
        txn_id = (request or {}).get("txn_id")
        pending = getattr(self, "_pending_txn_state", None)
        if pending is not None and getattr(self, "_pending_txn_id", None) == txn_id:
            self.state = pending
            self._pending_txn_state = None
            yield from self.save_state()
            if txn_id is not None:
                yield from self._runtime.provider.delete(
                    type(self).__name__, f"{self.key}#prepare-{txn_id}"
                )
            return
        # Volatile tentative copy is gone (silo crash re-activated us) or
        # this is a redelivered commit: recover the durably prepared
        # version.  The coordinator only sends commit after every
        # participant prepared, so installing it is safe while the
        # coordinator still holds the transaction locks; the record is
        # deleted afterwards, so a late duplicate commit is a no-op.
        if txn_id is not None:
            prepared = yield from self._runtime.provider.load(
                type(self).__name__, f"{self.key}#prepare-{txn_id}"
            )
            if prepared is not None:
                self.state = dict(prepared)
                self._pending_txn_state = None
                yield from self.save_state()
                yield from self._runtime.provider.delete(
                    type(self).__name__, f"{self.key}#prepare-{txn_id}"
                )

    cls.txn_execute = txn_execute
    cls.txn_commit = txn_commit
    return cls

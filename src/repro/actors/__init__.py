"""A virtual actor runtime (Orleans / Dapr stand-in).

Implements the §3.1 virtual-actor model: location transparency (callers
address actors by type + key, never by placement), on-demand activation,
turn-based concurrency (one message at a time per actor), and failure
transparency (a crashed silo's actors reactivate elsewhere, §4.1).

State management follows §3.3: actor state is private, memory-resident,
and explicitly checkpointed to an external storage provider via
``save_state`` — the freshness of a reactivated actor is bounded by its
last save, which is exactly the actor-consistency caveat of §4.1/§4.2.

:mod:`repro.actors.transactions` adds the Orleans-Transactions-style ACID
facility whose "significant performance penalty" (§4.2) benchmark C3
quantifies.
"""

from repro.actors.actor import Actor, ActorError
from repro.actors.runtime import ActorRef, ActorRuntime, StateStorageProvider
from repro.actors.transactions import (
    ActorTransactionCoordinator,
    CommitUncertain,
    TransactionFailed,
    TxnSession,
    transactional,
)

__all__ = [
    "Actor",
    "ActorError",
    "ActorRef",
    "ActorRuntime",
    "ActorTransactionCoordinator",
    "CommitUncertain",
    "StateStorageProvider",
    "TransactionFailed",
    "TxnSession",
    "transactional",
]

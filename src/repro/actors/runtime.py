"""The actor runtime: silos, directory, activation, migration.

Placement uses rendezvous hashing over the *alive* silos, giving both
location transparency and automatic migration: when a silo dies, each of
its actors deterministically maps to a surviving silo and is re-activated
there on its next call, state loaded from the storage provider (§4.1
"failure transparency by migrating actors across nodes").

Message delivery is at-most-once by default (§4.2: "with at-most-once
messaging delivery guarantees by default, weak consistency ... is a
popular design choice"); per-call retries opt into at-least-once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Type

from repro.actors.actor import Actor, ActorError
from repro.cluster import PlacementDirectory, rendezvous_owner
from repro.messaging.rpc import RpcClient, RpcServer, RpcTimeout
from repro.net.latency import Latency, Sampler
from repro.net.network import Network
from repro.sim import Environment, Lock


class StateStorageProvider:
    """External durable actor-state store (a DB table, §3.3/§4.1).

    Latency-charged on both load and save; contents survive silo crashes
    by construction.
    """

    def __init__(self, env: Environment, latency: Optional[Sampler] = None) -> None:
        self.env = env
        self._latency = latency or Latency.intra_zone()
        self._rng = env.stream("actor-state-store")
        self._data: dict[tuple[str, str], dict] = {}
        self.loads = 0
        self.saves = 0

    def save(self, actor_type: str, key: str, state: dict) -> Generator:
        yield self.env.timeout(self._latency(self._rng))
        self._data[(actor_type, key)] = dict(state)
        self.saves += 1

    def load(self, actor_type: str, key: str) -> Generator:
        yield self.env.timeout(self._latency(self._rng))
        self.loads += 1
        state = self._data.get((actor_type, key))
        return dict(state) if state is not None else None

    def delete(self, actor_type: str, key: str) -> Generator:
        """Remove a record (e.g. a consumed transaction prepare record)."""
        yield self.env.timeout(self._latency(self._rng))
        self._data.pop((actor_type, key), None)

    def peek(self, actor_type: str, key: str) -> Optional[dict]:
        """Zero-latency read for tests and invariant checks."""
        state = self._data.get((actor_type, key))
        return dict(state) if state is not None else None


@dataclass
class ActorRuntimeStats:
    activations: int = 0
    migrations: int = 0
    calls: int = 0
    dropped_calls: int = 0
    idle_deactivations: int = 0
    duplicates_dropped: int = 0


class _Silo:
    """One cluster member hosting activations."""

    def __init__(self, runtime: "ActorRuntime", name: str) -> None:
        self.runtime = runtime
        self.name = name
        self.node = runtime.net.add_node(name)
        self.activations: dict[tuple[str, str], Actor] = {}
        self.turn_locks: dict[tuple[str, str], Lock] = {}
        self.last_used: dict[tuple[str, str], float] = {}
        self.rpc = RpcServer(runtime.net, self.node, service="actors")
        self.rpc.register("invoke", self._invoke)
        self.node.on_restart(lambda _node: self._on_restart())
        if runtime.idle_timeout is not None:
            self.node.spawn(self._collector(), label=f"{name}.collector")

    def _on_restart(self) -> None:
        # Memory is gone: fresh activation tables; RPC re-registered by its
        # own restart hook, so only our maps need resetting.
        self.activations = {}
        self.turn_locks = {}
        self.last_used = {}
        if self.runtime.idle_timeout is not None:
            self.node.spawn(self._collector(), label=f"{self.name}.collector")

    def _collector(self) -> Generator:
        """Deactivate activations idle beyond the runtime's idle_timeout.

        Orleans' activation garbage collection: memory is reclaimed, and
        the next call transparently re-activates from the state provider.
        """
        timeout = self.runtime.idle_timeout
        while True:
            yield self.runtime.env.timeout(timeout / 2)
            now = self.runtime.env.now
            for ident, used_at in list(self.last_used.items()):
                lock = self.turn_locks.get(ident)
                if (now - used_at >= timeout and ident in self.activations
                        and (lock is None or not lock.locked)):
                    yield from self.deactivate(*ident)
                    self.last_used.pop(ident, None)
                    self.runtime.stats.idle_deactivations += 1

    def _invoke(self, payload: dict) -> Generator:
        actor_type = payload["actor_type"]
        key = payload["key"]
        ident = (actor_type, key)
        lock = self.turn_locks.get(ident)
        if lock is None:
            lock = Lock(self.runtime.env, label=f"turn:{ident}")
            self.turn_locks[ident] = lock
        yield lock.acquire()  # turn-based concurrency (covers activation too)
        try:
            actor = self.activations.get(ident)
            if actor is not None and self.runtime.directory.last_host(ident) != self.name:
                # The directory says another silo activated this actor after
                # us — placement moved away (we were presumed dead) and has
                # now moved back.  Our cached activation missed every write
                # the other activation committed, so serving from it would
                # resurrect stale state.  Kill the duplicate without the
                # graceful on_deactivate (which may persist the stale state)
                # and re-activate from the provider.
                self.activations.pop(ident, None)
                self.runtime.stats.duplicates_dropped += 1
                actor = None
            if actor is None:
                actor = yield from self._activate(actor_type, key)
            self.last_used[ident] = self.runtime.env.now
            method = getattr(actor, payload["method"])
            result = yield from method(*payload["args"])
            return result
        finally:
            self.last_used[ident] = self.runtime.env.now
            lock.release()

    def _activate(self, actor_type: str, key: str) -> Generator:
        cls = self.runtime.actor_class(actor_type)
        actor = cls(key)
        actor._runtime = self.runtime
        actor._silo = self
        saved = yield from self.runtime.provider.load(actor_type, key)
        if saved is not None:
            actor.state = saved
        ident = (actor_type, key)
        previous_host = self.runtime.directory.record_activation(ident, self.name)
        if previous_host is not None and previous_host != self.name:
            self.runtime.stats.migrations += 1
        self.activations[ident] = actor
        self.runtime.stats.activations += 1
        actor.activation_count += 1
        yield from actor.on_activate()
        return actor

    def deactivate(self, actor_type: str, key: str) -> Generator:
        ident = (actor_type, key)
        actor = self.activations.pop(ident, None)
        self.turn_locks.pop(ident, None)
        if actor is not None:
            yield from actor.on_deactivate()


class ActorRef:
    """Location-transparent handle to one actor."""

    def __init__(self, runtime: "ActorRuntime", actor_type: str, key: str) -> None:
        self.runtime = runtime
        self.actor_type = actor_type
        self.key = key

    def call(
        self,
        method: str,
        *args: Any,
        timeout: float = 30.0,
        retries: int = 0,
        via: Optional[str] = None,
    ) -> Generator:
        """Invoke a method; ``retries=0`` is Orleans-default at-most-once.

        ``via`` names the silo originating the call (set automatically for
        actor-to-actor calls); external callers go through the client edge.
        """
        result = yield from self.runtime._dispatch(
            self.actor_type, self.key, method, args, timeout, retries, via=via
        )
        return result

    def __repr__(self) -> str:
        return f"<ActorRef {self.actor_type}/{self.key}>"


class ActorRuntime:
    """The cluster: silos + directory + client edge."""

    def __init__(
        self,
        env: Environment,
        num_silos: int = 3,
        provider: Optional[StateStorageProvider] = None,
        network_latency: Optional[Sampler] = None,
        idle_timeout: Optional[float] = None,
    ) -> None:
        if num_silos <= 0:
            raise ValueError("num_silos must be positive")
        self.env = env
        self.idle_timeout = idle_timeout
        self.net = Network(env, default_latency=network_latency or Latency.intra_zone())
        self.provider = provider or StateStorageProvider(env)
        self._classes: dict[str, Type[Actor]] = {}
        self.silos = [_Silo(self, f"silo-{i}") for i in range(num_silos)]
        #: the cluster-wide activation registry (which silo last activated
        #: each actor) — the same PlacementDirectory that backs shard
        #: ownership in the storage and dataflow layers.
        self.directory = PlacementDirectory(env)
        client_node = self.net.add_node("actor-client")
        self._client_rpc = RpcClient(self.net, client_node, service="actors")
        self._silo_rpc: dict[str, RpcClient] = {
            silo.name: RpcClient(self.net, silo.node, service="actors")
            for silo in self.silos
        }
        self._reminders: dict[str, bool] = {}  # durable reminder table
        self.stats = ActorRuntimeStats()

    # -- registration / addressing ---------------------------------------------

    def register(self, cls: Type[Actor]) -> None:
        """Make an actor class instantiable by name."""
        self._classes[cls.__name__] = cls

    def actor_class(self, name: str) -> Type[Actor]:
        try:
            return self._classes[name]
        except KeyError:
            raise ActorError(f"actor type {name!r} is not registered") from None

    def ref(self, actor_type: str, key: str) -> ActorRef:
        if actor_type not in self._classes:
            raise ActorError(f"actor type {actor_type!r} is not registered")
        return ActorRef(self, actor_type, key)

    # -- placement -----------------------------------------------------------------

    def place(self, actor_type: str, key: str) -> _Silo:
        """Rendezvous-hash the actor onto the alive silos (repro.cluster)."""
        alive = {silo.name: silo for silo in self.silos if silo.node.alive}
        if not alive:
            raise ActorError("no silo is alive")
        owner = rendezvous_owner(list(alive), f"{actor_type}|{key}")
        return alive[owner]

    # -- dispatch ---------------------------------------------------------------------

    def _dispatch(
        self,
        actor_type: str,
        key: str,
        method: str,
        args: tuple,
        timeout: float,
        retries: int,
        via: Optional[str] = None,
    ) -> Generator:
        self.stats.calls += 1
        rpc = self._silo_rpc.get(via, self._client_rpc) if via else self._client_rpc
        payload = {
            "actor_type": actor_type,
            "key": key,
            "method": method,
            "args": list(args),
        }
        attempts = 0
        while True:
            silo = self.place(actor_type, key)
            try:
                result = yield from rpc.call(
                    silo.node.name, "invoke", payload,
                    timeout=timeout, retries=0,
                )
                return result
            except RpcTimeout:
                attempts += 1
                if attempts > retries:
                    self.stats.dropped_calls += 1
                    raise
                # Re-resolve placement: the silo may have died; the actor
                # will be re-activated elsewhere (failure transparency).

    # -- reminders -------------------------------------------------------------------

    def register_reminder(
        self,
        actor_type: str,
        key: str,
        method: str,
        period: float,
        args: tuple = (),
    ) -> str:
        """A durable periodic callback (Orleans *reminders*).

        Unlike an in-memory timer, the reminder lives in the runtime's
        durable reminder table: it keeps firing after the hosting silo
        crashes — the call simply re-activates the actor wherever
        placement decides.  Returns an id for :meth:`cancel_reminder`.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        reminder_id = f"reminder-{actor_type}-{key}-{method}-{len(self._reminders)}"
        self._reminders[reminder_id] = True
        self.env.process(
            self._reminder_loop(reminder_id, actor_type, key, method, period, args),
            label=reminder_id,
        )
        return reminder_id

    def cancel_reminder(self, reminder_id: str) -> bool:
        """Stop a reminder; returns whether it existed."""
        if reminder_id in self._reminders:
            self._reminders[reminder_id] = False
            return True
        return False

    def _reminder_loop(
        self, reminder_id: str, actor_type: str, key: str, method: str,
        period: float, args: tuple,
    ) -> Generator:
        from repro.messaging.rpc import RpcTimeout

        while self._reminders.get(reminder_id):
            yield self.env.timeout(period)
            if not self._reminders.get(reminder_id):
                return
            try:
                yield from self.ref(actor_type, key).call(
                    method, *args, retries=2
                )
            except (RpcTimeout, ActorError):
                continue  # the tick is skipped; the reminder itself survives

    # -- operations ----------------------------------------------------------------------

    def crash_silo(self, index: int) -> None:
        self.silos[index].node.crash()
        self.silos[index].activations = {}
        self.silos[index].turn_locks = {}

    def restart_silo(self, index: int) -> None:
        self.silos[index].node.restart()

    def host_of(self, actor_type: str, key: str) -> Optional[str]:
        """The silo that most recently activated this actor (tests)."""
        return self.directory.last_host((actor_type, key))

"""Application evolution: versioned event schemas and upcasting.

Paper §4.3: "in a distributed environment, this includes ... changes in
the data and event schema.  Surprisingly, support for application
evolution in cloud applications is limited, and upgrades are often handled
via ad-hoc approaches."

This module is the non-ad-hoc approach: a schema registry with explicit
versions and *upcasters* (pure functions lifting an event from version N
to N+1).  During a rolling upgrade old events sit in broker topics and
databases; an upgraded consumer reads any historical version by running
the upcaster chain.  Compatibility is checkable before deployment, not
discovered in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

Upcaster = Callable[[dict], dict]


class SchemaError(Exception):
    """Validation or registration failure."""


class IncompatibleEvent(SchemaError):
    """An event cannot be brought to the requested version."""


@dataclass(frozen=True)
class EventSchema:
    """One version of one event type."""

    name: str
    version: int
    required: frozenset[str]
    optional: frozenset[str] = frozenset()

    def validate(self, payload: dict) -> None:
        missing = self.required - payload.keys()
        if missing:
            raise SchemaError(
                f"{self.name} v{self.version}: missing fields {sorted(missing)}"
            )
        unknown = payload.keys() - self.required - self.optional
        if unknown:
            raise SchemaError(
                f"{self.name} v{self.version}: unknown fields {sorted(unknown)}"
            )


class SchemaRegistry:
    """All versions of all event types, plus the upcaster chains."""

    def __init__(self) -> None:
        self._schemas: dict[tuple[str, int], EventSchema] = {}
        self._upcasters: dict[tuple[str, int], Upcaster] = {}
        self.upcasts_performed = 0

    # -- registration --------------------------------------------------------

    def define(
        self,
        name: str,
        version: int,
        required: list[str],
        optional: list[str] = (),
    ) -> EventSchema:
        """Register a schema version (versions must be added in order)."""
        if version < 1:
            raise SchemaError("versions start at 1")
        if (name, version) in self._schemas:
            raise SchemaError(f"{name} v{version} already defined")
        if version > 1 and (name, version - 1) not in self._schemas:
            raise SchemaError(f"{name} v{version - 1} must be defined first")
        schema = EventSchema(name, version, frozenset(required), frozenset(optional))
        self._schemas[(name, version)] = schema
        return schema

    def upcaster(self, name: str, from_version: int) -> Callable[[Upcaster], Upcaster]:
        """Decorator registering the ``from_version -> from_version+1`` lift."""

        def register(fn: Upcaster) -> Upcaster:
            if (name, from_version) not in self._schemas:
                raise SchemaError(f"{name} v{from_version} is not defined")
            if (name, from_version + 1) not in self._schemas:
                raise SchemaError(f"{name} v{from_version + 1} is not defined")
            if (name, from_version) in self._upcasters:
                raise SchemaError(f"upcaster {name} v{from_version} already defined")
            self._upcasters[(name, from_version)] = fn
            return fn

        return register

    def latest_version(self, name: str) -> int:
        versions = [v for (n, v) in self._schemas if n == name]
        if not versions:
            raise SchemaError(f"no schema named {name!r}")
        return max(versions)

    # -- producing / consuming ------------------------------------------------

    def write(self, name: str, payload: dict, version: Optional[int] = None) -> dict:
        """Validate and stamp an event for publication."""
        version = version if version is not None else self.latest_version(name)
        schema = self._schemas.get((name, version))
        if schema is None:
            raise SchemaError(f"{name} v{version} is not defined")
        schema.validate(payload)
        return {"_event": name, "_version": version, **payload}

    def read(self, event: dict, want_version: Optional[int] = None) -> dict:
        """Return the payload at ``want_version``, upcasting as needed.

        Raises :class:`IncompatibleEvent` if an upcaster in the chain is
        missing, or if the event is *newer* than the consumer understands
        (forward compatibility requires the consumer upgrade first — the
        "consumers before producers" rollout rule).
        """
        name = event.get("_event")
        version = event.get("_version")
        if name is None or version is None:
            raise SchemaError("event carries no schema stamp")
        want_version = (
            want_version if want_version is not None else self.latest_version(name)
        )
        if version > want_version:
            raise IncompatibleEvent(
                f"{name} v{version} is newer than consumer's v{want_version}; "
                "upgrade consumers before producers"
            )
        payload = {k: v for k, v in event.items() if not k.startswith("_")}
        while version < want_version:
            upcaster = self._upcasters.get((name, version))
            if upcaster is None:
                raise IncompatibleEvent(
                    f"no upcaster for {name} v{version} -> v{version + 1}"
                )
            payload = upcaster(dict(payload))
            version += 1
            self.upcasts_performed += 1
        self._schemas[(name, version)].validate(payload)
        return payload

    # -- compatibility checking --------------------------------------------------

    def check_rollout(self, name: str) -> list[str]:
        """Pre-deployment check: can every old version reach the latest?

        Returns a list of problems (empty = safe to roll out a consumer
        on the latest version while old events are still in flight).
        """
        problems = []
        latest = self.latest_version(name)
        for version in range(1, latest):
            if (name, version) not in self._upcasters:
                problems.append(f"missing upcaster {name} v{version} -> v{version + 1}")
        return problems

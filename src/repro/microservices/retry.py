"""Retry policies with exponential backoff and jitter.

Microservice frameworks ship "retrying features for fault tolerance"
(§3.1); this is that feature, including the property that makes it
double-edged: each retry of a non-idempotent operation is a potential
duplicate execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.sim import Environment


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: delay = base * factor**attempt, capped, jittered."""

    max_attempts: int = 4
    base_delay: float = 2.0
    factor: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.base_delay * (self.factor ** (attempt - 1)), self.max_delay)
        if self.jitter:
            raw *= 1 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, raw)

    def run(self, env: Environment, operation, *args, retry_on=(Exception,)) -> Generator:
        """Drive generator-function ``operation(*args)`` with retries.

        Re-raises the last error once attempts are exhausted.
        """
        rng = env.stream("retry-policy")
        last_error: Exception | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = yield from operation(*args)
                return result
            except retry_on as exc:  # noqa: PERF203 - retries are the point
                last_error = exc
                if attempt < self.max_attempts:
                    yield env.timeout(self.delay(attempt, rng))
        raise last_error

"""Retry policies with exponential backoff and jitter.

Microservice frameworks ship "retrying features for fault tolerance"
(§3.1); this is that feature, including the property that makes it
double-edged: each retry of a non-idempotent operation is a potential
duplicate execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from repro.flow import RetryBudget
from repro.sim import Environment


class RetryBudgetExhausted(Exception):
    """A retry budget ran dry; carries the error the retry would have fixed."""

    def __init__(self, last_error: Exception) -> None:
        super().__init__(f"retry budget exhausted after {last_error!r}")
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: delay = base * factor**attempt, capped, jittered."""

    max_attempts: int = 4
    base_delay: float = 2.0
    factor: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        The cap applies *after* jittering: ``max_delay`` is a promise about
        the worst case, and jittering a capped value would let delays exceed
        it by up to ``jitter`` (a capped 60 s backoff with 20% jitter could
        wait 72 s — past the cap it was supposed to honor).
        """
        raw = self.base_delay * (self.factor ** (attempt - 1))
        if self.jitter:
            raw *= 1 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, min(raw, self.max_delay))

    def run(
        self,
        env: Environment,
        operation,
        *args,
        retry_on=(Exception,),
        budget: Optional[RetryBudget] = None,
    ) -> Generator:
        """Drive generator-function ``operation(*args)`` with retries.

        Re-raises the last error once attempts are exhausted.  With a
        ``budget``, each retry must buy a token first (successes refund a
        fraction); an empty budget raises :class:`RetryBudgetExhausted`
        instead of retrying — failing fast rather than joining the storm.
        """
        # Per-call substream: a shared stream would make one caller's jitter
        # draws depend on how many other RetryPolicy calls ran before it,
        # coupling unrelated components' schedules for no reason.
        rng = env.stream(f"retry-policy:{env.next_id('retry-policy')}")
        last_error: Exception | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = yield from operation(*args)
                if budget is not None:
                    budget.on_success()
                return result
            except retry_on as exc:  # noqa: PERF203 - retries are the point
                last_error = exc
                if attempt < self.max_attempts:
                    if budget is not None and not budget.try_spend():
                        raise RetryBudgetExhausted(last_error) from last_error
                    yield env.timeout(self.delay(attempt, rng))
        raise last_error

"""A microservice framework (Spring Boot / Flask stand-in).

The status-quo architecture of §3.1: stateless service instances behind
RPC, each owning an *external* database (§3.3 "database per service") or
sharing one (§3.3 "shared database"), composing multi-service workflows
with retries and sagas rather than distributed transactions (§4.2).

Fault tolerance follows §4.1: the service tier is stateless, so crashing a
service node loses only in-flight requests; restarting reconnects to the
same database.
"""

from repro.microservices.app import MicroserviceApp
from repro.microservices.service import Microservice, ServiceContext
from repro.microservices.retry import RetryBudgetExhausted, RetryPolicy

__all__ = [
    "Microservice",
    "MicroserviceApp",
    "RetryBudgetExhausted",
    "RetryPolicy",
    "ServiceContext",
]

"""Replication and autoscaling for the stateless service tier.

Paper §4.3 (resource management) and abstract: the cloud shift introduced
"task scheduling, containerization, and (auto)scaling".  Because the §4.1
recipe makes the service tier stateless, it can be scaled horizontally
behind a load balancer; the database tier stays put.

- :class:`ReplicaSet` — N identical service replicas (same handlers, same
  backing database) on separate nodes, with client-side balancing and
  failover retry to another replica;
- :class:`Autoscaler` — a control loop sampling in-flight requests per
  replica and resizing the set toward a target, with provisioning delay
  and cooldown (scaling is neither free nor instant — that lag is the
  interesting behaviour).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.cluster import rendezvous_owner
from repro.flow import AdmissionController, PRIORITY_NORMAL, RetryBudget
from repro.messaging.rpc import RpcClient, RpcRejected, RpcServer, RpcTimeout
from repro.net.network import Network
from repro.sim import Environment


@dataclass
class ScaleEvent:
    at: float
    action: str  # "up" | "down"
    replicas: int


class ReplicaSet:
    """A horizontally scaled stateless service.

    ``handlers`` maps method name to a generator function ``fn(payload)``;
    every replica registers the same handlers (they share whatever state
    substrate the closures capture — typically a DatabaseServer, §4.1).
    """

    def __init__(
        self,
        env: Environment,
        net: Network,
        name: str,
        handlers: dict[str, Callable[[Any], Generator]],
        initial_replicas: int = 2,
        provision_delay: float = 120.0,
        admission_limit: Optional[int] = None,
    ) -> None:
        if initial_replicas < 1:
            raise ValueError("need at least one replica")
        self.env = env
        self.net = net
        self.name = name
        self.handlers = dict(handlers)
        self.provision_delay = provision_delay
        #: per-replica max in-flight before shedding (None = unprotected)
        self.admission_limit = admission_limit
        self.admission: dict[str, AdmissionController] = {}
        self._replica_seq = itertools.count(0)
        self._replicas: list[str] = []
        self._outstanding: dict[str, int] = {}
        self._rr = 0
        self.scale_events: list[ScaleEvent] = []
        for _ in range(initial_replicas):
            self._add_replica_now()

    # -- membership ---------------------------------------------------------------

    def _add_replica_now(self) -> str:
        node_name = f"{self.name}-{next(self._replica_seq)}"
        node = self.net.add_node(node_name)
        admission = None
        if self.admission_limit is not None:
            admission = AdmissionController(
                self.admission_limit, name=f"{node_name}.admission"
            )
            self.admission[node_name] = admission
        server = RpcServer(self.net, node, admission=admission)
        for method, handler in self.handlers.items():
            server.register(method, handler)
        self._replicas.append(node_name)
        self._outstanding[node_name] = 0
        return node_name

    def scale_up(self) -> Generator:
        """Provision one replica (takes ``provision_delay`` — a cold VM)."""
        yield self.env.timeout(self.provision_delay)
        name = self._add_replica_now()
        self.scale_events.append(ScaleEvent(self.env.now, "up", len(self._replicas)))
        return name

    def scale_down(self) -> Optional[str]:
        """Retire the newest replica (immediate; in-flight requests die)."""
        if len(self._replicas) <= 1:
            return None
        victim = self._replicas.pop()
        self._outstanding.pop(victim, None)
        self.net.node(victim).crash("scale-down")
        self.scale_events.append(ScaleEvent(self.env.now, "down", len(self._replicas)))
        return victim

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    @property
    def alive_replicas(self) -> list[str]:
        return [r for r in self._replicas if self.net.node(r).alive]

    def crash_replica(self, index: int) -> None:
        self.net.node(self._replicas[index]).crash()

    def restart_replica(self, index: int) -> None:
        self.net.node(self._replicas[index]).restart()

    # -- client-side balancing ---------------------------------------------------------

    def pick(self, affinity_key: Optional[str] = None) -> str:
        """Least-outstanding routing over alive replicas (round-robin ties).

        With ``affinity_key``, routing switches to rendezvous hashing over
        the alive replicas (``repro.cluster``): equal keys stick to the
        same replica for as long as it lives, and deterministically fail
        over when membership changes — session/cache affinity without a
        coordination service.
        """
        alive = self.alive_replicas
        if not alive:
            raise RuntimeError(f"no alive replica of {self.name}")
        if affinity_key is not None:
            return rendezvous_owner(alive, f"{self.name}|{affinity_key}")
        self._rr += 1
        ordered = alive[self._rr % len(alive):] + alive[: self._rr % len(alive)]
        return min(ordered, key=lambda r: self._outstanding.get(r, 0))

    def call(
        self,
        client: RpcClient,
        method: str,
        payload: Any = None,
        timeout: float = 50.0,
        failover_attempts: int = 2,
        idempotency_key: Optional[str] = None,
        affinity_key: Optional[str] = None,
        deadline: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Generator:
        """Invoke a replica; on timeout, fail over to a different one.

        A shed reply (:class:`RpcRejected`) also fails over — a *different*
        replica may still have admission headroom — but each shed failover
        spends from ``retry_budget`` like a retry would, so a fleet-wide
        overload still fails fast instead of sweeping every replica.
        """
        last_error: Exception | None = None
        for attempt in range(1 + failover_attempts):
            if attempt > 0 and retry_budget is not None and not retry_budget.try_spend():
                break
            replica = self.pick(affinity_key) if affinity_key is not None else self.pick()
            self._outstanding[replica] = self._outstanding.get(replica, 0) + 1
            try:
                result = yield from client.call(
                    replica, method, payload,
                    timeout=timeout, retries=0,
                    idempotency_key=idempotency_key,
                    deadline=deadline,
                    priority=priority,
                )
                if retry_budget is not None:
                    retry_budget.on_success()
                return result
            except (RpcTimeout, RpcRejected) as exc:
                last_error = exc
            finally:
                if replica in self._outstanding:
                    self._outstanding[replica] -= 1
        raise last_error

    @property
    def total_outstanding(self) -> int:
        return sum(self._outstanding.get(r, 0) for r in self.alive_replicas)

    @property
    def shed_total(self) -> int:
        """Requests shed across all replicas' admission controllers."""
        return sum(c.stats.shed_total for c in self.admission.values())


class Autoscaler:
    """A reactive control loop over a :class:`ReplicaSet`.

    Every ``interval`` it compares mean in-flight requests per replica to
    ``target_outstanding``; beyond ±25% it scales by one, bounded by
    ``min_replicas``/``max_replicas``, with a post-action ``cooldown``.
    """

    def __init__(
        self,
        env: Environment,
        replica_set: ReplicaSet,
        target_outstanding: float = 4.0,
        min_replicas: int = 1,
        max_replicas: int = 10,
        interval: float = 50.0,
        cooldown: float = 200.0,
    ) -> None:
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError("invalid replica bounds")
        self.env = env
        self.replica_set = replica_set
        self.target = target_outstanding
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.interval = interval
        self.cooldown = cooldown
        self._running = False
        self.samples: list[tuple[float, float, int]] = []

    def start(self) -> None:
        if self._running:
            raise RuntimeError("autoscaler already running")
        self._running = True
        self.env.process(self._loop(), label=f"autoscaler:{self.replica_set.name}")

    def stop(self) -> None:
        self._running = False

    def _loop(self) -> Generator:
        last_action = -1e18
        while self._running:
            yield self.env.timeout(self.interval)
            replicas = self.replica_set.replica_count
            load = self.replica_set.total_outstanding / max(1, replicas)
            self.samples.append((self.env.now, load, replicas))
            if self.env.now - last_action < self.cooldown:
                continue
            if load > self.target * 1.25 and replicas < self.max_replicas:
                last_action = self.env.now
                yield from self.replica_set.scale_up()
            elif load < self.target * 0.5 and replicas > self.min_replicas:
                last_action = self.env.now
                self.replica_set.scale_down()

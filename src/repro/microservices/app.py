"""Application assembly: deploy services onto nodes, wire RPC and state.

The deployment decisions of §3.3 are constructor flags:

- ``shared_database=True`` deploys one :class:`DatabaseServer` (one
  connection pool, one lock table) for every service — logically separated
  data, physically shared resources;
- ``shared_database=False`` (default) gives each service its own server —
  "database per service", physical isolation at higher infrastructure cost.

Service nodes are stateless: :meth:`MicroserviceApp.crash_service` +
``restart_service`` model the §4.1 recovery story (kill the pod, the
replacement reconnects to the same database).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.db.server import DatabaseServer
from repro.flow import AdmissionController, PRIORITY_NORMAL, RetryBudget
from repro.messaging.broker import Broker
from repro.messaging.idempotency import IdempotencyStore
from repro.messaging.rpc import RpcClient, RpcServer
from repro.microservices.service import Microservice, ServiceContext
from repro.net.latency import Latency, Sampler
from repro.net.network import Network
from repro.sim import Environment


class MicroserviceApp:
    """A deployed set of microservices plus a client edge.

    ``admission_limit`` (per-service max in-flight requests) turns on
    load-shedding admission control at every service's RPC server; the
    controllers are exposed in :attr:`admission` for stats inspection.
    Off by default — the unprotected configuration is the §3 status quo
    the overload benchmark measures against.
    """

    def __init__(
        self,
        env: Environment,
        shared_database: bool = False,
        db_connections: int = 32,
        with_broker: bool = True,
        network_latency: Optional[Sampler] = None,
        dedup_requests: bool = False,
        admission_limit: Optional[int] = None,
    ) -> None:
        self.env = env
        self.net = Network(env, default_latency=network_latency or Latency.intra_zone())
        self.shared_database = shared_database
        self.dedup_requests = dedup_requests
        self.admission_limit = admission_limit
        self._db_connections = db_connections
        self._shared_db: Optional[DatabaseServer] = None
        if shared_database:
            self._shared_db = DatabaseServer(
                env, name="shared-db", connections=db_connections
            )
        self.broker = Broker(env) if with_broker else None
        self.services: dict[str, Microservice] = {}
        self.databases: dict[str, DatabaseServer] = {}
        self.dedup_stores: dict[str, IdempotencyStore] = {}
        self.admission: dict[str, AdmissionController] = {}
        self.rpc_servers: dict[str, RpcServer] = {}
        self._service_nodes: dict[str, str] = {}
        self._contexts: dict[str, ServiceContext] = {}
        client_node = self.net.add_node("edge-client")
        self._client_rpc = RpcClient(self.net, client_node)

    # -- deployment -------------------------------------------------------------

    def add_service(self, service: Microservice) -> None:
        """Deploy a service on its own node with its configured database."""
        if service.name in self.services:
            raise ValueError(f"service {service.name!r} already deployed")
        node = self.net.add_node(service.name)
        if self.shared_database:
            db = self._shared_db
        else:
            db = DatabaseServer(
                self.env,
                name=f"{service.name}-db",
                connections=self._db_connections,
            )
        if service.init_db is not None:
            service.init_db(db)
        dedup = IdempotencyStore(clock=lambda: self.env.now) if self.dedup_requests else None
        if dedup is not None:
            self.dedup_stores[service.name] = dedup
        admission = None
        if self.admission_limit is not None:
            admission = AdmissionController(
                self.admission_limit, name=f"{service.name}.admission"
            )
            self.admission[service.name] = admission
        rpc_server = RpcServer(self.net, node, dedup_store=dedup, admission=admission)
        self.rpc_servers[service.name] = rpc_server
        rpc_client = RpcClient(self.net, node)
        context = ServiceContext(
            env=self.env,
            service_name=service.name,
            db=db,
            rpc_client=rpc_client,
            broker=self.broker,
            service_nodes=self._service_nodes,
        )
        for method, handler in service.handlers.items():
            rpc_server.register(method, self._bind(handler, context))
        self.services[service.name] = service
        self.databases[service.name] = db
        self._service_nodes[service.name] = node.name
        self._contexts[service.name] = context

    @staticmethod
    def _bind(handler: Callable, context: ServiceContext) -> Callable[[Any], Generator]:
        def bound(payload: Any) -> Generator:
            result = yield from handler(context, payload)
            return result

        return bound

    def context(self, service: str) -> ServiceContext:
        """The deployed context of a service (for tests and sagas)."""
        return self._contexts[service]

    # -- client edge ---------------------------------------------------------------

    def request(
        self,
        service: str,
        method: str,
        payload: Any = None,
        timeout: float = 50.0,
        retries: int = 2,
        idempotency_key: Optional[str] = None,
        deadline: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Generator:
        """An external client request entering the application.

        ``deadline`` (absolute virtual time), ``retry_budget`` and
        ``priority`` opt this request into the repro.flow overload
        defenses; all default off so existing callers are untouched.
        """
        node = self._service_nodes[service]
        result = yield from self._client_rpc.call(
            node,
            method,
            payload,
            timeout=timeout,
            retries=retries,
            idempotency_key=idempotency_key,
            deadline=deadline,
            retry_budget=retry_budget,
            priority=priority,
        )
        return result

    # -- operations ------------------------------------------------------------------

    def crash_service(self, service: str) -> None:
        """Kill the (stateless) service node; its database is unaffected."""
        self.net.node(self._service_nodes[service]).crash()

    def restart_service(self, service: str) -> None:
        """Bring the node back; RPC listeners re-register via restart hooks."""
        self.net.node(self._service_nodes[service]).restart()

    def database_of(self, service: str) -> DatabaseServer:
        return self.databases[service]

"""Service definition: handlers, context, and data access.

A :class:`Microservice` is a named bundle of request handlers (generator
functions) plus a database schema initializer.  Handlers receive a
:class:`ServiceContext` giving them their own database, RPC to sibling
services, and broker publishing — the three capabilities of §3's building
blocks, scoped the way a framework like Spring would scope them.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.db.server import DatabaseServer
from repro.flow import PRIORITY_NORMAL, RetryBudget
from repro.messaging.broker import Broker
from repro.messaging.rpc import RpcClient
from repro.sim import Environment

Handler = Callable[["ServiceContext", Any], Generator]


class Microservice:
    """Declarative service: register handlers with :meth:`handler`.

    ``init_db`` (if given) is called once at deployment with the service's
    :class:`~repro.db.server.DatabaseServer` to create tables and load
    seed data — the service's private schema ("data encapsulation", §1).
    """

    def __init__(
        self,
        name: str,
        init_db: Optional[Callable[[DatabaseServer], None]] = None,
    ) -> None:
        self.name = name
        self.init_db = init_db
        self.handlers: dict[str, Handler] = {}

    def handler(self, method: str) -> Callable[[Handler], Handler]:
        """Decorator: expose a generator function as an RPC method."""

        def register(fn: Handler) -> Handler:
            if method in self.handlers:
                raise ValueError(f"handler {method!r} already registered on {self.name}")
            self.handlers[method] = fn
            return fn

        return register


class ServiceContext:
    """What a handler can touch: its DB, sibling services, the broker."""

    def __init__(
        self,
        env: Environment,
        service_name: str,
        db: DatabaseServer,
        rpc_client: RpcClient,
        broker: Optional[Broker],
        service_nodes: dict[str, str],
    ) -> None:
        self.env = env
        self.service_name = service_name
        self.db = db
        self._rpc = rpc_client
        self._broker = broker
        self._service_nodes = service_nodes

    def call(
        self,
        service: str,
        method: str,
        payload: Any = None,
        timeout: float = 50.0,
        retries: int = 2,
        idempotency_key: Optional[str] = None,
        deadline: Optional[float] = None,
        retry_budget: Optional[RetryBudget] = None,
        priority: int = PRIORITY_NORMAL,
    ) -> Generator:
        """Synchronous RPC to a sibling service (§3.2 REST-style).

        ``deadline``/``retry_budget``/``priority`` thread the repro.flow
        overload defenses through the call chain — pass the incoming
        request's own deadline so downstream work inherits it.
        """
        node = self._service_nodes[service]
        result = yield from self._rpc.call(
            node,
            method,
            payload,
            timeout=timeout,
            retries=retries,
            idempotency_key=idempotency_key,
            deadline=deadline,
            retry_budget=retry_budget,
            priority=priority,
        )
        return result

    def publish(self, topic: str, key: Any, value: Any) -> Generator:
        """Asynchronous event to the broker (§3.2 message-queue style)."""
        if self._broker is None:
            raise RuntimeError("no broker attached to this application")
        record = yield from self._broker.publish(topic, key, value)
        return record

    @property
    def broker(self) -> Broker:
        if self._broker is None:
            raise RuntimeError("no broker attached to this application")
        return self._broker

"""The live shard-migration protocol: drain → copy → flip → forward.

One migration moves one shard between nodes without losing a write:

1. **drain** — the directory marks the shard migrating; the owner bars
   *new* transactions from starting branches on the shard and waits for
   every in-flight transaction touching it (including distributed
   transactions holding locks there) to commit or abort;
2. **copy** — the shard's state streams to the destination through the
   storage layer, charging virtual time per row;
3. **flip** — ownership flips atomically in the
   :class:`~repro.cluster.directory.PlacementDirectory` (one epoch bump);
4. **forward** — the bar lifts; requests routed with a stale cached owner
   pay one forward hop and repair their cache
   (:class:`~repro.cluster.router.Router`).

The protocol is runtime-agnostic: the runtime provides a *mover* with
``quiesce`` / ``transfer`` / ``resume`` hooks, and this module sequences
them, keeps the directory consistent on failure (an aborted migration
leaves ownership untouched and the shard unbarred), and instruments the
phases with ``repro.obs`` spans so rebalances are visible in Chrome trace
exports (``cluster.migrate`` → ``migrate.drain`` / ``migrate.copy`` /
``migrate.flip``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Protocol

from repro.cluster.directory import ClusterError, PlacementDirectory
from repro.sim import Environment


class ShardMover(Protocol):
    """What a runtime must provide to make its shards migratable."""

    def quiesce(self, shard: int) -> Generator:
        """Bar new work on ``shard`` and wait until in-flight work drains."""

    def transfer(self, shard: int, source: str, dest: str) -> Generator:
        """Copy the shard's state from ``source`` to ``dest``; returns the
        number of rows (or state entries) moved."""

    def resume(self, shard: int) -> None:
        """Lift the bar (called on both successful flip and abort)."""


@dataclass
class MigrationStats:
    started: int = 0
    completed: int = 0
    aborted: int = 0
    rows_copied: int = 0
    #: (shard, source, dest, virtual-ms duration) per completed migration.
    completed_log: list[tuple[int, str, str, float]] = field(default_factory=list)


def migrate_shard(
    env: Environment,
    directory: PlacementDirectory,
    mover: ShardMover,
    shard: int,
    dest: str,
    stats: MigrationStats,
) -> Generator:
    """Run one live migration of ``shard`` to ``dest``.

    Raises :class:`~repro.cluster.directory.ClusterError` if the shard is
    already migrating or already owned by ``dest``.  Any failure during
    drain or copy aborts the migration: ownership is unchanged, the shard
    is un-barred, and the error propagates to the caller (the rebalancer
    counts it and moves on).
    """
    record = directory.begin_migration(shard, dest)  # rejects double-migration
    stats.started += 1
    started_at = env.now
    tracer = env.tracer
    span = tracer.begin(
        "cluster.migrate", shard=shard, source=record.source, dest=dest
    )
    flipped = False
    try:
        phase = tracer.begin("migrate.drain", shard=shard)
        record.phase = "drain"
        yield from mover.quiesce(shard)
        tracer.end(phase)

        phase = tracer.begin("migrate.copy", shard=shard)
        record.phase = "copy"
        rows = yield from mover.transfer(shard, record.source, dest)
        rows = int(rows or 0)
        stats.rows_copied += rows
        tracer.end(phase, rows=rows)

        phase = tracer.begin("migrate.flip", shard=shard)
        record.phase = "flip"
        directory.complete_migration(shard)
        flipped = True
        tracer.end(phase, epoch=directory.epoch(shard))

        stats.completed += 1
        stats.completed_log.append(
            (shard, record.source, dest, env.now - started_at)
        )
        return rows
    except BaseException:
        if not flipped:
            directory.abort_migration(shard)
            stats.aborted += 1
        raise
    finally:
        mover.resume(shard)
        tracer.end(span, outcome="flipped" if flipped else "aborted")

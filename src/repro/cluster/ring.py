"""Key→shard partition strategies: hash rings and explicit range maps.

A *partition strategy* answers one question — ``shard_of(key)`` — and is
deliberately separated from *ownership* (shard→node), which lives in the
:class:`~repro.cluster.directory.PlacementDirectory`.  Splitting the two
is what makes live rebalancing possible: the key→shard mapping never
changes during a migration, only the shard's owner does, so in-flight
routing stays well-defined throughout.

Three strategies cover the runtimes in this repository:

- :class:`ModHashRing` — ``stable_hash(key) % num_shards``; byte-identical
  to the historical per-runtime formulas (database shards, broker
  partitions, dataflow key groups);
- :class:`ConsistentHashRing` — a classic virtual-node ring for workloads
  that change shard count and want minimal key movement;
- :class:`RangeMap` — explicit split points over an orderable key space
  (the sharded-DB design of range stores like Spanner/CockroachDB).
"""

from __future__ import annotations

import bisect
from typing import Hashable, Sequence

from repro.cluster.hashing import stable_hash, stable_hash_text


class PartitionStrategy:
    """Interface: a total, deterministic ``key -> shard`` function."""

    num_shards: int

    def shard_of(self, key: Hashable) -> int:
        raise NotImplementedError


class ModHashRing(PartitionStrategy):
    """``stable_hash(key) % num_shards`` — the historical default.

    This is exactly the formula every runtime used before the cluster
    layer existed; keeping it the default preserves byte-identical
    routing (and therefore byte-identical benchmark tables) for every
    non-rebalancing configuration.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards

    def shard_of(self, key: Hashable) -> int:
        return stable_hash(key) % self.num_shards

    def __repr__(self) -> str:
        return f"<ModHashRing shards={self.num_shards}>"


class ConsistentHashRing(PartitionStrategy):
    """A virtual-node consistent-hash ring over shard ids.

    Each shard contributes ``vnodes`` points on a 2^32 ring; a key maps to
    the first point clockwise of its hash.  Adding or removing one shard
    moves only ~1/num_shards of the keys — the property mod-hashing lacks
    and the reason resharding systems use rings.
    """

    def __init__(self, num_shards: int, vnodes: int = 64) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.num_shards = num_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(vnodes):
                points.append((stable_hash_text(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_of(self, key: Hashable) -> int:
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._shards[index]

    def __repr__(self) -> str:
        return f"<ConsistentHashRing shards={self.num_shards} vnodes={self.vnodes}>"


class RangeMap(PartitionStrategy):
    """Explicit range partitioning: sorted split points over the key space.

    ``bounds`` are the *upper* bounds of each shard except the last, which
    is unbounded: ``RangeMap(["g", "p"])`` maps keys ``< "g"`` to shard 0,
    ``["g", "p")`` to shard 1, and the rest to shard 2.  Keys must be
    mutually comparable with the bounds.
    """

    def __init__(self, bounds: Sequence) -> None:
        ordered = list(bounds)
        if any(ordered[i] >= ordered[i + 1] for i in range(len(ordered) - 1)):
            raise ValueError("bounds must be strictly increasing")
        self._bounds = ordered
        self.num_shards = len(ordered) + 1

    def shard_of(self, key: Hashable) -> int:
        return bisect.bisect_right(self._bounds, key)

    def split(self, bound) -> None:
        """Introduce a new split point (a shard split), adding one shard."""
        index = bisect.bisect_left(self._bounds, bound)
        if index < len(self._bounds) and self._bounds[index] == bound:
            raise ValueError(f"bound {bound!r} already exists")
        self._bounds.insert(index, bound)
        self.num_shards += 1

    def __repr__(self) -> str:
        return f"<RangeMap bounds={self._bounds!r}>"

"""Platform-stable hashing — the one place routing digests are computed.

Every runtime in the repository used to carry its own copy of the same
``zlib.crc32`` routing formula (database shards, broker partitions,
dataflow key groups, actor rendezvous placement).  They now all call into
this module, so the determinism contract lives in exactly one place:

- :func:`stable_hash` hashes a *value* via ``repr`` — identical across
  processes and ``PYTHONHASHSEED`` values, unlike builtin ``hash``;
- :func:`stable_hash_text` hashes an already-stringified identifier;
- :func:`rendezvous_score` / :func:`rendezvous_owner` implement
  highest-random-weight placement with first-wins tie-breaking, the
  formula the actor runtime has always used (``crc32("{node}|{key}")``).

Changing any formula here is a re-baselining event for every committed
benchmark table; see ``docs/CLUSTER.md`` (determinism contract).
"""

from __future__ import annotations

import zlib
from typing import Hashable, Iterable, Optional, Sequence


def stable_hash(key: Hashable) -> int:
    """CRC32 of ``repr(key)`` — deterministic, platform-stable."""
    return zlib.crc32(repr(key).encode("utf-8"))


def stable_hash_text(text: str) -> int:
    """CRC32 of an already-stringified identifier (no ``repr`` quoting)."""
    return zlib.crc32(text.encode("utf-8"))


def rendezvous_score(node: str, key: str) -> int:
    """The highest-random-weight score of ``node`` for ``key``."""
    return zlib.crc32(f"{node}|{key}".encode("utf-8"))


def rendezvous_owner(nodes: Sequence[str], key: str) -> Optional[str]:
    """The node with the highest rendezvous score for ``key``.

    Ties break toward the earlier node in ``nodes`` (exactly the behaviour
    of ``max()`` over an iterable, which this replaces).  Returns ``None``
    for an empty candidate list.
    """
    best: Optional[str] = None
    best_score = -1
    for node in nodes:
        score = zlib.crc32(f"{node}|{key}".encode("utf-8"))
        if score > best_score:
            best = node
            best_score = score
    return best


def spread(keys: Iterable[Hashable], num_shards: int) -> dict[int, int]:
    """Histogram of ``shard -> key count`` (diagnostics and tests)."""
    counts: dict[int, int] = {}
    for key in keys:
        shard = stable_hash(key) % num_shards
        counts[shard] = counts.get(shard, 0) + 1
    return counts

"""The placement directory: who owns which shard (and which activation).

The directory is the cluster's single source of routing truth, the
generalization of the actor runtime's silo directory.  It records two
kinds of placement:

- **shard ownership** — ``shard -> node`` with a monotone *epoch* per
  shard.  A live migration bumps the epoch exactly once, at the atomic
  ownership flip; routers that cached the old owner detect the stale
  epoch and forward (see :class:`~repro.cluster.router.Router`).
- **activations** — ``ident -> node`` for single-activation entities
  (virtual actors).  The stale-duplicate-activation hazard found by
  chaos fuzzing (a silo serving a cached activation after placement
  moved away and back) is resolved by consulting this table; see
  ``repro.actors.runtime``.

The directory is modeled as a highly available metadata service (as etcd
or the Orleans membership table would be); reads and writes are
zero-latency — the interesting latency lives in the *data* movement the
directory coordinates, not the metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.sim import Environment


class ClusterError(RuntimeError):
    """Raised for invalid placement or migration operations."""


@dataclass
class MigrationRecord:
    """One in-flight shard migration, begin to flip/abort."""

    shard: int
    source: str
    dest: str
    started_at: float
    phase: str = "drain"  # drain | copy | flip


@dataclass
class DirectoryStats:
    ownership_flips: int = 0
    migrations_begun: int = 0
    migrations_aborted: int = 0
    stale_lookups: int = 0


class PlacementDirectory:
    """Authoritative shard→node and ident→node placement records."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._owners: dict[int, str] = {}
        self._epochs: dict[int, int] = {}
        self._groups: dict[int, tuple[str, ...]] = {}
        self._migrating: dict[int, MigrationRecord] = {}
        self._activations: dict[Hashable, str] = {}
        self.stats = DirectoryStats()

    # -- shard ownership ----------------------------------------------------

    def assign(self, shard: int, node: str) -> None:
        """Initial (or administrative) ownership assignment."""
        self._owners[shard] = node
        self._epochs.setdefault(shard, 0)

    def owner_of(self, shard: int) -> str:
        try:
            return self._owners[shard]
        except KeyError:
            raise ClusterError(f"shard {shard} has no owner") from None

    def epoch(self, shard: int) -> int:
        return self._epochs.get(shard, 0)

    def owners(self) -> dict[int, str]:
        """A copy of the full shard→node map."""
        return dict(self._owners)

    def shards_on(self, node: str) -> list[int]:
        return sorted(s for s, n in self._owners.items() if n == node)

    def nodes(self) -> list[str]:
        return sorted(set(self._owners.values()))

    # -- replica groups -----------------------------------------------------

    def assign_group(self, shard: int, nodes: tuple[str, ...]) -> None:
        """Record the replica-group membership backing ``shard``.

        The shard's *owner* remains the single routing target — under
        replication it is the group's current leader, maintained via
        :meth:`set_group_leader`.
        """
        self._groups[shard] = tuple(nodes)

    def group_of(self, shard: int) -> tuple[str, ...]:
        """Replica-group membership of ``shard`` (empty if unreplicated)."""
        return self._groups.get(shard, ())

    def set_group_leader(self, shard: int, node: str) -> None:
        """Point the shard's ownership at its group's new leader.

        An election is an ownership flip like any other: the epoch bumps
        so routers with the old leader cached detect staleness and
        forward, exactly as after a migration.
        """
        if self._owners.get(shard) == node:
            return
        self._owners[shard] = node
        self._epochs[shard] = self._epochs.get(shard, 0) + 1
        self.stats.ownership_flips += 1

    # -- migration lifecycle ------------------------------------------------

    def is_migrating(self, shard: int) -> bool:
        return shard in self._migrating

    def migration_of(self, shard: int) -> Optional[MigrationRecord]:
        return self._migrating.get(shard)

    def begin_migration(self, shard: int, dest: str) -> MigrationRecord:
        """Mark a shard as migrating; rejects concurrent double-migration."""
        source = self.owner_of(shard)
        if shard in self._migrating:
            record = self._migrating[shard]
            raise ClusterError(
                f"shard {shard} is already migrating "
                f"({record.source} -> {record.dest}, phase={record.phase})"
            )
        if source == dest:
            raise ClusterError(f"shard {shard} already lives on {dest!r}")
        record = MigrationRecord(
            shard=shard, source=source, dest=dest, started_at=self.env.now
        )
        self._migrating[shard] = record
        self.stats.migrations_begun += 1
        return record

    def complete_migration(self, shard: int) -> None:
        """Atomically flip ownership to the migration's destination."""
        record = self._migrating.pop(shard, None)
        if record is None:
            raise ClusterError(f"shard {shard} is not migrating")
        self._owners[shard] = record.dest
        self._epochs[shard] = self._epochs.get(shard, 0) + 1
        self.stats.ownership_flips += 1

    def abort_migration(self, shard: int) -> None:
        """Cancel an in-flight migration; ownership is unchanged."""
        if self._migrating.pop(shard, None) is not None:
            self.stats.migrations_aborted += 1

    # -- activation registry (virtual actors) -------------------------------

    def record_activation(self, ident: Hashable, node: str) -> Optional[str]:
        """Record that ``ident`` activated on ``node``; returns the previous
        host (``None`` for a first activation)."""
        previous = self._activations.get(ident)
        self._activations[ident] = node
        return previous

    def last_host(self, ident: Hashable) -> Optional[str]:
        return self._activations.get(ident)

    def drop_activation(self, ident: Hashable) -> None:
        self._activations.pop(ident, None)

    def activations_on(self, node: str) -> list[Hashable]:
        return [i for i, n in self._activations.items() if n == node]

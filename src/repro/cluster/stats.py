"""Per-shard load accounting that feeds the rebalancer.

Every routed operation records one unit (or an explicit cost) against its
shard; the :class:`~repro.cluster.rebalancer.Rebalancer` reads windowed
loads to find hot shards and imbalanced nodes.  An exponentially weighted
moving average smooths bursts: ``load = alpha * window + (1-alpha) * load``
at every window roll, so a single spike does not trigger a migration but
a sustained hot key does.
"""

from __future__ import annotations

from typing import Optional


class ShardStats:
    """Windowed per-shard operation counts with an EWMA load signal."""

    def __init__(self, num_shards: int, alpha: float = 0.5) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.num_shards = num_shards
        self.alpha = alpha
        self.window: list[float] = [0.0] * num_shards
        self.total: list[float] = [0.0] * num_shards
        self._ewma: list[float] = [0.0] * num_shards
        self.windows_rolled = 0

    def grow(self, num_shards: int) -> None:
        """Widen the stat arrays after a shard split."""
        if num_shards < self.num_shards:
            raise ValueError("shard count cannot shrink")
        extra = num_shards - self.num_shards
        self.window.extend([0.0] * extra)
        self.total.extend([0.0] * extra)
        self._ewma.extend([0.0] * extra)
        self.num_shards = num_shards

    def record(self, shard: int, cost: float = 1.0) -> None:
        self.window[shard] += cost
        self.total[shard] += cost

    def roll_window(self) -> None:
        """Fold the current window into the EWMA and reset it."""
        alpha = self.alpha
        for shard in range(self.num_shards):
            self._ewma[shard] = (
                alpha * self.window[shard] + (1.0 - alpha) * self._ewma[shard]
            )
            self.window[shard] = 0.0
        self.windows_rolled += 1

    def load_of(self, shard: int) -> float:
        """Smoothed load; includes the live window so cold starts see data."""
        return self._ewma[shard] + self.alpha * self.window[shard]

    def loads(self) -> list[float]:
        return [self.load_of(s) for s in range(self.num_shards)]

    def hottest(self, among: Optional[list[int]] = None) -> Optional[int]:
        """The highest-load shard (optionally restricted), ties to lowest id."""
        shards = range(self.num_shards) if among is None else among
        best: Optional[int] = None
        best_load = -1.0
        for shard in shards:
            load = self.load_of(shard)
            if load > best_load:
                best, best_load = shard, load
        return best

"""Unified cluster placement: rings, directory, router, live rebalancing.

The paper's taxonomy turns on *who owns state partitioning*: actor
runtimes place activations via a directory, dataflow engines hash keys to
operator partitions, sharded databases route by primary key, brokers by
record key.  Before this package each runtime in the repository carried
its own copy of that logic; ``repro.cluster`` is the shared substrate
they all consult instead:

- :mod:`~repro.cluster.hashing` — the platform-stable hash formulas;
- :mod:`~repro.cluster.ring` — key→shard strategies (mod-hash,
  consistent-hash ring, explicit range maps);
- :mod:`~repro.cluster.directory` — shard→node ownership with epochs,
  plus the activation registry behind virtual-actor placement;
- :mod:`~repro.cluster.router` — cached key→node resolution with
  straggler forwarding;
- :mod:`~repro.cluster.migration` — the live shard-migration protocol
  (drain → copy → flip → forward), traced via ``repro.obs``;
- :mod:`~repro.cluster.stats` / :mod:`~repro.cluster.rebalancer` — the
  load signal and the control loop that moves hot shards to cold nodes.

See ``docs/CLUSTER.md`` for the protocol and the determinism contract.
"""

from repro.cluster.directory import (
    ClusterError,
    DirectoryStats,
    MigrationRecord,
    PlacementDirectory,
)
from repro.cluster.hashing import (
    rendezvous_owner,
    rendezvous_score,
    spread,
    stable_hash,
    stable_hash_text,
)
from repro.cluster.migration import MigrationStats, ShardMover, migrate_shard
from repro.cluster.rebalancer import Move, Rebalancer, RebalancerStats
from repro.cluster.ring import (
    ConsistentHashRing,
    ModHashRing,
    PartitionStrategy,
    RangeMap,
)
from repro.cluster.router import Route, Router, RouterStats
from repro.cluster.stats import ShardStats

__all__ = [
    "ClusterError",
    "ConsistentHashRing",
    "DirectoryStats",
    "MigrationRecord",
    "MigrationStats",
    "ModHashRing",
    "Move",
    "PartitionStrategy",
    "PlacementDirectory",
    "RangeMap",
    "Rebalancer",
    "RebalancerStats",
    "Route",
    "Router",
    "RouterStats",
    "ShardMover",
    "ShardStats",
    "migrate_shard",
    "rendezvous_owner",
    "rendezvous_score",
    "spread",
    "stable_hash",
    "stable_hash_text",
]

"""The load-aware rebalancer: watches shard stats, plans live migrations.

A control loop in the spirit of the autoscaler (``repro.microservices``),
but for *stateful* capacity: every ``interval`` it rolls the shard-stats
window, computes per-node load as the sum of its shards' smoothed loads,
and — if the hottest node carries more than ``imbalance_factor`` times
the coldest node's load — migrates the hottest movable shard from the
hottest node to the coldest, through the live-migration protocol
(:func:`repro.cluster.migration.migrate_shard`).

One migration per cycle, never against a shard already migrating: the
point of a rebalancer is convergence, not thrash.  ``plan()`` is a pure
function of the current stats so tests (and operators) can see what the
loop *would* do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Protocol

from repro.cluster.directory import ClusterError, PlacementDirectory
from repro.cluster.stats import ShardStats
from repro.sim import Environment


class RebalanceTarget(Protocol):
    """What the rebalancer needs from a runtime: placement + migration."""

    directory: PlacementDirectory
    shard_stats: ShardStats

    def cluster_nodes(self) -> list[str]:
        """Nodes eligible to receive shards (alive members)."""

    def migrate_shard(self, shard: int, dest: str) -> Generator:
        """Live-migrate one shard (the runtime's mover behind the protocol)."""


@dataclass
class RebalancerStats:
    cycles: int = 0
    planned: int = 0
    completed: int = 0
    failed: int = 0


@dataclass(frozen=True)
class Move:
    shard: int
    source: str
    dest: str
    reason: str
    #: full membership of the relocated replica group (empty when the
    #: target is unreplicated: the shard is a single engine)
    dest_nodes: tuple[str, ...] = ()


class Rebalancer:
    """Periodically migrates hot shards toward cold nodes."""

    def __init__(
        self,
        env: Environment,
        target: RebalanceTarget,
        interval: float = 50.0,
        imbalance_factor: float = 2.0,
        min_load: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if imbalance_factor < 1.0:
            raise ValueError("imbalance_factor must be >= 1")
        self.env = env
        self.target = target
        self.interval = interval
        self.imbalance_factor = imbalance_factor
        self.min_load = min_load
        self.stats = RebalancerStats()
        self._running = False

    # -- planning -----------------------------------------------------------

    def node_loads(self) -> dict[str, float]:
        """Per-node load: the sum of its owned shards' smoothed loads."""
        directory = self.target.directory
        stats = self.target.shard_stats
        loads = {node: 0.0 for node in self.target.cluster_nodes()}
        for shard, owner in directory.owners().items():
            loads[owner] = loads.get(owner, 0.0) + stats.load_of(shard)
        return loads

    def plan(self) -> Optional[Move]:
        """The single move this cycle would make, or ``None`` if balanced."""
        loads = self.node_loads()
        if len(loads) < 2:
            return None
        hot_node = max(loads, key=lambda n: (loads[n], n))
        cold_node = min(loads, key=lambda n: (loads[n], n))
        if hot_node == cold_node:
            return None
        if loads[hot_node] < self.min_load:
            return None  # nothing meaningful to move
        if loads[hot_node] <= self.imbalance_factor * max(loads[cold_node], self.min_load):
            return None
        directory = self.target.directory
        movable = [
            s for s in directory.shards_on(hot_node) if not directory.is_migrating(s)
        ]
        shard = self.target.shard_stats.hottest(among=movable)
        if shard is None:
            return None
        return Move(
            shard=shard,
            source=hot_node,
            dest=cold_node,
            reason=(
                f"node load {loads[hot_node]:.1f} > "
                f"{self.imbalance_factor:g}x {loads[cold_node]:.1f}"
            ),
            dest_nodes=self._plan_dest_nodes(shard, cold_node, loads),
        )

    def _plan_dest_nodes(
        self, shard: int, dest: str, loads: dict[str, float]
    ) -> tuple[str, ...]:
        """New replica-group membership for a group-backed shard.

        The coldest node leads the new group; the rest of the membership
        is filled coldest-first from the remaining nodes so the follower
        load spreads too.  Empty when the target is unreplicated.
        """
        current = self.target.directory.group_of(shard)
        if not current:
            return ()
        members = [dest]
        for node in sorted(
            (n for n in loads if n != dest), key=lambda n: (loads[n], n)
        ):
            if len(members) == len(current):
                break
            members.append(node)
        if len(members) < len(current):
            return ()  # not enough nodes to rebuild the group elsewhere
        return tuple(members)

    # -- the control loop ---------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("rebalancer already running")
        self._running = True
        self.env.process(self._loop(), label="cluster.rebalancer")

    def stop(self) -> None:
        self._running = False

    def _loop(self) -> Generator:
        while self._running:
            yield self.env.timeout(self.interval)
            if not self._running:
                return
            yield from self.run_cycle()

    def run_cycle(self) -> Generator:
        """One observe→plan→migrate cycle (public for tests and benches)."""
        self.stats.cycles += 1
        self.target.shard_stats.roll_window()
        move = self.plan()
        if move is None:
            return None
        self.stats.planned += 1
        try:
            if move.dest_nodes:
                yield from self.target.migrate_shard(
                    move.shard, move.dest, list(move.dest_nodes)
                )
            else:
                yield from self.target.migrate_shard(move.shard, move.dest)
            self.stats.completed += 1
        except ClusterError:
            self.stats.failed += 1  # raced another migration or a topology change
        return move

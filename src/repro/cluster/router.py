"""Key→node resolution: the one lookup every runtime performs.

``Router`` composes a partition strategy (key→shard) with the placement
directory (shard→node).  Clients that cache routes model the real-world
"straggler" path: a request routed with a stale cache arrives at the old
owner after an ownership flip and must be *forwarded* — one extra hop,
visible in latency and counted in :class:`RouterStats`.

The router itself is pure metadata (no virtual time); callers charge the
network cost of any forward the lookup reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.cluster.directory import PlacementDirectory
from repro.cluster.ring import PartitionStrategy


@dataclass
class RouterStats:
    lookups: int = 0
    forwards: int = 0


@dataclass(frozen=True)
class Route:
    """One resolved route; ``forwarded`` means the cached owner was stale."""

    shard: int
    node: str
    epoch: int
    forwarded: bool = False


class Router:
    """Resolves keys to their owning node, with per-client route caching."""

    def __init__(self, ring: PartitionStrategy, directory: PlacementDirectory) -> None:
        self.ring = ring
        self.directory = directory
        #: cached shard -> (node, epoch); stale entries cost one forward.
        self._cache: dict[int, tuple[str, int]] = {}
        self.stats = RouterStats()

    def shard_of(self, key: Hashable) -> int:
        return self.ring.shard_of(key)

    def owner_of_shard(self, shard: int) -> str:
        return self.directory.owner_of(shard)

    def resolve(self, key: Hashable) -> Route:
        """Key → (shard, node), tracking whether a stale cache forwarded.

        The first lookup of a shard populates the cache without a forward
        (a cold cache is resolved against the directory directly, as a
        client bootstrap would).  After an ownership flip, the next lookup
        per shard pays exactly one forward and repairs the cache.
        """
        shard = self.ring.shard_of(key)
        return self.resolve_shard(shard)

    def resolve_shard(self, shard: int) -> Route:
        self.stats.lookups += 1
        owner = self.directory.owner_of(shard)
        epoch = self.directory.epoch(shard)
        cached = self._cache.get(shard)
        forwarded = cached is not None and cached != (owner, epoch)
        if forwarded:
            self.stats.forwards += 1
            self.directory.stats.stale_lookups += 1
        self._cache[shard] = (owner, epoch)
        return Route(shard=shard, node=owner, epoch=epoch, forwarded=forwarded)

    def invalidate(self, shard: int) -> None:
        self._cache.pop(shard, None)

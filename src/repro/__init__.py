"""repro — transactional cloud application runtimes, end to end.

A working reproduction of "Transactional Cloud Applications: Status Quo,
Challenges, and Opportunities" (SIGMOD 2025 tutorial): every runtime the
tutorial surveys — microservice frameworks, virtual actors, stateful FaaS,
durable orchestrations, and stateful/transactional dataflows — implemented
from scratch on a deterministic discrete-event simulation substrate, with
a benchmark suite that operationalizes the paper's qualitative claims.

Start with :mod:`repro.sim` (the kernel), :mod:`repro.core` (the paper's
taxonomy as data), and the README's code tour.  ``examples/quickstart.py``
is the two-minute version.
"""

__version__ = "1.0.0"

"""Orchestrated sagas: local transactions chained with compensations.

The saga pattern (Garcia-Molina & Salem 1987, paper §4.2) is the prevailing
consistency mechanism in microservice architectures: each step commits a
*local* transaction immediately; if a later step fails, previously
completed steps are undone by running their compensations in reverse.

Two properties the benchmarks measure fall directly out of this design:

- *No isolation*: between a step's commit and the saga's end, other
  transactions observe intermediate states (and between a failure and the
  completion of compensations, they observe states that will be undone).
- *No blocking*: unlike 2PC, no locks are held across services, so
  throughput under contention degrades far less.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.sim import Environment, Interrupted


class SagaAborted(Exception):
    """Raised by the orchestrator when a saga was rolled back."""

    def __init__(self, saga: str, failed_step: str, cause: Exception) -> None:
        super().__init__(f"saga {saga!r} aborted at step {failed_step!r}: {cause!r}")
        self.failed_step = failed_step
        self.cause = cause


class SagaStuck(Exception):
    """A compensation kept failing: the saga needs manual intervention.

    This is the saga pattern's dirty secret — compensations must succeed
    eventually, and when they do not, consistency rests on a human.
    """

    def __init__(self, saga: str, step: str) -> None:
        super().__init__(f"saga {saga!r} stuck compensating step {step!r}")
        self.step = step


@dataclass(frozen=True)
class SagaStep:
    """One local transaction plus its compensation.

    ``action(ctx)`` and ``compensation(ctx)`` are generator functions; the
    shared mutable ``ctx`` dict carries results between steps (e.g. the
    reservation id the compensation must cancel).  ``compensation=None``
    marks a step that needs no undo (e.g. a pure read or the final step).
    """

    name: str
    action: Callable[[dict], Generator]
    compensation: Optional[Callable[[dict], Generator]] = None


@dataclass(frozen=True)
class Saga:
    """An ordered list of steps executed by the orchestrator."""

    name: str
    steps: tuple[SagaStep, ...]

    def __init__(self, name: str, steps: list[SagaStep]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "steps", tuple(steps))
        if not steps:
            raise ValueError("a saga needs at least one step")


@dataclass
class SagaOutcome:
    """What happened to one saga execution."""

    saga: str
    status: str  # "completed" | "compensated" | "stuck"
    completed_steps: list[str] = field(default_factory=list)
    failed_step: Optional[str] = None
    error: Optional[str] = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class SagaStats:
    started: int = 0
    completed: int = 0
    compensated: int = 0
    stuck: int = 0


class SagaOrchestrator:
    """Drives sagas forward and backward; the "orchestration" pattern.

    The orchestrator itself is modeled as durable (it would persist its
    progress in a saga log); step actions and compensations run against the
    live, failure-prone services.
    """

    def __init__(self, env: Environment, compensation_retries: int = 3) -> None:
        self.env = env
        self.compensation_retries = compensation_retries
        self.stats = SagaStats()
        self.outcomes: list[SagaOutcome] = []

    def execute(self, saga: Saga, ctx: Optional[dict] = None) -> Generator:
        """Run one saga instance; returns its :class:`SagaOutcome`.

        The outcome is also appended to :attr:`outcomes`.  Raises nothing
        for business failures (they become ``compensated`` outcomes); a
        repeatedly failing compensation yields a ``stuck`` outcome.
        """
        ctx = ctx if ctx is not None else {}
        ctx.setdefault("saga_execution_id", self.env.next_id("saga-execution"))
        outcome = SagaOutcome(saga=saga.name, status="completed", started_at=self.env.now)
        self.stats.started += 1
        completed: list[SagaStep] = []
        tracer = self.env.tracer
        span = tracer.begin(
            "saga", saga=saga.name, execution=ctx["saga_execution_id"]
        )
        try:
            for step in saga.steps:
                step_span = tracer.begin("saga.step", step=step.name)
                try:
                    result = yield from step.action(ctx)
                    ctx[step.name] = result
                    completed.append(step)
                    outcome.completed_steps.append(step.name)
                    tracer.end(step_span)
                except Interrupted:
                    tracer.end(step_span, outcome="interrupted")
                    raise
                except Exception as exc:  # noqa: BLE001 - any step failure triggers undo
                    tracer.end(step_span, outcome="failed")
                    outcome.failed_step = step.name
                    outcome.error = repr(exc)
                    yield from self._compensate(saga, completed, ctx, outcome)
                    break
        finally:
            tracer.end(span, status=outcome.status)
        outcome.finished_at = self.env.now
        if outcome.status == "completed":
            self.stats.completed += 1
        self.outcomes.append(outcome)
        return outcome

    def _compensate(
        self,
        saga: Saga,
        completed: list[SagaStep],
        ctx: dict,
        outcome: SagaOutcome,
    ) -> Generator:
        outcome.status = "compensated"
        tracer = self.env.tracer
        for step in reversed(completed):
            if step.compensation is None:
                continue
            attempts = 0
            span = tracer.begin("saga.compensate", step=step.name)
            try:
                while True:
                    attempts += 1
                    try:
                        yield from step.compensation(ctx)
                        break
                    except Interrupted:
                        raise
                    except Exception:  # noqa: BLE001 - retried, then declared stuck
                        if attempts > self.compensation_retries:
                            outcome.status = "stuck"
                            self.stats.stuck += 1
                            span.annotate(outcome="stuck")
                            return
                        yield self.env.timeout(2.0 * attempts)  # backoff
            finally:
                tracer.end(span, attempts=attempts)
        self.stats.compensated += 1

"""Cross-component consistency protocols and correctness metrology.

The coordination mechanisms the paper surveys for multi-service consistency
(§4.2, §5.2), plus the measurement machinery its benchmark critique calls
for (§5.3: "most benchmarks are oblivious to key aspects of data
management"):

- :mod:`repro.transactions.sagas` — orchestrated sagas with compensations
  (the BASE/eventual-consistency status quo of microservices);
- :mod:`repro.transactions.twopc` — a two-phase-commit coordinator over
  XA-style participants (the blocking alternative microservices avoid);
- :mod:`repro.transactions.causal` — vector clocks and a causally
  consistent replicated store (the Antipode direction);
- :mod:`repro.transactions.anomalies` — invariant checkers and the effect
  ledger that counts lost/duplicated/phantom effects after every run;
- :mod:`repro.transactions.sequencer` — a deterministic transaction
  sequencer (the Calvin-style substrate of the Styx-like dataflow).
"""

from repro.transactions.anomalies import (
    AnomalyReport,
    ConservationInvariant,
    EffectLedger,
    Invariant,
    NonNegativeInvariant,
    PredicateInvariant,
    Violation,
)
from repro.transactions.causal import CausalStore, VectorClock
from repro.transactions.choreography import ChoreographyMonitor, Reactor
from repro.transactions.constraints import ConstraintMonitor, OnlineViolation
from repro.transactions.cross_engine import KvTxnConflict, TransactionalKv
from repro.transactions.sagas import (
    Saga,
    SagaAborted,
    SagaOrchestrator,
    SagaOutcome,
    SagaStep,
    SagaStuck,
)
from repro.transactions.sequencer import Sequencer
from repro.transactions.twopc import TwoPhaseCommit, TwoPhaseOutcome

__all__ = [
    "AnomalyReport",
    "CausalStore",
    "ChoreographyMonitor",
    "ConservationInvariant",
    "ConstraintMonitor",
    "KvTxnConflict",
    "OnlineViolation",
    "Reactor",
    "TransactionalKv",
    "EffectLedger",
    "Invariant",
    "NonNegativeInvariant",
    "PredicateInvariant",
    "Saga",
    "SagaAborted",
    "SagaOrchestrator",
    "SagaOutcome",
    "SagaStep",
    "SagaStuck",
    "Sequencer",
    "TwoPhaseCommit",
    "TwoPhaseOutcome",
    "VectorClock",
    "Violation",
]

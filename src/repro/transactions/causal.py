"""Vector clocks and a causally consistent replicated store.

Implements the "causal consistency for microservice architectures"
direction the paper highlights (§5.2, Antipode): writes carry dependency
metadata; a replica delays making a write visible until everything it
causally depends on is visible there too.  Sessions give read-your-writes
and monotonic reads by carrying their causal past between calls — including
calls that hop across services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Optional

from repro.sim import Environment


class VectorClock:
    """A map replica-id → counter with the usual partial order."""

    __slots__ = ("_counters",)

    def __init__(self, counters: Optional[dict[str, int]] = None) -> None:
        self._counters: dict[str, int] = dict(counters or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self._counters)

    def get(self, replica: str) -> int:
        return self._counters.get(replica, 0)

    def increment(self, replica: str) -> "VectorClock":
        """Return a new clock with ``replica``'s counter bumped."""
        counters = dict(self._counters)
        counters[replica] = counters.get(replica, 0) + 1
        return VectorClock(counters)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum."""
        counters = dict(self._counters)
        for replica, count in other._counters.items():
            counters[replica] = max(counters.get(replica, 0), count)
        return VectorClock(counters)

    def dominates(self, other: "VectorClock") -> bool:
        """True if self >= other pointwise (other happened-before or equal)."""
        return all(
            self.get(replica) >= count for replica, count in other._counters.items()
        )

    def happens_before(self, other: "VectorClock") -> bool:
        """Strictly before: other dominates self and they differ."""
        return other.dominates(self) and self._counters != other._counters

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        keys = set(self._counters) | set(other._counters)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, v) for k, v in self._counters.items() if v)))

    def __repr__(self) -> str:
        return f"VC({self._counters})"


@dataclass
class _Write:
    key: Any
    value: Any
    clock: VectorClock
    origin: str


@dataclass
class CausalStats:
    writes: int = 0
    reads: int = 0
    delayed_applies: int = 0
    stale_reads_prevented: int = 0


class _Replica:
    """One replica: visible state + a buffer of not-yet-applicable writes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.data: dict[Any, tuple[Any, VectorClock]] = {}
        self.applied = VectorClock()
        self.buffer: list[_Write] = []

    def try_apply(self, write: _Write) -> bool:
        """Apply if all causal dependencies are already visible here.

        A write depends on everything in its clock except its own slot's
        latest increment.
        """
        deps = write.clock.as_dict()
        deps[write.origin] = deps.get(write.origin, 0) - 1
        for replica, count in deps.items():
            if self.applied.get(replica) < count:
                return False
        self.data[write.key] = (write.value, write.clock)
        self.applied = self.applied.merge(write.clock)
        return True

    def drain_buffer(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            remaining: list[_Write] = []
            for write in self.buffer:
                if self.try_apply(write):
                    progressed = True
                else:
                    remaining.append(write)
            self.buffer = remaining


class CausalStore:
    """A multi-replica KV store guaranteeing causal consistency.

    Writes go to one replica and replicate asynchronously; each replica
    holds back writes whose dependencies have not arrived.  Use
    :meth:`session` for client sessions whose causal context follows them
    across replicas (and, via ``attach``/``context``, across services).
    """

    def __init__(
        self,
        env: Environment,
        replicas: Iterable[str],
        replication_delay: float = 5.0,
    ) -> None:
        names = list(replicas)
        if not names:
            raise ValueError("need at least one replica")
        self.env = env
        self.replication_delay = replication_delay
        self._replicas = {name: _Replica(name) for name in names}
        self.stats = CausalStats()

    @property
    def replica_names(self) -> list[str]:
        return list(self._replicas)

    def write(self, replica: str, key: Any, value: Any, deps: VectorClock) -> VectorClock:
        """Write at ``replica`` with causal context ``deps``; returns the
        write's clock (the caller's new context)."""
        origin = self._replicas[replica]
        clock = deps.merge(origin.applied).increment(replica)
        write = _Write(key, value, clock, replica)
        applied = origin.try_apply(write)
        assert applied, "a write's deps are always visible at its origin"
        self.stats.writes += 1
        for name, other in self._replicas.items():
            if name != replica:
                self.env.schedule(self.replication_delay, self._receive, other, write)
        return clock

    def _receive(self, replica: _Replica, write: _Write) -> None:
        if not replica.try_apply(write):
            self.stats.delayed_applies += 1
            replica.buffer.append(write)
        else:
            replica.drain_buffer()

    def read(self, replica: str, key: Any) -> tuple[Any, VectorClock]:
        """Read ``key`` at ``replica``; returns ``(value, clock_of_value)``."""
        self.stats.reads += 1
        value, clock = self._replicas[replica].data.get(key, (None, VectorClock()))
        return value, clock

    def read_blocking(self, replica: str, key: Any, at_least: VectorClock) -> Generator:
        """Read, waiting until the replica has applied ``at_least``.

        This is the session-guarantee read: it never returns state older
        than the caller's causal context (read-your-writes across
        replicas).
        """
        target = self._replicas[replica]
        waited = False
        while not target.applied.dominates(at_least):
            waited = True
            yield self.env.timeout(1.0)
        if waited:
            self.stats.stale_reads_prevented += 1
        return self.read(replica, key)

    def session(self, replica: Optional[str] = None) -> "CausalSession":
        return CausalSession(self, replica or self.replica_names[0])


class CausalSession:
    """A client session carrying its causal context between operations."""

    def __init__(self, store: CausalStore, replica: str) -> None:
        self.store = store
        self.replica = replica
        self.context = VectorClock()

    def write(self, key: Any, value: Any) -> None:
        self.context = self.store.write(self.replica, key, value, self.context)

    def read(self, key: Any) -> Generator:
        """Causal read: blocks until this replica caught up to the session."""
        value, clock = yield from self.store.read_blocking(
            self.replica, key, self.context
        )
        self.context = self.context.merge(clock)
        return value

    def read_eventual(self, key: Any) -> Any:
        """Plain eventually consistent read (no session guarantee)."""
        value, clock = self.store.read(self.replica, key)
        self.context = self.context.merge(clock)
        return value

    def attach(self, context: VectorClock) -> None:
        """Adopt causal context received from another service (Antipode's
        cross-service lineage propagation)."""
        self.context = self.context.merge(context)

    def move_to(self, replica: str) -> None:
        """Continue the session against a different replica."""
        self.replica = replica

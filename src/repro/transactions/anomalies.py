"""Invariant checkers and the effect ledger: correctness as a metric.

The paper's benchmark critique (§5.3) is that throughput and latency alone
cannot evaluate transactional cloud runtimes — "the presence of data
invariants, transactional guarantees ... are examples of missing
requirements".  Every benchmark in this repository therefore reports an
:class:`AnomalyReport` next to its performance numbers:

- :class:`Invariant` subclasses check application-level data invariants
  (conservation of money, non-negative stock) against final state;
- :class:`EffectLedger` tracks intended vs applied effects, counting
  **lost** effects (acknowledged but absent) and **duplicate** effects
  (applied more than once) — the fingerprints of broken message-delivery
  guarantees.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional


@dataclass(frozen=True)
class Violation:
    """One detected violation of an invariant."""

    invariant: str
    detail: str


class Invariant:
    """Base class: subclasses implement :meth:`check` over a state snapshot.

    ``state`` is whatever the harness passes — usually a list of rows or a
    dict — keeping invariants decoupled from the runtime under test.
    """

    name = "invariant"

    def check(self, state: Any) -> list[Violation]:
        raise NotImplementedError


class ConservationInvariant(Invariant):
    """A numeric field's total over all entities must equal a constant.

    The classic transfer-workload invariant: money is neither created nor
    destroyed.  Lost updates, partial transfers, and duplicated effects all
    break it.
    """

    def __init__(self, field_name: str, expected_total: float, name: str = "") -> None:
        self.field_name = field_name
        self.expected_total = expected_total
        self.name = name or f"conservation({field_name})"

    def check(self, state: Iterable[dict]) -> list[Violation]:
        total = sum(row[self.field_name] for row in state)
        if total != self.expected_total:
            return [
                Violation(
                    self.name,
                    f"sum({self.field_name}) = {total}, expected {self.expected_total} "
                    f"(drift {total - self.expected_total:+})",
                )
            ]
        return []


class NonNegativeInvariant(Invariant):
    """A field must never go below zero (e.g. stock, seats, balance)."""

    def __init__(self, field_name: str, key_field: str = "id", name: str = "") -> None:
        self.field_name = field_name
        self.key_field = key_field
        self.name = name or f"non_negative({field_name})"

    def check(self, state: Iterable[dict]) -> list[Violation]:
        return [
            Violation(
                self.name,
                f"{row.get(self.key_field)!r}: {self.field_name} = {row[self.field_name]}",
            )
            for row in state
            if row[self.field_name] < 0
        ]


class PredicateInvariant(Invariant):
    """An arbitrary predicate over the whole state snapshot."""

    def __init__(self, name: str, predicate: Callable[[Any], bool], detail: str = "") -> None:
        self.name = name
        self.predicate = predicate
        self.detail = detail or "predicate failed"

    def check(self, state: Any) -> list[Violation]:
        if not self.predicate(state):
            return [Violation(self.name, self.detail)]
        return []


@dataclass
class AnomalyReport:
    """The correctness half of a benchmark result."""

    violations: list[Violation] = field(default_factory=list)
    lost_effects: int = 0
    duplicate_effects: int = 0
    unacknowledged_applied: int = 0

    @property
    def clean(self) -> bool:
        return (
            not self.violations
            and self.lost_effects == 0
            and self.duplicate_effects == 0
        )

    @property
    def total_anomalies(self) -> int:
        return len(self.violations) + self.lost_effects + self.duplicate_effects

    def summary(self) -> str:
        if self.clean:
            return "clean"
        parts = []
        if self.violations:
            parts.append(f"{len(self.violations)} invariant violation(s)")
        if self.lost_effects:
            parts.append(f"{self.lost_effects} lost effect(s)")
        if self.duplicate_effects:
            parts.append(f"{self.duplicate_effects} duplicate effect(s)")
        return ", ".join(parts)


class EffectLedger:
    """Reconciles what clients were told happened with what actually did.

    Usage protocol:

    - the *client* calls :meth:`acknowledge` when an operation was reported
      successful to it;
    - the *state owner* calls :meth:`apply` every time the operation's
      effect is (re)applied to state.

    After the run, :meth:`reconcile`:

    - **lost**: acknowledged but never applied (at-most-once losses);
    - **duplicate**: applied more than once (at-least-once without dedup);
    - **unacknowledged applied**: applied but the client saw a failure —
      not an anomaly per se (the client may retry), but worth surfacing.
    """

    def __init__(self) -> None:
        self._acknowledged: set[Hashable] = set()
        self._applied: Counter = Counter()

    def acknowledge(self, op_id: Hashable) -> None:
        self._acknowledged.add(op_id)

    def apply(self, op_id: Hashable) -> None:
        self._applied[op_id] += 1

    @property
    def acknowledged_count(self) -> int:
        return len(self._acknowledged)

    @property
    def applied_count(self) -> int:
        return sum(self._applied.values())

    def lost(self) -> list[Hashable]:
        return sorted(
            (op for op in self._acknowledged if self._applied[op] == 0), key=repr
        )

    def duplicates(self) -> list[Hashable]:
        return sorted(
            (op for op, count in self._applied.items() if count > 1), key=repr
        )

    def unacknowledged(self) -> list[Hashable]:
        return sorted(
            (op for op in self._applied if op not in self._acknowledged), key=repr
        )

    def reconcile(
        self,
        invariants: Iterable[Invariant] = (),
        state: Any = None,
    ) -> AnomalyReport:
        """Build the final report, optionally checking invariants too."""
        report = AnomalyReport(
            lost_effects=len(self.lost()),
            duplicate_effects=len(self.duplicates()),
            unacknowledged_applied=len(self.unacknowledged()),
        )
        for invariant in invariants:
            report.violations.extend(invariant.check(state))
        return report

"""A deterministic transaction sequencer (Calvin-style, Styx's substrate).

Deterministic transaction processing fixes a global order *before*
execution: every worker then executes its share of each epoch in that
agreed order, so no runtime coordination (locks, 2PC votes) is needed and
the same input always yields the same state.  The Styx-like transactional
dataflow (:mod:`repro.dataflow.txn`) builds directly on this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional


@dataclass(frozen=True)
class SequencedTxn:
    """A transaction with its globally agreed position."""

    tid: int
    epoch: int
    payload: Any


class Sequencer:
    """Assigns global, gap-free transaction ids and groups them in epochs.

    ``cut_epoch`` closes the current epoch and returns its transactions in
    sequence order — the unit of deterministic parallel execution and of
    atomic checkpointing downstream.
    """

    def __init__(self, epoch_size: Optional[int] = None) -> None:
        if epoch_size is not None and epoch_size <= 0:
            raise ValueError("epoch_size must be positive")
        self.epoch_size = epoch_size
        self._tids = itertools.count(1)
        self._epoch = 0
        self._pending: list[SequencedTxn] = []
        self.sequenced_total = 0

    @property
    def current_epoch(self) -> int:
        return self._epoch

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def submit(self, payload: Any) -> SequencedTxn:
        """Order a transaction into the current epoch; returns its slot."""
        txn = SequencedTxn(tid=next(self._tids), epoch=self._epoch, payload=payload)
        self._pending.append(txn)
        self.sequenced_total += 1
        return txn

    def epoch_full(self) -> bool:
        return self.epoch_size is not None and len(self._pending) >= self.epoch_size

    def cut_epoch(self) -> list[SequencedTxn]:
        """Close the epoch; returns its transactions in global order."""
        batch, self._pending = self._pending, []
        self._epoch += 1
        return batch


def partition_conflicts(
    batch: list[SequencedTxn],
    keys_of: Callable[[Any], set[Hashable]],
) -> list[list[SequencedTxn]]:
    """Split an epoch into *conflict-free waves* executable in parallel.

    Within a wave no two transactions touch a common key; waves run in
    order, so the execution is equivalent to the serial TID order — the
    deterministic-locking trick that lets Calvin/Styx parallelize without
    runtime deadlocks.
    """
    waves: list[list[SequencedTxn]] = []
    wave_keys: list[set[Hashable]] = []
    for txn in batch:  # batch is in TID order
        keys = keys_of(txn.payload)
        # A txn must run after its last conflicting wave; any earlier slot
        # would reorder conflicting transactions against the TID order.
        last_conflict = -1
        for index, existing in enumerate(wave_keys):
            if existing & keys:
                last_conflict = index
        target = last_conflict + 1
        if target == len(waves):
            waves.append([txn])
            wave_keys.append(set(keys))
        else:
            waves[target].append(txn)
            wave_keys[target] |= keys
    return waves


def partition_queues(
    batch: list[SequencedTxn],
    keys_of: Callable[[Any], set[Hashable]],
    shard_of: Callable[[Hashable], int],
) -> dict[int, list[SequencedTxn]]:
    """Partition an epoch into *per-shard execution queues* (QueCC-style).

    Each transaction is appended — in TID order — to the queue of every
    shard owning one of its keys: a single-shard transaction lands in
    exactly one queue, a cross-shard transaction appears in **every**
    owning queue exactly once (it is the same object, so queue executors
    can rendezvous on identity).  Because ``shard_of`` is a pure function
    of the key, two transactions sharing a key always share every queue
    that key routes to, so executing each queue serially in TID order is
    equivalent to the global TID order — the planning half of the
    queue-oriented execution paradigm (:mod:`repro.parallel`).

    The returned dict's iteration order is ascending shard id, and queue
    membership is independent of ``PYTHONHASHSEED`` (keys are routed, never
    iterated from an unordered set).
    """
    queues: dict[int, list[SequencedTxn]] = {}
    for txn in batch:  # batch is in TID order
        shards = []
        seen: set[int] = set()
        for key in keys_of(txn.payload):
            shard = shard_of(key)
            if shard not in seen:
                seen.add(shard)
                shards.append(shard)
        for shard in sorted(shards):
            queues.setdefault(shard, []).append(txn)
    return {shard: queues[shard] for shard in sorted(queues)}

"""Cross-engine transactions: ACID across heterogeneous stores.

Paper §5.2: "Cross-engine transactions is a promising approach since it
operates at a lower level than the application" (Epoxy [36], [70]) —
coordinating, say, a relational database and a key-value cache without
pushing protocol details into application code.

The piece that makes it work here: :class:`TransactionalKv`, a key-value
store speaking the same XA participant protocol as
:class:`repro.db.Database` (``prepare`` / ``commit_prepared`` /
``abort_prepared``), so one :class:`repro.transactions.twopc.
TwoPhaseCommit` coordinator can atomically commit across both engines.
Validation is optimistic (version check at prepare), and prepared keys are
locked against concurrent preparers until the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Hashable, Optional

from repro.sim import Environment
from repro.storage.kv import KeyValueStore


class KvTxnConflict(Exception):
    """Prepare-time validation failed (stale read or key locked)."""


@dataclass
class KvTransaction:
    """A client-side transaction over a :class:`TransactionalKv`."""

    tid: int
    reads: dict[Hashable, int] = field(default_factory=dict)
    writes: dict[Hashable, Any] = field(default_factory=dict)
    status: str = "active"


class TransactionalKv:
    """A versioned KV store that can be a 2PC participant.

    Reads record the observed version; ``prepare`` validates that every
    read version is still current and takes a prepare-lock on the write
    set; the decision installs or discards.  Between prepare and decision,
    conflicting preparers abort immediately (no blocking — this is the
    cache-tier behaviour Epoxy layers on Redis-likes).
    """

    def __init__(self, env: Environment, name: str = "txn-kv", op_latency: float = 0.5) -> None:
        self.env = env
        self.name = name
        self.op_latency = op_latency
        self.store = KeyValueStore()
        self._prepared_keys: dict[Hashable, int] = {}  # key -> tid holding it
        self._in_doubt: dict[int, KvTransaction] = {}

    # -- transaction API ----------------------------------------------------------

    def begin(self) -> KvTransaction:
        return KvTransaction(tid=self.env.next_id("kv-txn"))

    def get(self, txn: KvTransaction, key: Hashable, default: Any = None) -> Generator:
        yield self.env.timeout(self.op_latency)
        if key in txn.writes:
            return txn.writes[key]
        versioned = self.store.get_versioned(key)
        txn.reads[key] = self.store.version(key)
        return versioned.value if versioned is not None else default

    def put(self, txn: KvTransaction, key: Hashable, value: Any) -> Generator:
        yield self.env.timeout(self.op_latency)
        txn.writes[key] = value

    # -- XA participant protocol -----------------------------------------------------

    def prepare(self, txn: KvTransaction) -> Generator:
        """Validate reads, lock the write set, go in-doubt."""
        yield self.env.timeout(self.op_latency)
        if txn.status != "active":
            raise KvTxnConflict(f"txn {txn.tid} is {txn.status}")
        for key in set(txn.reads) | set(txn.writes):
            holder = self._prepared_keys.get(key)
            if holder is not None and holder != txn.tid:
                txn.status = "aborted"
                raise KvTxnConflict(f"{key!r} is prepare-locked by txn {holder}")
        for key, seen_version in txn.reads.items():
            if self.store.version(key) != seen_version:
                txn.status = "aborted"
                raise KvTxnConflict(f"stale read of {key!r}")
        for key in txn.writes:
            self._prepared_keys[key] = txn.tid
        txn.status = "prepared"
        self._in_doubt[txn.tid] = txn

    def commit_prepared(self, txn: KvTransaction) -> Generator:
        yield self.env.timeout(self.op_latency)
        if txn.status != "prepared":
            raise KvTxnConflict(f"txn {txn.tid} is {txn.status}, not prepared")
        for key, value in txn.writes.items():
            self.store.put(key, value)
        self._release(txn)
        txn.status = "committed"

    def abort_prepared(self, txn: KvTransaction) -> Generator:
        yield self.env.timeout(self.op_latency)
        self._release(txn)
        txn.status = "aborted"

    def abort(self, txn: KvTransaction) -> Generator:
        """Abort a not-yet-prepared transaction (coordinator's phase-1 path)."""
        yield self.env.timeout(self.op_latency)
        if txn.status == "prepared":
            self._release(txn)
        txn.status = "aborted"

    def _release(self, txn: KvTransaction) -> None:
        self._in_doubt.pop(txn.tid, None)
        for key in txn.writes:
            if self._prepared_keys.get(key) == txn.tid:
                del self._prepared_keys[key]

    # -- one-phase convenience ------------------------------------------------------

    def commit(self, txn: KvTransaction) -> Generator:
        """Local (single-engine) commit: prepare + decide in one step."""
        yield from self.prepare(txn)
        yield from self.commit_prepared(txn)

    def in_doubt(self) -> list[int]:
        return list(self._in_doubt)

"""Event-based constraints: online cross-component invariant checking.

Paper §5.1 (ref [40], "Enforcing consistency in microservice architectures
through event-based constraints"): instead of checking invariants only at
the end of a run, a monitor consumes the application's event streams and
evaluates declared constraints *as the system runs*, flagging the window
in which an invariant was violated — the observability the paper says
cloud applications lack.

Usage::

    monitor = ConstraintMonitor(env, broker)
    monitor.watch("stock-events", reducer=apply_stock_event)
    monitor.constraint(
        "no-negative-stock",
        lambda state: all(v >= 0 for v in state.get("stock", {}).values()),
    )
    monitor.start()
    ...
    monitor.violations  # [(virtual_time, name, detail), ...]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.messaging.broker import Broker
from repro.sim import Environment

#: A reducer folds one event into the monitor's state dict (mutating it).
Reducer = Callable[[dict, Any], None]


@dataclass(frozen=True)
class OnlineViolation:
    """One constraint breach, stamped with when it was observed."""

    at: float
    constraint: str
    detail: str


@dataclass
class _Constraint:
    name: str
    predicate: Callable[[dict], bool]
    detail_fn: Optional[Callable[[dict], str]] = None


class ConstraintMonitor:
    """Consumes event topics and evaluates constraints after each event.

    The monitor is an independent observer (own consumer groups); it sees
    the system the way any downstream consumer would — including, crucially,
    any intermediate states the coordination scheme exposes.
    """

    def __init__(self, env: Environment, broker: Broker, poll_batch: int = 32) -> None:
        self.env = env
        self.broker = broker
        self.poll_batch = poll_batch
        self.state: dict[str, Any] = {}
        self._watches: list[tuple[str, Reducer]] = []
        self._constraints: list[_Constraint] = []
        self.violations: list[OnlineViolation] = []
        self.events_seen = 0
        self._running = False

    # -- declaration ---------------------------------------------------------------

    def watch(self, topic: str, reducer: Reducer) -> None:
        """Fold every event of ``topic`` into the monitor state."""
        if self._running:
            raise RuntimeError("declare watches before start()")
        self._watches.append((topic, reducer))

    def constraint(
        self,
        name: str,
        predicate: Callable[[dict], bool],
        detail_fn: Optional[Callable[[dict], str]] = None,
    ) -> None:
        """Declare an invariant over the monitor state."""
        if self._running:
            raise RuntimeError("declare constraints before start()")
        self._constraints.append(_Constraint(name, predicate, detail_fn))

    # -- execution --------------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("monitor already running")
        if not self._watches:
            raise RuntimeError("nothing to watch")
        self._running = True
        for topic, reducer in self._watches:
            self.env.process(
                self._pump(topic, reducer), label=f"constraint-monitor:{topic}"
            )

    def stop(self) -> None:
        self._running = False

    def _pump(self, topic: str, reducer: Reducer) -> Generator:
        consumer = self.broker.consumer(f"constraint-monitor:{topic}", topic)
        while self._running:
            batch = yield from consumer.poll(max_records=self.poll_batch)
            if not self._running:
                return
            for record in batch:
                reducer(self.state, record.value)
                self.events_seen += 1
                self._evaluate()
            yield from consumer.commit()

    def _evaluate(self) -> None:
        for constraint in self._constraints:
            try:
                satisfied = constraint.predicate(self.state)
            except Exception as exc:  # noqa: BLE001 - a broken predicate is a finding
                self.violations.append(
                    OnlineViolation(self.env.now, constraint.name,
                                    f"predicate error: {exc!r}")
                )
                continue
            if not satisfied:
                detail = (
                    constraint.detail_fn(self.state)
                    if constraint.detail_fn is not None
                    else "constraint violated"
                )
                self.violations.append(
                    OnlineViolation(self.env.now, constraint.name, detail)
                )

    # -- reporting ----------------------------------------------------------------------

    def violation_windows(self, name: str, gap: float = 50.0) -> list[tuple[float, float]]:
        """Contiguous violation intervals for one constraint.

        Violating observations less than ``gap`` ms apart collapse into
        one ``(first, last)`` window — "when was the system inconsistent,
        and for how long".
        """
        times = sorted(v.at for v in self.violations if v.constraint == name)
        if not times:
            return []
        windows = []
        start = prev = times[0]
        for t in times[1:]:
            if t - prev > gap:
                windows.append((start, prev))
                start = t
            prev = t
        windows.append((start, prev))
        return windows

"""Choreographed sagas: event-driven coordination without an orchestrator.

The other §4.2 saga style: instead of a central orchestrator calling
services, each service *reacts to events* on the broker and emits the next
event (or a compensation event).  Coordination logic is smeared across the
participants — which is exactly why practitioners find choreography hard
to reason about: nobody holds the whole workflow.

This module gives the minimal machinery:

- a :class:`Reactor` subscribes a handler to a topic through a consumer
  group and emits follow-up events;
- handlers are *at-least-once* (offsets commit after processing), so every
  reactor deduplicates on the event's saga id + step;
- :class:`ChoreographyMonitor` watches terminal events to tell a saga's
  outcome, since no orchestrator exists to ask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.messaging.broker import Broker, Record
from repro.messaging.idempotency import Deduplicator
from repro.sim import Environment, Interrupted

#: A reaction receives the event payload and returns a list of
#: ``(topic, key, payload)`` events to emit (possibly empty).
Reaction = Callable[[dict], Generator]


@dataclass
class ReactorStats:
    handled: int = 0
    deduplicated: int = 0
    failed: int = 0
    emitted: int = 0


class Reactor:
    """One service's event loop: consume a topic, react, emit.

    ``name`` doubles as the consumer group, so restarting a crashed
    reactor resumes from its committed offset (redelivering the
    uncommitted tail — hence the built-in dedup).
    """

    def __init__(
        self,
        env: Environment,
        broker: Broker,
        name: str,
        topic: str,
        reaction: Reaction,
        poll_batch: int = 16,
    ) -> None:
        self.env = env
        self.broker = broker
        self.name = name
        self.topic = topic
        self.reaction = reaction
        self.poll_batch = poll_batch
        self.dedup = Deduplicator()
        self.stats = ReactorStats()
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError(f"reactor {self.name!r} already running")
        self._running = True
        self.env.process(self._loop(), label=f"reactor:{self.name}")

    def stop(self) -> None:
        self._running = False

    def _loop(self) -> Generator:
        consumer = self.broker.consumer(self.name, self.topic)
        while self._running:
            batch = yield from consumer.poll(max_records=self.poll_batch)
            if not self._running:
                return
            for record in batch:
                yield from self._handle(record)
            yield from consumer.commit()  # at-least-once

    def _handle(self, record: Record) -> Generator:
        event = record.value
        event_id = event.get("event_id", f"{record.partition}:{record.offset}")
        if self.dedup.is_duplicate((self.name, event_id)):
            self.stats.deduplicated += 1
            return
        try:
            emitted = yield from self.reaction(event)
        except Interrupted:
            raise
        except Exception:  # noqa: BLE001 - a poisoned event must not kill the loop
            self.stats.failed += 1
            return
        self.stats.handled += 1
        for topic, key, payload in emitted or []:
            payload = dict(payload)
            payload.setdefault("saga_id", event.get("saga_id"))
            payload.setdefault(
                "event_id", f"{event_id}->{topic}"
            )
            yield from self.broker.publish(topic, key, payload)
            self.stats.emitted += 1


class ChoreographyMonitor:
    """Tracks saga outcomes by watching terminal topics.

    With no orchestrator, "did order 42 complete?" can only be answered
    from the event stream — the observability gap the paper attributes to
    choreography.
    """

    def __init__(
        self,
        env: Environment,
        broker: Broker,
        completed_topic: str,
        compensated_topic: str,
    ) -> None:
        self.env = env
        self.broker = broker
        self.outcomes: dict[str, str] = {}
        self._running = True
        env.process(self._watch(completed_topic, "completed"), label="monitor-ok")
        env.process(self._watch(compensated_topic, "compensated"), label="monitor-comp")

    def _watch(self, topic: str, verdict: str) -> Generator:
        consumer = self.broker.consumer(f"monitor:{verdict}", topic)
        while self._running:
            batch = yield from consumer.poll()
            for record in batch:
                saga_id = record.value.get("saga_id")
                if saga_id is not None and saga_id not in self.outcomes:
                    self.outcomes[saga_id] = verdict
            yield from consumer.commit()

    def outcome_of(self, saga_id: str) -> Optional[str]:
        return self.outcomes.get(saga_id)

    def stop(self) -> None:
        self._running = False

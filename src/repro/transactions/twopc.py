"""A two-phase-commit coordinator over XA-style participants.

The "traditional approach" to cross-service consistency the paper says
microservices avoid (§4.2): atomic, isolated — and blocking.  Participants
hold locks from prepare until the decision arrives; a coordinator crash in
that window leaves them *in doubt*, and everything their locks cover stays
unavailable until the coordinator recovers (measured by benchmark C2).

Participants are anything exposing the generator methods ``prepare(txn)``,
``commit_prepared(txn)``/``abort_prepared(txn)`` and ``abort(txn)`` —
:class:`repro.db.Database` and :class:`repro.db.DatabaseServer` both do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.sim import Environment


@dataclass
class TwoPhaseOutcome:
    """Result of one coordinated commit."""

    xid: int
    decision: str  # "committed" | "aborted" | "in_doubt"
    prepare_duration: float = 0.0
    total_duration: float = 0.0
    failed_participant: Optional[int] = None


@dataclass
class TwoPcStats:
    committed: int = 0
    aborted: int = 0
    in_doubt: int = 0


def _call(obj: Any, name: str, *args: Any) -> Generator:
    """Invoke a participant method that may be a generator or plain."""
    method = getattr(obj, name)
    result = method(*args)
    if hasattr(result, "__next__"):
        result = yield from result
    return result


class TwoPhaseCommit:
    """The coordinator.  One instance can coordinate many transactions."""

    def __init__(self, env: Environment, decision_delay: float = 0.0) -> None:
        self.env = env
        self.decision_delay = decision_delay
        self.stats = TwoPcStats()
        self._in_doubt: dict[int, list[tuple[Any, Any]]] = {}

    def run(
        self,
        branches: list[tuple[Any, Any]],
        crash_before_decision: bool = False,
    ) -> Generator:
        """Coordinate ``branches`` — pairs of ``(participant, txn)``.

        Returns a :class:`TwoPhaseOutcome`.  With ``crash_before_decision``
        the coordinator "dies" after all prepares succeed: participants
        stay prepared (locks held!) until :meth:`recover` is called.
        """
        xid = self.env.next_id("2pc-xid")
        started = self.env.now
        prepared: list[tuple[Any, Any]] = []
        outcome = TwoPhaseOutcome(xid=xid, decision="committed")
        tracer = self.env.tracer
        span = tracer.begin("2pc", xid=xid, branches=len(branches))
        try:
            # Phase 1: prepare everyone.
            phase = tracer.begin("2pc.prepare", xid=xid)
            for index, (participant, txn) in enumerate(branches):
                try:
                    yield from _call(participant, "prepare", txn)
                    prepared.append((participant, txn))
                except Exception:  # noqa: BLE001 - any prepare failure aborts all
                    outcome.decision = "aborted"
                    outcome.failed_participant = index
                    break
            tracer.end(phase, prepared=len(prepared))
            outcome.prepare_duration = self.env.now - started

            if outcome.decision == "aborted":
                phase = tracer.begin("2pc.abort", xid=xid)
                for participant, txn in prepared:
                    yield from _call(participant, "abort_prepared", txn)
                for participant, txn in branches[len(prepared):]:
                    yield from _call(participant, "abort", txn)
                tracer.end(phase)
                self.stats.aborted += 1
                outcome.total_duration = self.env.now - started
                return outcome

            if crash_before_decision:
                outcome.decision = "in_doubt"
                self._in_doubt[xid] = prepared
                self.stats.in_doubt += 1
                outcome.total_duration = self.env.now - started
                return outcome

            # Phase 2: deliver the commit decision.
            phase = tracer.begin("2pc.commit", xid=xid)
            if self.decision_delay:
                yield self.env.timeout(self.decision_delay)
            for participant, txn in prepared:
                yield from _call(participant, "commit_prepared", txn)
            tracer.end(phase)
            self.stats.committed += 1
            outcome.total_duration = self.env.now - started
            return outcome
        finally:
            tracer.end(span, decision=outcome.decision)

    def recover(self, xid: int, commit: bool = True) -> Generator:
        """Resolve an in-doubt transaction after coordinator recovery."""
        branches = self._in_doubt.pop(xid, None)
        if branches is None:
            return False
        tracer = self.env.tracer
        span = tracer.begin("2pc.recover", xid=xid, commit=commit)
        try:
            yield from self._recover_branches(branches, commit)
        finally:
            tracer.end(span)
        if commit:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        self.stats.in_doubt -= 1
        return True

    def _recover_branches(self, branches: list[tuple[Any, Any]], commit: bool) -> Generator:
        for participant, txn in branches:
            name = "commit_prepared" if commit else "abort_prepared"
            yield from _call(participant, name, txn)

    def in_doubt_xids(self) -> list[int]:
        return list(self._in_doubt)

"""Durable entities: serialized, exactly-once operations on typed state.

Models Azure Durable Functions' entity abstraction (§4.2): "individual
function operations are atomic and enjoy exactly-once guarantees ... users
must acquire and release locks explicitly to ensure transactional isolation
on operations involving multiple entities".  Accordingly:

- each entity processes one operation at a time (a signal queue);
- operation effects are deduplicated by operation id (exactly-once even
  when the caller retries);
- :meth:`DurableEntities.critical_section` locks a set of entities in
  sorted order for multi-entity isolation — the *manual* isolation story
  whose absence across functions the paper calls out.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.messaging.idempotency import IdempotencyStore
from repro.net.latency import Latency, Sampler
from repro.sim import Environment, Lock

Operation = Callable[[dict, Any], Any]


class EntityError(Exception):
    """Entity protocol misuse."""


@dataclass
class EntityStats:
    operations: int = 0
    deduplicated: int = 0
    critical_sections: int = 0


class DurableEntities:
    """The entity runtime: state, per-entity serialization, dedup, locks.

    Operations are *plain functions* ``op(state, arg) -> result`` applied
    under the entity's lock after a storage round trip (entity state is
    durable by contract).  ``operation_id`` enables exactly-once retries.
    """

    _op_ids = itertools.count(1)

    def __init__(self, env: Environment, rtt: Optional[Sampler] = None) -> None:
        self.env = env
        self._rtt = rtt or Latency.intra_zone()
        self._rng = env.stream("durable-entities")
        self._states: dict[str, dict] = {}
        self._locks: dict[str, Lock] = {}
        self._dedup = IdempotencyStore(clock=lambda: env.now)
        self._operations: dict[str, Operation] = {}
        self.stats = EntityStats()

    def define_operation(self, name: str, op: Operation) -> None:
        """Register an operation applicable to any entity."""
        if name in self._operations:
            raise ValueError(f"operation {name!r} already defined")
        self._operations[name] = op

    def _lock_of(self, entity_id: str) -> Lock:
        if entity_id not in self._locks:
            self._locks[entity_id] = Lock(self.env, label=f"entity:{entity_id}")
        return self._locks[entity_id]

    def state_of(self, entity_id: str) -> dict:
        """Direct state peek (tests/invariants); entities start empty."""
        return dict(self._states.get(entity_id, {}))

    # -- single-entity operations (atomic, exactly-once) -------------------------

    def signal(
        self,
        entity_id: str,
        operation: str,
        arg: Any = None,
        operation_id: Optional[str] = None,
        _locked: bool = False,
    ) -> Generator:
        """Apply one operation to one entity; returns the result.

        With an ``operation_id``, duplicate signals return the recorded
        result without re-applying — the exactly-once guarantee.
        """
        op = self._operations.get(operation)
        if op is None:
            raise EntityError(f"unknown operation {operation!r}")
        if operation_id is not None:
            hit = self._dedup.lookup(operation_id)
            if hit is not None:
                self.stats.deduplicated += 1
                return hit.response
        if not _locked:
            yield self._lock_of(entity_id).acquire()
        try:
            yield self.env.timeout(self._rtt(self._rng))  # durable state trip
            if operation_id is not None:
                # Re-check under the lock: a concurrent duplicate may have
                # applied while we waited.
                hit = self._dedup.lookup(operation_id)
                if hit is not None:
                    self.stats.deduplicated += 1
                    return hit.response
            state = self._states.setdefault(entity_id, {})
            result = op(state, arg)
            self.stats.operations += 1
            if operation_id is not None:
                self._dedup.record(operation_id, result)
            return result
        finally:
            if not _locked:
                self._lock_of(entity_id).release()

    # -- multi-entity critical sections --------------------------------------------

    def critical_section(self, entity_ids: list[str]) -> "CriticalSection":
        """Lock several entities (sorted order → deadlock-free)."""
        return CriticalSection(self, sorted(set(entity_ids)))


class CriticalSection:
    """Explicit multi-entity lock scope.

    Usage inside a process::

        cs = entities.critical_section(["acct:a", "acct:b"])
        yield from cs.enter()
        try:
            yield from cs.signal("acct:a", "withdraw", 10)
            yield from cs.signal("acct:b", "deposit", 10)
        finally:
            cs.exit()
    """

    def __init__(self, entities: DurableEntities, entity_ids: list[str]) -> None:
        self.entities = entities
        self.entity_ids = entity_ids
        self._held = False

    def enter(self) -> Generator:
        for entity_id in self.entity_ids:  # sorted: no deadlock
            yield self.entities._lock_of(entity_id).acquire()
        self._held = True
        self.entities.stats.critical_sections += 1

    def exit(self) -> None:
        if not self._held:
            raise EntityError("critical section not entered")
        for entity_id in reversed(self.entity_ids):
            self.entities._lock_of(entity_id).release()
        self._held = False

    def signal(
        self,
        entity_id: str,
        operation: str,
        arg: Any = None,
        operation_id: Optional[str] = None,
    ) -> Generator:
        """Operate on a locked member of the section."""
        if not self._held:
            raise EntityError("critical section not entered")
        if entity_id not in self.entity_ids:
            raise EntityError(f"{entity_id!r} is not part of this critical section")
        result = yield from self.entities.signal(
            entity_id, operation, arg, operation_id=operation_id, _locked=True
        )
        return result

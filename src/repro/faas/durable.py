"""Durable workflow orchestrations: event-sourced, replay-based execution.

Azure Durable Functions' orchestration model (paper refs [14, 15], §3.1),
also the Temporal model: a *workflow* is ordinary-looking code whose every
interaction with the world goes through commands (``ctx.activity``,
``ctx.timer``, ``ctx.all``).  The engine persists a **history** of command
completions; after any crash it re-executes the workflow from the top,
feeding recorded results instead of re-running activities — so workflow
progress is durable even though the code looks like a plain function.

Semantics reproduced:

- workflow-level effects are **exactly-once**: each activity's completion
  is recorded once and replay never re-executes completed activities;
- activity executions themselves are **at-least-once**: an activity that
  was scheduled but not yet recorded when the engine crashed runs again on
  recovery — activities must therefore be idempotent (the §3.2 burden
  again);
- workflow code must be **deterministic**: the engine verifies on replay
  that the code issues the same commands in the same order, raising
  :class:`NonDeterminismError` otherwise (the formal-semantics point of
  [15]).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.sim import Environment, Future, Interrupted

ActivityFn = Callable[..., Generator]
WorkflowFn = Callable[["OrchestrationContext", Any], Generator]


class NonDeterminismError(Exception):
    """Replay produced different commands than the recorded history."""


class WorkflowFailed(Exception):
    """The workflow raised; carries the original error repr."""


@dataclass(frozen=True)
class _Command:
    kind: str  # "activity" | "timer" | "all"
    name: str = ""
    args: tuple = ()
    delay: float = 0.0
    children: tuple = ()


@dataclass
class _HistoryEvent:
    """One completed command, in issue order."""

    kind: str
    name: str
    result: Any


@dataclass
class _Instance:
    instance_id: str
    workflow: str
    input: Any
    history: list[_HistoryEvent] = field(default_factory=list)
    status: str = "running"  # running | completed | failed
    result: Any = None
    #: commands scheduled but not yet completed: issue-index -> command
    pending: dict[int, _Command] = field(default_factory=dict)
    future: Optional[Future] = None


class OrchestrationContext:
    """What workflow code may touch.  Everything else is nondeterminism."""

    def __init__(self, engine: "DurableWorkflows", instance: _Instance) -> None:
        self._engine = engine
        self._instance = instance
        self.instance_id = instance.instance_id

    def activity(self, name: str, *args: Any) -> _Command:
        """Command: run activity ``name`` (idempotent!) and await its result."""
        return _Command(kind="activity", name=name, args=args)

    def timer(self, delay: float) -> _Command:
        """Command: durable timer (survives crashes, unlike a sleep)."""
        return _Command(kind="timer", name=f"timer:{delay}", delay=delay)

    def all(self, commands: list[_Command]) -> _Command:
        """Command: run sub-commands concurrently, await all results."""
        return _Command(kind="all", name="all", children=tuple(commands))


@dataclass
class DurableStats:
    started: int = 0
    completed: int = 0
    failed: int = 0
    activity_executions: int = 0
    replays: int = 0
    timers_fired: int = 0


class DurableWorkflows:
    """The orchestration engine."""

    def __init__(self, env: Environment, activity_latency: float = 1.0) -> None:
        self.env = env
        self.activity_latency = activity_latency
        self._workflows: dict[str, WorkflowFn] = {}
        self._activities: dict[str, ActivityFn] = {}
        self._instances: dict[str, _Instance] = {}  # histories are durable
        self._generation = 0
        self.stats = DurableStats()

    # -- registration -----------------------------------------------------------

    def workflow(self, name: str):
        def register(fn: WorkflowFn) -> WorkflowFn:
            if name in self._workflows:
                raise ValueError(f"workflow {name!r} already registered")
            self._workflows[name] = fn
            return fn

        return register

    def activity(self, name: str):
        def register(fn: ActivityFn) -> ActivityFn:
            if name in self._activities:
                raise ValueError(f"activity {name!r} already registered")
            self._activities[name] = fn
            return fn

        return register

    # -- client API ---------------------------------------------------------------

    def start(self, instance_id: str, workflow: str, input: Any = None) -> Future:
        """Begin an orchestration; the future resolves with its result."""
        if workflow not in self._workflows:
            raise KeyError(f"no workflow {workflow!r}")
        if instance_id in self._instances:
            instance = self._instances[instance_id]
            if instance.future is None:
                instance.future = self.env.future(label=f"wf:{instance_id}")
                self._settle_if_finished(instance)
            return instance.future  # idempotent start
        instance = _Instance(
            instance_id=instance_id,
            workflow=workflow,
            input=input,
            future=self.env.future(label=f"wf:{instance_id}"),
        )
        self._instances[instance_id] = instance
        self.stats.started += 1
        self._drive(instance)
        return instance.future

    def status_of(self, instance_id: str) -> str:
        return self._instances[instance_id].status

    def history_of(self, instance_id: str) -> list[tuple[str, str]]:
        return [(e.kind, e.name) for e in self._instances[instance_id].history]

    # -- the replay loop -------------------------------------------------------------

    def _drive(self, instance: _Instance) -> None:
        """(Re-)execute the workflow from the top against its history."""
        if instance.status != "running":
            return
        self.stats.replays += 1
        fn = self._workflows[instance.workflow]
        ctx = OrchestrationContext(self, instance)
        generator = fn(ctx, instance.input)
        cursor = 0
        send_value: Any = None
        try:
            while True:
                command = generator.send(send_value)
                if not isinstance(command, _Command):
                    raise NonDeterminismError(
                        f"{instance.instance_id}: workflow yielded {command!r}; "
                        "only ctx.activity/ctx.timer/ctx.all may be yielded"
                    )
                if cursor < len(instance.history):
                    event = instance.history[cursor]
                    if event.name != command.name or event.kind != command.kind:
                        raise NonDeterminismError(
                            f"{instance.instance_id}: replay mismatch at step "
                            f"{cursor}: history has {event.kind}:{event.name}, "
                            f"code issued {command.kind}:{command.name}"
                        )
                    send_value = event.result
                    cursor += 1
                    continue
                # A new command: schedule it and suspend this execution.
                self._schedule(instance, cursor, command)
                return
        except StopIteration as stop:
            instance.status = "completed"
            instance.result = stop.value
            instance.pending.clear()
            self.stats.completed += 1
            self._settle_if_finished(instance)
        except NonDeterminismError as exc:
            # Determinism violations fail the orchestration (as Durable
            # Functions does) — they may surface mid-replay in a callback,
            # where raising would vanish into a background process.
            self._fail_instance(instance, repr(exc))
        except Exception as exc:  # noqa: BLE001 - workflow business failure
            instance.status = "failed"
            instance.result = repr(exc)
            instance.pending.clear()
            self.stats.failed += 1
            self._settle_if_finished(instance)

    def _settle_if_finished(self, instance: _Instance) -> None:
        if instance.future is None:
            return
        if instance.status == "completed":
            instance.future.try_succeed(instance.result)
        elif instance.status == "failed":
            instance.future.try_fail(WorkflowFailed(instance.result))

    # -- command execution --------------------------------------------------------------

    def _schedule(self, instance: _Instance, index: int, command: _Command) -> None:
        if index in instance.pending:
            return  # already in flight (e.g. re-drive while awaiting)
        instance.pending[index] = command
        generation = self._generation
        if command.kind == "all":
            self.env.process(
                self._run_all(instance, index, command, generation),
                label=f"{instance.instance_id}:all@{index}",
            )
        elif command.kind == "timer":
            self.env.schedule(
                command.delay, self._complete, instance, index, command, None,
                generation,
            )
        else:
            self.env.process(
                self._run_activity(instance, index, command, generation),
                label=f"{instance.instance_id}:{command.name}@{index}",
            )

    def _run_activity(
        self, instance: _Instance, index: int, command: _Command, generation: int
    ) -> Generator:
        fn = self._activities.get(command.name)
        if fn is None:
            self._fail_instance(instance, f"no activity {command.name!r}")
            return
        yield self.env.timeout(self.activity_latency)
        if self._generation != generation:
            return  # engine crashed while the activity was dispatched
        self.stats.activity_executions += 1
        try:
            result = yield from fn(*command.args)
        except Interrupted:
            raise
        except Exception as exc:  # noqa: BLE001 - activity failure fails the wf
            self._fail_instance(instance, f"activity {command.name!r}: {exc!r}")
            return
        if self._generation != generation:
            return  # completion lost with the crash: will re-run on recovery
        self._complete(instance, index, command, result, generation)

    def _run_all(
        self, instance: _Instance, index: int, command: _Command, generation: int
    ) -> Generator:
        from repro.sim import all_of

        child_futures = []
        for child in command.children:
            fut = self.env.future(label=f"{instance.instance_id}:child")
            if child.kind == "timer":
                self.env.schedule(child.delay, fut.try_succeed, None)
            else:
                self.env.process(
                    self._child_activity(child, fut, generation),
                    label=f"{instance.instance_id}:child:{child.name}",
                )
            child_futures.append(fut)
        try:
            results = yield all_of(self.env, child_futures)
        except Exception as exc:  # noqa: BLE001
            if self._generation == generation:
                self._fail_instance(instance, repr(exc))
            return
        if self._generation != generation:
            return
        self._complete(instance, index, command, list(results), generation)

    def _child_activity(self, child: _Command, fut: Future, generation: int) -> Generator:
        fn = self._activities.get(child.name)
        if fn is None:
            fut.try_fail(KeyError(f"no activity {child.name!r}"))
            return
        yield self.env.timeout(self.activity_latency)
        if self._generation != generation:
            return
        self.stats.activity_executions += 1
        try:
            result = yield from fn(*child.args)
        except Interrupted:
            raise
        except Exception as exc:  # noqa: BLE001
            fut.try_fail(exc)
            return
        fut.try_succeed(result)

    def _complete(
        self,
        instance: _Instance,
        index: int,
        command: _Command,
        result: Any,
        generation: int,
    ) -> None:
        if self._generation != generation or instance.status != "running":
            return
        if command.kind == "timer":
            self.stats.timers_fired += 1
        instance.pending.pop(index, None)
        instance.history.append(_HistoryEvent(command.kind, command.name, result))
        self._drive(instance)

    def _fail_instance(self, instance: _Instance, reason: str) -> None:
        if instance.status != "running":
            return
        instance.status = "failed"
        instance.result = reason
        instance.pending.clear()
        self.stats.failed += 1
        self._settle_if_finished(instance)

    # -- crash / recovery ------------------------------------------------------------------

    def crash(self) -> None:
        """Kill the engine: in-flight activity executions and timers are
        lost; histories (durable storage) survive."""
        self._generation += 1
        for instance in self._instances.values():
            instance.pending.clear()
            if instance.future is not None and not instance.future.done:
                instance.future = None  # the client connection died too

    def recover(self) -> None:
        """Replay every unfinished orchestration from its history."""
        self._generation += 1
        for instance in self._instances.values():
            if instance.status == "running":
                self._drive(instance)

    def wait(self, instance_id: str) -> Future:
        """(Re-)subscribe to an instance's completion (after recovery)."""
        instance = self._instances[instance_id]
        if instance.future is None or instance.future.done:
            instance.future = self.env.future(label=f"wf:{instance_id}")
        self._settle_if_finished(instance)
        return instance.future

"""A stateful Function-as-a-Service runtime (§3.1 "Cloud Functions").

Four progressively stronger §4.2 consistency points, each mapped to a
surveyed system:

- :class:`FaasPlatform` — plain FaaS: event-triggered functions, cold/warm
  containers, keep-alive expiry, function composition (AWS Lambda);
- :class:`SharedKv` — a key-value interface to global state, *remote* (a
  round trip per access) or *cached* (stale reads possible), with CAS
  (Cloudburst's shared-state model);
- :mod:`repro.faas.entities` — durable entities with serialized, exactly-
  once operations and explicit critical sections (Azure Durable Functions);
- :mod:`repro.faas.workflows` — serializable transactional workflows over
  the shared KV via OCC with retry (Beldi/Boki).
"""

from repro.faas.durable import (
    DurableWorkflows,
    NonDeterminismError,
    OrchestrationContext,
    WorkflowFailed,
)
from repro.faas.entities import DurableEntities, EntityError
from repro.faas.platform import FaasContext, FaasPlatform, FunctionError, Throttled
from repro.faas.state import SharedKv
from repro.faas.workflows import TransactionalWorkflows, WorkflowAborted

__all__ = [
    "DurableEntities",
    "DurableWorkflows",
    "EntityError",
    "FaasContext",
    "FaasPlatform",
    "FunctionError",
    "NonDeterminismError",
    "OrchestrationContext",
    "SharedKv",
    "Throttled",
    "TransactionalWorkflows",
    "WorkflowAborted",
    "WorkflowFailed",
]
